//! `alss` — command-line interface to the learned sketch.
//!
//! ```text
//! alss generate  --dataset yeast --scale 0.2 --seed 0 --out graph.txt
//! alss workload  --graph graph.txt --sizes 3,4,6 --per-size 30
//!                [--iso] [--budget N] --out workload.json
//! alss train     --graph graph.txt --workload workload.json
//!                [--encoding fre|emb|con] [--epochs N] [--threads N]
//!                --out sketch.json
//! alss estimate  --sketch sketch.json --query query.txt
//! alss count     --graph graph.txt --query query.txt [--iso] [--budget N]
//! alss evaluate  --sketch sketch.json --workload workload.json
//! alss stats     --graph graph.txt
//! alss decompose --query query.txt [--hops 3]
//! alss serve     --graph graph.txt [--sketch sketch.json] [--addr 127.0.0.1:0]
//!                [--port-file p] [--cache N] [--shards N] [--batch N]
//!                [--queue N] [--threads N] [--telemetry out.jsonl]
//! alss query     --addr host:port (--query q.txt | --op ping|stats|shutdown)
//!                [--deadline-ms N]
//! alss loadgen   --addr host:port --query q.txt [--rounds N] [--deadline-ms N]
//! ```
//!
//! Graphs use the line-oriented text format of `alss::graph::io`
//! (`t/v/e` records); workloads and sketches are JSON.

use alss::core::{LearnedSketch, QErrorStats, SketchConfig, TrainConfig, Workload};
use alss::datasets::queries::WorkloadSpec;
use alss::datasets::{by_name, generate_workload};
use alss::graph::io::{from_text, to_text};
use alss::graph::Graph;
use alss::matching::{Budget, Semantics};
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: alss <generate|workload|train|estimate|count|evaluate|stats|decompose|serve|query|loadgen> \
         [--flag value ...]\nrun `alss help` or see the crate docs for details"
    );
    ExitCode::FAILURE
}

/// Minimal `--flag value` / `--flag` parser.
struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < raw.len() {
            let k = raw[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got '{}'", raw[i]))?;
            if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                flags.insert(k.to_string(), raw[i + 1].clone());
                i += 2;
            } else {
                flags.insert(k.to_string(), "true".to_string());
                i += 1;
            }
        }
        Ok(Args { flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v}")),
        }
    }

    fn is_set(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }
}

fn load_graph(path: &str) -> Result<Graph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    from_text(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn semantics(args: &Args) -> Semantics {
    if args.is_set("iso") {
        Semantics::Isomorphism
    } else {
        Semantics::Homomorphism
    }
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let dataset = args.require("dataset")?;
    let scale: f64 = args.parsed("scale", 0.2)?;
    let seed: u64 = args.parsed("seed", 0)?;
    let out = args.require("out")?;
    let g = by_name(dataset, scale, seed).ok_or_else(|| {
        format!("unknown dataset '{dataset}' (aids/yeast/youtube/wordnet/eu2005/yago)")
    })?;
    std::fs::write(out, to_text(&g)).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "wrote {out}: {} nodes, {} edges, {} labels",
        g.num_nodes(),
        g.num_edges(),
        g.num_node_labels()
    );
    Ok(())
}

fn cmd_workload(args: &Args) -> Result<(), String> {
    let g = load_graph(args.require("graph")?)?;
    let sizes: Vec<usize> = args
        .require("sizes")?
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad size '{s}'")))
        .collect::<Result<_, _>>()?;
    let per_size: usize = args.parsed("per-size", 25)?;
    let budget: u64 = args.parsed("budget", 20_000_000)?;
    let wildcard: f64 = args.parsed("wildcard", 0.0)?;
    let seed: u64 = args.parsed("seed", 1)?;
    let out = args.require("out")?;
    let w = generate_workload(
        &g,
        &WorkloadSpec {
            sizes,
            per_size,
            semantics: semantics(args),
            budget_per_query: budget,
            wildcard_prob: wildcard,
            induced: false,
            seed,
        },
    );
    let json = serde_json::to_string(&w).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("write {out}: {e}"))?;
    let (lo, hi) = w.count_range().unwrap_or((0, 0));
    println!(
        "wrote {out}: {} labeled queries, sizes {:?}, counts in [{lo}, {hi}]",
        w.len(),
        w.sizes()
    );
    Ok(())
}

fn load_workload(path: &str) -> Result<Workload, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("parse {path}: {e}"))
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let g = load_graph(args.require("graph")?)?;
    let w = load_workload(args.require("workload")?)?;
    let out = args.require("out")?;
    let epochs: usize = args.parsed("epochs", 60)?;
    let encoding = match args.get("encoding").unwrap_or("emb") {
        "fre" => alss::core::EncodingKind::Frequency,
        "emb" => alss::core::EncodingKind::Embedding,
        "con" => alss::core::EncodingKind::Concatenated,
        other => return Err(format!("unknown encoding '{other}' (fre|emb|con)")),
    };
    let mut cfg = SketchConfig {
        encoding,
        ..SketchConfig::default()
    };
    cfg.model.hidden = args.parsed("hidden", 32)?;
    cfg.model.gnn_layers = args.parsed("layers", 2)?;
    cfg.model.dropout = args.parsed("dropout", 0.1)?;
    // --threads 0 (the default) auto-detects; any N pins the fan-out.
    let threads: usize = args.parsed("threads", 0)?;
    cfg.train = TrainConfig {
        epochs,
        parallelism: if threads > 0 {
            alss::core::Parallelism::fixed(threads)
        } else {
            alss::core::Parallelism::auto()
        },
        ..TrainConfig::default()
    };
    cfg.prone_dim = args.parsed("prone-dim", 32)?;
    cfg.seed = args.parsed("seed", 42)?;
    let (sketch, report) = LearnedSketch::train(&g, &w, &cfg);
    sketch.save(out).map_err(|e| format!("save {out}: {e}"))?;
    println!(
        "trained on {} queries ({} epochs, {:.2}s, final loss {:.4}); sketch -> {out}",
        report.num_queries,
        report.epoch_losses.len(),
        report.duration.as_secs_f64(),
        report.epoch_losses.last().copied().unwrap_or(f64::NAN)
    );
    Ok(())
}

fn cmd_estimate(args: &Args) -> Result<(), String> {
    let sketch = LearnedSketch::load(args.require("sketch")?).map_err(|e| e.to_string())?;
    let q = load_graph(args.require("query")?)?;
    let pred = sketch.predict(&q);
    println!("estimate: {:.1}", pred.count());
    println!("log10:    {:.3}", pred.log10_count);
    println!("magnitude class: {}", pred.top_class());
    Ok(())
}

fn cmd_count(args: &Args) -> Result<(), String> {
    let g = load_graph(args.require("graph")?)?;
    let q = load_graph(args.require("query")?)?;
    let budget: u64 = args.parsed("budget", 1_000_000_000)?;
    let sem = semantics(args);
    match sem.count_parallel(&g, &q, &Budget::new(budget)) {
        Ok(c) => {
            println!("{c}");
            Ok(())
        }
        Err(_) => Err(format!("budget of {budget} expansions exceeded")),
    }
}

fn cmd_evaluate(args: &Args) -> Result<(), String> {
    let sketch = LearnedSketch::load(args.require("sketch")?).map_err(|e| e.to_string())?;
    let w = load_workload(args.require("workload")?)?;
    let pairs: Vec<(f64, f64)> = w
        .queries
        .iter()
        .map(|q| (q.count as f64, sketch.estimate(&q.graph)))
        .collect();
    let stats = QErrorStats::from_pairs(&pairs).ok_or("empty workload")?;
    println!("q-error over {} queries:", stats.count);
    println!("{}", stats.render());
    for size in w.sizes() {
        let sp: Vec<(f64, f64)> = w
            .queries
            .iter()
            .filter(|q| q.size() == size)
            .map(|q| (q.count as f64, sketch.estimate(&q.graph)))
            .collect();
        if let Some(s) = QErrorStats::from_pairs(&sp) {
            println!("  {size}-node: {}", s.render());
        }
    }
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let g = load_graph(args.require("graph")?)?;
    let stats = alss::graph::labels::LabelStats::new(&g);
    println!("nodes:        {}", g.num_nodes());
    println!("edges:        {}", g.num_edges());
    println!("node labels:  {}", g.num_node_labels());
    println!("edge labels:  {}", g.num_edge_labels());
    println!("multi-label:  {}", g.is_multi_labeled());
    println!("max degree:   {}", g.max_degree());
    println!("connected:    {}", g.is_connected());
    println!("label entropy Ent(Sigma): {:.3}", stats.entropy());
    let order = stats.labels_by_frequency();
    print!("top labels:  ");
    for l in order.iter().take(5) {
        print!(" {}x{}", l, stats.frequency(*l));
    }
    println!();
    Ok(())
}

fn cmd_decompose(args: &Args) -> Result<(), String> {
    let q = load_graph(args.require("query")?)?;
    let hops: u32 = args.parsed("hops", 3)?;
    let subs = alss::graph::decompose(&q, hops);
    println!(
        "query: {} nodes, {} edges -> {} substructures ({}-hop BFS trees)",
        q.num_nodes(),
        q.num_edges(),
        subs.len(),
        hops
    );
    for (i, s) in subs.iter().enumerate() {
        println!(
            "s{i}: root q{} | {} nodes, {} edges | original nodes {:?}",
            s.original[0],
            s.graph.num_nodes(),
            s.graph.num_edges(),
            s.original
        );
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let threads: usize = args.parsed("threads", 0)?;
    let _guard = alss::serve::init_telemetry("serve", args.get("telemetry"), Some(threads));
    let cfg = alss::serve::ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:0").to_string(),
        data_path: args.require("graph")?.into(),
        model_path: args.get("sketch").map(Into::into),
        cache_capacity: args.parsed("cache", 4096)?,
        cache_shards: args.parsed("shards", 8)?,
        batch: alss::serve::BatchConfig {
            batch_size: args.parsed("batch", 16)?,
            queue_cap: args.parsed("queue", 1024)?,
            parallelism: if threads > 0 {
                alss::core::Parallelism::fixed(threads)
            } else {
                alss::core::Parallelism::auto()
            },
            wj_samples: args.parsed("wj-samples", 64)?,
        },
        ..alss::serve::ServeConfig::default()
    };
    let handle = alss::serve::serve(&cfg)?;
    println!("listening on {}", handle.addr);
    if let Some(port_file) = args.get("port-file") {
        // Written after bind: pollers that see the file can connect.
        std::fs::write(port_file, handle.addr.to_string())
            .map_err(|e| format!("write {port_file}: {e}"))?;
    }
    handle.join(); // blocks until a client sends `shutdown`
    println!("server stopped");
    Ok(())
}

fn cmd_query(args: &Args) -> Result<(), String> {
    let addr = args.require("addr")?;
    let mut client = alss::serve::Client::connect(addr, std::time::Duration::from_secs(5))?;
    let op = args.get("op").unwrap_or("estimate");
    let req = match op {
        "estimate" => {
            let path = args.require("query")?;
            let query = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let deadline: i64 = args.parsed("deadline-ms", -1)?;
            alss::serve::Request::estimate(
                args.parsed("id", 1)?,
                query,
                u64::try_from(deadline).ok(),
            )
        }
        "ping" | "stats" | "shutdown" => alss::serve::Request::control(op),
        other => {
            return Err(format!(
                "unknown op '{other}' (estimate|ping|stats|shutdown)"
            ))
        }
    };
    let resp = client.call(&req)?;
    println!("{}", alss::serve::proto::to_line(&resp)?);
    if resp.ok {
        Ok(())
    } else {
        Err(resp.error)
    }
}

fn cmd_loadgen(args: &Args) -> Result<(), String> {
    let addr = args.require("addr")?;
    let queries: Vec<String> = args
        .require("query")?
        .split(',')
        .map(|p| {
            let p = p.trim();
            std::fs::read_to_string(p).map_err(|e| format!("read {p}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let rounds: u32 = args.parsed("rounds", 1)?;
    let deadline: i64 = args.parsed("deadline-ms", -1)?;
    let report = alss::serve::run_load(addr, &queries, rounds, u64::try_from(deadline).ok())?;
    println!(
        "sent {} | ok {} | cached {} | degraded {} | failed {} | mean latency {}us",
        report.sent,
        report.ok,
        report.cached,
        report.degraded,
        report.failed,
        report.mean_latency_us
    );
    if report.failed > 0 {
        return Err(format!("{} request(s) failed", report.failed));
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        return usage();
    };
    let args = match Args::parse(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&args),
        "workload" => cmd_workload(&args),
        "train" => cmd_train(&args),
        "estimate" => cmd_estimate(&args),
        "count" => cmd_count(&args),
        "evaluate" => cmd_evaluate(&args),
        "stats" => cmd_stats(&args),
        "decompose" => cmd_decompose(&args),
        "serve" => cmd_serve(&args),
        "query" => cmd_query(&args),
        "loadgen" => cmd_loadgen(&args),
        "help" | "--help" | "-h" => {
            return usage();
        }
        other => {
            eprintln!("unknown command '{other}'");
            return usage();
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
