//! # ALSS — Active Learned Sketch for Subgraph Counting
//!
//! A from-scratch Rust reproduction of *"A Learned Sketch for Subgraph
//! Counting"* (Zhao, Yu, Zhang, Li, Rong — SIGMOD 2021): a GNN-based
//! learned estimator for homomorphism / subgraph-isomorphism counts over
//! large labeled graphs, with an active learner for online model updates.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`graph`] — labeled CSR graphs, BFS-tree decomposition, label
//!   statistics, the label-augmented graph, query extraction;
//! * [`matching`] — exact budgeted homomorphism/isomorphism counting;
//! * [`nn`] — the tape-autograd neural stack (GIN, attention, Adam);
//! * [`embedding`] — DeepWalk / node2vec / ProNE pre-training;
//! * [`estimators`] — the seven G-CARE baselines (CSET, SumRDF, IMPR, CS,
//!   WJ, JSUB, BS) and isomorphism variants;
//! * [`core`] — **LSS + AL**, the paper's contribution
//!   ([`core::LearnedSketch`] is the one-call facade);
//! * [`ghd`] — GHD query optimization with AGM vs learned costing (§6.6);
//! * [`datasets`] — synthetic Table 2 analogues and Table 3 workloads;
//! * [`serve`] — the batched TCP estimate server with canonical-query
//!   caching and deadline fallback (`alss serve` / `alss query`).
//!
//! ## Quickstart
//!
//! ```
//! use alss::core::{LearnedSketch, SketchConfig, Workload, LabeledQuery};
//! use alss::graph::builder::graph_from_edges;
//! use alss::matching::{count_homomorphisms, Budget};
//!
//! // a small labeled data graph
//! let data = graph_from_edges(&[0, 0, 1, 1, 2], &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
//!
//! // label a few training queries with exact counts
//! let shapes: Vec<(Vec<u32>, Vec<(u32, u32)>)> = vec![
//!     (vec![0, 0], vec![(0, 1)]),
//!     (vec![0, 1], vec![(0, 1)]),
//!     (vec![1, 2], vec![(0, 1)]),
//!     (vec![0, 1, 2], vec![(0, 1), (1, 2)]),
//!     (vec![0, 0, 1], vec![(0, 1), (1, 2)]),
//! ];
//! let queries = shapes
//!     .into_iter()
//!     .map(|(l, e)| {
//!         let q = graph_from_edges(&l, &e);
//!         let c = count_homomorphisms(&data, &q, &Budget::unlimited()).unwrap();
//!         LabeledQuery::new(q, c.max(1))
//!     })
//!     .collect();
//!
//! // train the sketch and estimate an unseen query
//! let (sketch, _report) = LearnedSketch::train(
//!     &data,
//!     &Workload::from_queries(queries),
//!     &SketchConfig::tiny(),
//! );
//! let q = graph_from_edges(&[1, 1], &[(0, 1)]);
//! assert!(sketch.estimate(&q) >= 1.0);
//! ```

// Test modules opt back out of the library panic/numeric policy: a panic
// IS the failure report there, and fixtures are tiny.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub use alss_core as core;
pub use alss_datasets as datasets;
pub use alss_embedding as embedding;
pub use alss_estimators as estimators;
pub use alss_ghd as ghd;
pub use alss_graph as graph;
pub use alss_matching as matching;
pub use alss_nn as nn;
pub use alss_serve as serve;
