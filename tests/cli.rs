//! End-to-end smoke test of the `alss` CLI binary: generate → workload →
//! train → estimate/count/evaluate/stats/decompose over temp files.

// Test code opts back out of the library panic policy: a panic IS the
// failure report here.
#![allow(
    clippy::unwrap_used,
    clippy::cast_possible_truncation,
    clippy::float_cmp
)]
use std::path::PathBuf;
use std::process::Command;

fn alss() -> Command {
    Command::new(env!("CARGO_BIN_EXE_alss"))
}

fn tmpdir() -> PathBuf {
    let d = std::env::temp_dir().join(format!("alss_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

#[test]
fn full_cli_pipeline() {
    let dir = tmpdir();
    let graph = dir.join("g.txt");
    let workload = dir.join("w.json");
    let sketch = dir.join("s.json");
    let query = dir.join("q.txt");

    // generate
    let out = alss()
        .args([
            "generate",
            "--dataset",
            "yeast",
            "--scale",
            "0.08",
            "--seed",
            "1",
            "--out",
            graph.to_str().unwrap(),
        ])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // workload
    let out = alss()
        .args([
            "workload",
            "--graph",
            graph.to_str().unwrap(),
            "--sizes",
            "3,4",
            "--per-size",
            "10",
            "--budget",
            "2000000",
            "--out",
            workload.to_str().unwrap(),
        ])
        .output()
        .expect("run workload");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // train
    let out = alss()
        .args([
            "train",
            "--graph",
            graph.to_str().unwrap(),
            "--workload",
            workload.to_str().unwrap(),
            "--epochs",
            "10",
            "--hidden",
            "16",
            "--prone-dim",
            "8",
            "--out",
            sketch.to_str().unwrap(),
        ])
        .output()
        .expect("run train");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(sketch.exists());

    // estimate on a handwritten query
    std::fs::write(&query, "t 2 1\nv 0 0\nv 1 -1\ne 0 1\n").expect("write query");
    let out = alss()
        .args([
            "estimate",
            "--sketch",
            sketch.to_str().unwrap(),
            "--query",
            query.to_str().unwrap(),
        ])
        .output()
        .expect("run estimate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("estimate:"), "missing estimate in: {text}");

    // exact count
    let out = alss()
        .args([
            "count",
            "--graph",
            graph.to_str().unwrap(),
            "--query",
            query.to_str().unwrap(),
        ])
        .output()
        .expect("run count");
    assert!(out.status.success());
    let count: u64 = String::from_utf8_lossy(&out.stdout)
        .trim()
        .parse()
        .expect("count number");
    let _ = count;

    // evaluate
    let out = alss()
        .args([
            "evaluate",
            "--sketch",
            sketch.to_str().unwrap(),
            "--workload",
            workload.to_str().unwrap(),
        ])
        .output()
        .expect("run evaluate");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("q-error"));

    // stats + decompose
    let out = alss()
        .args(["stats", "--graph", graph.to_str().unwrap()])
        .output()
        .expect("run stats");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("label entropy"));

    let out = alss()
        .args([
            "decompose",
            "--query",
            query.to_str().unwrap(),
            "--hops",
            "2",
        ])
        .output()
        .expect("run decompose");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("substructures"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_reports_errors_cleanly() {
    // unknown command
    let out = alss().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());

    // missing required flag
    let out = alss()
        .args(["generate", "--dataset", "yeast"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));

    // unknown dataset
    let dir = tmpdir();
    let out = alss()
        .args([
            "generate",
            "--dataset",
            "imdb",
            "--out",
            dir.join("x.txt").to_str().unwrap(),
        ])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));
    std::fs::remove_dir_all(&dir).ok();
}
