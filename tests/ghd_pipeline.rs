//! Integration of the GHD optimizer (§6.6) with the graph/matching/core
//! crates: decomposition validity, plan costing, and the oracle property
//! that a perfect cost estimator picks the true-cheapest plan.

// Test code opts back out of the library panic policy: a panic IS the
// failure report here.
#![allow(
    clippy::unwrap_used,
    clippy::cast_possible_truncation,
    clippy::float_cmp
)]
use alss::datasets::by_name;
use alss::datasets::queries::{assign_pattern_labels, unlabeled_patterns};
use alss::ghd::enumerate_ghds;
use alss::ghd::plan::{agm_cost, choose_plan, true_cost, RelationIndex};
use alss::graph::labels::LabelStats;
use alss::matching::{count_homomorphisms, Budget};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn decompositions_partition_query_edges() {
    let data = by_name("wordnet", 0.1, 0).expect("dataset");
    for pattern in unlabeled_patterns(&data, 4, 5, 1) {
        let decomps = enumerate_ghds(&pattern, 3);
        assert!(!decomps.is_empty());
        let m = pattern.num_edges();
        for d in &decomps {
            let mut covered = vec![false; m];
            for bag in &d.bags {
                for &e in &bag.edges {
                    assert!(!covered[e], "edge {e} in two bags");
                    covered[e] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "edges uncovered");
            // bag subqueries are connected and label-preserving
            for b in 0..d.bags.len() {
                let (bq, orig) = d.bag_query(&pattern, b);
                assert!(bq.is_connected());
                for v in bq.nodes() {
                    assert_eq!(bq.label(v), pattern.label(orig[v as usize]));
                }
            }
        }
    }
}

#[test]
fn oracle_estimator_achieves_minimum_true_cost() {
    let data = by_name("wordnet", 0.1, 2).expect("dataset");
    let stats = LabelStats::new(&data);
    let mut rng = SmallRng::seed_from_u64(3);
    let budget = Budget::unlimited();
    let mut exercised = 0;
    for pattern in unlabeled_patterns(&data, 4, 4, 5) {
        let q = assign_pattern_labels(&pattern, &stats, 2, &mut rng);
        let decomps = enumerate_ghds(&q, 3);
        if decomps.len() < 2 {
            continue;
        }
        // true cost of every plan
        let costs: Vec<u64> = decomps
            .iter()
            .map(|d| true_cost(&data, &q, d, &budget).expect("within budget"))
            .collect();
        let min_cost = *costs.iter().min().unwrap();
        // plan chosen with the exact counter as cost model
        let pick = choose_plan(&q, &decomps, |bq| {
            count_homomorphisms(&data, bq, &Budget::unlimited()).unwrap() as f64
        });
        assert_eq!(
            costs[pick.index], min_cost,
            "oracle estimator must pick a min-true-cost plan"
        );
        exercised += 1;
    }
    assert!(exercised > 0, "no multi-plan patterns exercised");
}

#[test]
fn agm_plan_cost_upper_bounds_true_cost() {
    let data = by_name("wordnet", 0.1, 4).expect("dataset");
    let stats = LabelStats::new(&data);
    let rel = RelationIndex::new(&data);
    let mut rng = SmallRng::seed_from_u64(5);
    let budget = Budget::unlimited();
    for pattern in unlabeled_patterns(&data, 4, 4, 7) {
        let q = assign_pattern_labels(&pattern, &stats, 3, &mut rng);
        let decomps = enumerate_ghds(&q, 3);
        for d in &decomps {
            // AGM bound per bag ≥ true bag count ⇒ max ≥ max
            let mut est = 0.0f64;
            for b in 0..d.bags.len() {
                let (bq, _) = d.bag_query(&q, b);
                est = est.max(agm_cost(&rel, &bq));
            }
            let truth = true_cost(&data, &q, d, &budget).unwrap() as f64;
            assert!(
                est + 1e-6 >= truth,
                "AGM plan cost {est} < true cost {truth}"
            );
        }
    }
}
