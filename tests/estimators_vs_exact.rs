//! Cross-crate checks of every baseline estimator against the exact
//! engine on generated datasets and extracted queries.

// Test code opts back out of the library panic policy: a panic IS the
// failure report here.
#![allow(
    clippy::unwrap_used,
    clippy::cast_possible_truncation,
    clippy::float_cmp
)]
use alss::datasets::by_name;
use alss::datasets::queries::unlabeled_pool;
use alss::estimators::{
    BoundSketch, CardinalityEstimator, CharacteristicSets, CorrelatedSampling, Impr, JSub,
    LabelIndex, SumRdf, WanderJoin,
};
use alss::graph::Graph;
use alss::matching::{count_homomorphisms, count_isomorphisms, Budget};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn data() -> Graph {
    by_name("yeast", 0.1, 7).expect("dataset")
}

fn queries(data: &Graph) -> Vec<Graph> {
    unlabeled_pool(data, &[3, 4, 5], 8, 0.1, 9)
}

#[test]
fn all_estimators_return_finite_nonnegative_counts() {
    let d = data();
    let idx = LabelIndex::new(&d);
    let cset = CharacteristicSets::new(&d);
    let sumrdf = SumRdf::new(&d);
    let impr = Impr::new(&d, 100, 10);
    let cs = CorrelatedSampling::new(&d, 0.4, 5, 20_000_000);
    let wj = WanderJoin::new(&idx, 300);
    let jsub = JSub::new(&idx, 300);
    let bs = BoundSketch::new(&d);
    let all: Vec<&dyn CardinalityEstimator> = vec![&cset, &sumrdf, &impr, &cs, &wj, &jsub, &bs];
    let mut rng = SmallRng::seed_from_u64(0);
    for q in queries(&d) {
        for est in &all {
            if est.name().starts_with("IMPR") && !(3..=5).contains(&q.num_nodes()) {
                continue;
            }
            let e = est.estimate(&q, &mut rng);
            assert!(
                e.count.is_finite() && e.count >= 0.0,
                "{}: bad estimate {:?}",
                est.name(),
                e
            );
            if e.failed {
                assert_eq!(e.count, 0.0, "{}: failure must report 0", est.name());
            }
        }
    }
}

#[test]
fn bound_sketch_upper_bounds_every_query() {
    let d = data();
    let bs = BoundSketch::new(&d);
    let mut rng = SmallRng::seed_from_u64(1);
    for q in queries(&d) {
        let truth = count_homomorphisms(&d, &q, &Budget::unlimited()).unwrap() as f64;
        let e = bs.estimate(&q, &mut rng);
        assert!(
            e.count + 1e-6 >= truth,
            "BS {} must upper-bound truth {truth}",
            e.count
        );
    }
}

#[test]
fn jsub_upper_bounds_wj_target_on_cyclic_queries() {
    // JSUB estimates the acyclic relaxation, whose true count upper-bounds
    // the cyclic query's true count.
    let d = data();
    for q in queries(&d) {
        if q.num_edges() < q.num_nodes() {
            continue; // acyclic: relaxation is the query itself
        }
        let tree = JSub::acyclic_subquery(&q);
        let c_tree = count_homomorphisms(&d, &tree, &Budget::unlimited()).unwrap();
        let c_full = count_homomorphisms(&d, &q, &Budget::unlimited()).unwrap();
        assert!(c_tree >= c_full, "tree {c_tree} < cyclic {c_full}");
    }
}

#[test]
fn wander_join_converges_to_truth_on_simple_queries() {
    let d = data();
    let idx = LabelIndex::new(&d);
    let wj = WanderJoin::new(&idx, 30_000);
    let mut rng = SmallRng::seed_from_u64(2);
    let mut checked = 0;
    for q in unlabeled_pool(&d, &[3], 5, 1.0, 11) {
        // fully-wildcard 3-node queries: abundant matches, low variance
        let truth = count_homomorphisms(&d, &q, &Budget::unlimited()).unwrap() as f64;
        if truth < 100.0 {
            continue;
        }
        let e = wj.estimate(&q, &mut rng);
        assert!(!e.failed);
        let ratio = e.count / truth;
        assert!(
            (0.5..2.0).contains(&ratio),
            "WJ {} vs truth {truth} (ratio {ratio})",
            e.count
        );
        checked += 1;
    }
    assert!(checked > 0, "no queries exercised");
}

#[test]
fn iso_estimates_track_iso_counts_not_hom() {
    let d = data();
    let idx = LabelIndex::new(&d);
    let wj_iso = WanderJoin::new_isomorphism(&idx, 20_000);
    let mut rng = SmallRng::seed_from_u64(3);
    let mut checked = 0;
    for q in unlabeled_pool(&d, &[3], 5, 1.0, 13) {
        let iso = count_isomorphisms(&d, &q, &Budget::unlimited()).unwrap() as f64;
        if iso < 100.0 {
            continue;
        }
        let e = wj_iso.estimate(&q, &mut rng);
        assert!(!e.failed);
        let ratio = e.count / iso;
        assert!(
            (0.4..2.5).contains(&ratio),
            "WJ-iso {} vs iso truth {iso}",
            e.count
        );
        checked += 1;
    }
    assert!(checked > 0);
}

#[test]
fn selective_labels_cause_sampling_failure() {
    // a query whose label combination never occurs adjacently
    let d = data();
    let idx = LabelIndex::new(&d);
    // find two labels never adjacent in the data graph
    let mut adjacent = std::collections::HashSet::new();
    for e in d.edges() {
        let (a, b) = (d.label(e.u), d.label(e.v));
        adjacent.insert((a.min(b), a.max(b)));
    }
    let k = d.num_node_labels() as u32;
    let mut found = None;
    'outer: for a in 0..k {
        for b in a..k {
            if !adjacent.contains(&(a, b)) {
                found = Some((a, b));
                break 'outer;
            }
        }
    }
    let Some((a, b)) = found else {
        return; // dense label co-occurrence; nothing to test
    };
    let q = alss::graph::builder::graph_from_edges(&[a, b], &[(0, 1)]);
    let wj = WanderJoin::new(&idx, 200);
    let mut rng = SmallRng::seed_from_u64(4);
    let e = wj.estimate(&q, &mut rng);
    assert!(e.failed, "impossible label pair must fail sampling");
}
