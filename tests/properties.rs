//! Property-based tests (proptest) over the core data structures and
//! algorithmic invariants, spanning crates.

// Test code opts back out of the library panic policy: a panic IS the
// failure report here, and index-sized casts are bounded by tiny fixtures.
#![allow(
    clippy::unwrap_used,
    clippy::cast_possible_truncation,
    clippy::float_cmp
)]

use alss::core::q_error;
use alss::graph::builder::graph_from_edges;
use alss::graph::decompose::is_complete;
use alss::graph::io::{from_text, to_text};
use alss::graph::{decompose, Graph, GraphBuilder, WILDCARD};
use alss::matching::{
    count_homomorphisms, count_homomorphisms_parallel, count_isomorphisms, Budget,
};
use proptest::prelude::*;

/// Strategy: a random connected labeled graph with 2..=7 nodes.
fn connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..=7).prop_flat_map(|n| {
        let max_extra = n * (n - 1) / 2;
        (
            proptest::collection::vec(0u32..4, n),
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..=max_extra),
            proptest::collection::vec(1u32..n.max(2) as u32, n - 1),
        )
            .prop_map(move |(labels, extra, spine)| {
                let mut b = GraphBuilder::new(n);
                b.set_labels(&labels);
                // spanning spine guarantees connectivity: node i attaches to
                // some earlier node
                for (i, r) in spine.iter().enumerate() {
                    let child = (i + 1) as u32;
                    let parent = r % child;
                    b.add_edge(parent, child);
                }
                for (u, v) in extra {
                    if u != v {
                        b.add_edge(u, v);
                    }
                }
                b.build()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_graphs_are_connected(g in connected_graph()) {
        prop_assert!(g.is_connected());
        prop_assert!(g.num_edges() >= g.num_nodes() - 1);
    }

    #[test]
    fn text_roundtrip_preserves_graph(g in connected_graph()) {
        let back = from_text(&to_text(&g)).expect("parse back");
        prop_assert_eq!(g, back);
    }

    #[test]
    fn decomposition_is_always_complete(g in connected_graph(), l in 1u32..4) {
        let subs = decompose(&g, l);
        prop_assert_eq!(subs.len(), g.num_nodes());
        prop_assert!(is_complete(&g, &subs));
        // every substructure is a tree containing its root
        for s in &subs {
            prop_assert_eq!(s.graph.num_edges(), s.graph.num_nodes() - 1);
            prop_assert!(s.graph.is_connected());
        }
    }

    #[test]
    fn iso_count_never_exceeds_hom_count(q in connected_graph()) {
        // fixed small data graph
        let d = graph_from_edges(
            &[0, 1, 2, 3, 0, 1],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4), (2, 5)],
        );
        let b = Budget::unlimited();
        let hom = count_homomorphisms(&d, &q, &b).unwrap();
        let iso = count_isomorphisms(&d, &q, &b).unwrap();
        prop_assert!(iso <= hom, "iso {} > hom {}", iso, hom);
    }

    #[test]
    fn parallel_count_matches_sequential(q in connected_graph()) {
        let d = graph_from_edges(
            &[0, 1, 2, 3, 0, 1, 2, 3],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (0, 7), (1, 5), (2, 6)],
        );
        let b1 = Budget::unlimited();
        let b2 = Budget::unlimited();
        prop_assert_eq!(
            count_homomorphisms(&d, &q, &b1).unwrap(),
            count_homomorphisms_parallel(&d, &q, &b2).unwrap()
        );
    }

    #[test]
    fn query_node_relabeling_to_wildcard_never_decreases_count(q in connected_graph()) {
        let d = graph_from_edges(
            &[0, 1, 2, 3, 0, 1],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)],
        );
        let b = Budget::unlimited();
        let base = count_homomorphisms(&d, &q, &b).unwrap();
        // wildcard all labels: strictly weaker constraints
        let mut wb = GraphBuilder::new(q.num_nodes());
        for v in q.nodes() {
            wb.set_label(v, WILDCARD);
        }
        for e in q.edges() {
            wb.add_edge(e.u, e.v);
        }
        let relaxed = count_homomorphisms(&d, &wb.build(), &b).unwrap();
        prop_assert!(relaxed >= base, "relaxed {} < base {}", relaxed, base);
    }

    #[test]
    fn q_error_is_symmetric_and_at_least_one(c in 1.0f64..1e12, e in 1.0f64..1e12) {
        let q1 = q_error(c, e);
        let q2 = q_error(e, c);
        prop_assert!((q1 - q2).abs() < 1e-9 * q1.max(1.0));
        prop_assert!(q1 >= 1.0);
    }

    #[test]
    fn adding_a_query_edge_never_increases_count(q in connected_graph()) {
        let d = graph_from_edges(
            &[0, 1, 2, 0, 1, 2],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (0, 3), (1, 4)],
        );
        let b = Budget::unlimited();
        let base = count_homomorphisms(&d, &q, &b).unwrap();
        // add one edge between two non-adjacent query nodes, if any
        let n = q.num_nodes() as u32;
        let mut extended = None;
        'outer: for u in 0..n {
            for v in (u + 1)..n {
                if !q.has_edge(u, v) {
                    let mut eb = GraphBuilder::new(q.num_nodes());
                    for w in q.nodes() {
                        eb.set_label(w, q.label(w));
                    }
                    for e in q.edges() {
                        eb.add_edge(e.u, e.v);
                    }
                    eb.add_edge(u, v);
                    extended = Some(eb.build());
                    break 'outer;
                }
            }
        }
        if let Some(ext) = extended {
            let c = count_homomorphisms(&d, &ext, &b).unwrap();
            prop_assert!(c <= base, "more constraints gave more matches: {} > {}", c, base);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The LSS forward pass is permutation-invariant in the *substructure
    /// set* `S(q)` (the paper's §4.2 claim — attention + flatten do not
    /// depend on the order substructures are listed in). Note the claim is
    /// not about query-node renumbering: BFS tie-breaking may pick
    /// different tree edges under a different numbering, legitimately
    /// changing the decomposed substructures themselves.
    #[test]
    fn lss_prediction_invariant_to_substructure_order(
        g in connected_graph(),
        seed in 0u64..100,
        shuffle_seed in 0u64..100,
    ) {
        use alss::core::{Encoder, LssConfig, LssModel};
        use rand::rngs::SmallRng;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;

        let data = graph_from_edges(&[0, 1, 2, 3], &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let enc = Encoder::frequency(&data, 3);
        let mut rng = SmallRng::seed_from_u64(seed);
        let model = LssModel::new(LssConfig::tiny(), enc.node_dim(), enc.edge_dim(), &mut rng);

        let encoded = enc.encode_query(&g);
        let mut shuffled = encoded.clone();
        let mut srng = SmallRng::seed_from_u64(shuffle_seed);
        shuffled.subs.shuffle(&mut srng);

        let p1 = model.predict(&encoded).log10_count;
        let p2 = model.predict(&shuffled).log10_count;
        prop_assert!((p1 - p2).abs() < 1e-3, "{} vs {}", p1, p2);
    }
}
