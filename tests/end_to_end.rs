//! End-to-end pipeline integration: synthetic dataset → labeled workload →
//! sketch training → estimation → active learning, across every workspace
//! crate.

// Test code opts back out of the library panic policy: a panic IS the
// failure report here.
#![allow(
    clippy::unwrap_used,
    clippy::cast_possible_truncation,
    clippy::float_cmp
)]
use alss::core::train::encode_workload;
use alss::core::{
    active_round, LearnedSketch, PoolItem, QErrorStats, SketchConfig, Strategy, TrainConfig,
};
use alss::datasets::queries::{unlabeled_pool, WorkloadSpec};
use alss::datasets::{by_name, generate_workload};
use alss::matching::{count_homomorphisms, Budget, Semantics};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn pipeline_workload() -> (alss::graph::Graph, alss::core::Workload) {
    let data = by_name("yeast", 0.1, 3).expect("dataset");
    let w = generate_workload(
        &data,
        &WorkloadSpec {
            sizes: vec![3, 4],
            per_size: 25,
            semantics: Semantics::Homomorphism,
            budget_per_query: 5_000_000,
            ..Default::default()
        },
    );
    (data, w)
}

#[test]
fn train_estimate_pipeline_beats_untrained_model() {
    let (data, workload) = pipeline_workload();
    assert!(
        workload.len() >= 20,
        "workload too small: {}",
        workload.len()
    );
    let mut rng = SmallRng::seed_from_u64(0);
    let (train, test) = workload.stratified_split(0.8, &mut rng);

    let mut cfg = SketchConfig::tiny();
    cfg.train = TrainConfig::quick(60);
    let (sketch, report) = LearnedSketch::train(&data, &train, &cfg);
    assert!(report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap());

    // untrained model of the same shape
    let mut cfg0 = cfg;
    cfg0.train = TrainConfig::quick(0);
    let (untrained, _) = LearnedSketch::train(&data, &train, &cfg0);

    let stats = |s: &LearnedSketch| {
        let pairs: Vec<(f64, f64)> = test
            .queries
            .iter()
            .map(|q| (q.count as f64, s.estimate(&q.graph)))
            .collect();
        QErrorStats::from_pairs(&pairs).expect("non-empty")
    };
    let trained_stats = stats(&sketch);
    let untrained_stats = stats(&untrained);
    assert!(
        trained_stats.geo_mean < untrained_stats.geo_mean,
        "training should help: {} vs {}",
        trained_stats.geo_mean,
        untrained_stats.geo_mean
    );
    // all estimates valid
    for q in &test.queries {
        let e = sketch.estimate(&q.graph);
        assert!(e.is_finite() && e >= 1.0);
    }
}

#[test]
fn active_learning_rounds_integrate_with_exact_engine() {
    let (data, workload) = pipeline_workload();
    let mut rng = SmallRng::seed_from_u64(1);
    let (train, _) = workload.stratified_split(0.8, &mut rng);
    let mut cfg = SketchConfig::tiny();
    cfg.train = TrainConfig::quick(10);
    let (mut sketch, _) = LearnedSketch::train(&data, &train, &cfg);

    let pool_graphs = unlabeled_pool(&data, &[3, 4], 10, 0.0, 5);
    assert!(!pool_graphs.is_empty());
    let mut items = encode_workload(sketch.encoder(), &train);
    let mut pool: Vec<PoolItem> = pool_graphs
        .iter()
        .map(|g| PoolItem {
            encoded: sketch.encode(g),
            graph: g.clone(),
        })
        .collect();
    let n_items = items.len();
    let n_pool = pool.len();
    let report = active_round(
        &mut sketch,
        &mut items,
        &mut pool,
        |g| count_homomorphisms(&data, g, &Budget::new(5_000_000)).ok(),
        Strategy::Entropy,
        5,
        &TrainConfig::quick(5),
        0,
        &mut rng,
    );
    assert_eq!(report.labeled + report.dropped, 5.min(n_pool));
    assert_eq!(items.len(), n_items + report.labeled);
}

#[test]
fn workload_serde_roundtrip() {
    let (_, workload) = pipeline_workload();
    let json = serde_json::to_string(&workload).expect("serialize");
    let back: alss::core::Workload = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.len(), workload.len());
    for (a, b) in workload.queries.iter().zip(&back.queries) {
        assert_eq!(a.count, b.count);
        assert_eq!(a.graph, b.graph);
    }
}

#[test]
fn isomorphism_pipeline_works_too() {
    let data = by_name("yeast", 0.1, 4).expect("dataset");
    let w = generate_workload(
        &data,
        &WorkloadSpec {
            sizes: vec![3, 4],
            per_size: 15,
            semantics: Semantics::Isomorphism,
            budget_per_query: 5_000_000,
            ..Default::default()
        },
    );
    assert!(w.len() >= 10);
    let mut rng = SmallRng::seed_from_u64(2);
    let (train, test) = w.stratified_split(0.8, &mut rng);
    let mut cfg = SketchConfig::tiny();
    cfg.train = TrainConfig::quick(30);
    let (sketch, _) = LearnedSketch::train(&data, &train, &cfg);
    for q in &test.queries {
        assert!(sketch.estimate(&q.graph) >= 1.0);
    }
}
