//! Multi-label node support (the paper's yago carries multiple labels per
//! entity): matching semantics, statistics, encoding, and end-to-end
//! training over a multi-label knowledge-graph analogue.

// Test code opts back out of the library panic policy: a panic IS the
// failure report here.
#![allow(
    clippy::unwrap_used,
    clippy::cast_possible_truncation,
    clippy::float_cmp
)]
use alss::core::workload::LabeledQuery;
use alss::core::{Encoder, LearnedSketch, SketchConfig, TrainConfig, Workload};
use alss::datasets::by_name;
use alss::graph::augmented::label_augmented_graph;
use alss::graph::builder::graph_from_edges;
use alss::graph::io::{from_text, to_text};
use alss::graph::labels::LabelStats;
use alss::graph::{Graph, GraphBuilder};
use alss::matching::{count_homomorphisms, count_isomorphisms, Budget};

/// A 4-node data graph where node 1 carries labels {0, 1} and node 3
/// carries {2, 0}.
fn multilabel_data() -> Graph {
    let mut b = GraphBuilder::new(4);
    b.set_label(0, 0)
        .set_label(1, 0)
        .set_label(2, 1)
        .set_label(3, 2);
    b.add_extra_label(1, 1);
    b.add_extra_label(3, 0);
    b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3);
    b.build()
}

#[test]
fn label_accessors_and_matching() {
    let g = multilabel_data();
    assert!(g.is_multi_labeled());
    assert_eq!(g.label(1), 0);
    assert_eq!(g.extra_labels(1), &[1]);
    assert_eq!(g.labels_of(1).collect::<Vec<_>>(), vec![0, 1]);
    assert_eq!(g.labels_of(0).collect::<Vec<_>>(), vec![0]);
    assert!(g.node_matches(1, 0));
    assert!(g.node_matches(1, 1));
    assert!(!g.node_matches(1, 2));
    assert!(g.node_matches(3, 0) && g.node_matches(3, 2));
    assert!(g.node_matches(1, alss::graph::WILDCARD));
}

#[test]
fn counting_respects_label_containment() {
    let g = multilabel_data();
    let b = Budget::unlimited();
    // single node labeled 1: matches node 2 (primary) and node 1 (extra)
    let q1 = graph_from_edges(&[1], &[]);
    assert_eq!(count_homomorphisms(&g, &q1, &b).unwrap(), 2);
    // edge 1-1: node 1 (labels {0,1}) adjacent to node 2 (label 1):
    // ordered pairs (1,2) and (2,1) → 2
    let q2 = graph_from_edges(&[1, 1], &[(0, 1)]);
    assert_eq!(count_homomorphisms(&g, &q2, &b).unwrap(), 2);
    assert_eq!(count_isomorphisms(&g, &q2, &b).unwrap(), 2);
    // edge 0-2: nodes with label 0: {0,1,3}; label 2: {3}; adjacent pairs:
    // only (2? no)… label-0 nodes adjacent to node 3: node 2 has label 1,
    // so no (0,2) pair via primary; but wait node 3 itself has label 0 AND 2
    // — homomorphism needs two (possibly equal) nodes joined by an edge, so
    // no match (no self loops).
    let q3 = graph_from_edges(&[0, 2], &[(0, 1)]);
    assert_eq!(count_homomorphisms(&g, &q3, &b).unwrap(), 0);
}

#[test]
fn label_stats_count_all_labels() {
    let g = multilabel_data();
    let s = LabelStats::new(&g);
    // label 0 carried by nodes 0, 1, 3
    assert_eq!(s.frequency(0), 3);
    // label 1 carried by nodes 1 (extra), 2
    assert_eq!(s.frequency(1), 2);
    assert_eq!(s.frequency(2), 1);
}

#[test]
fn augmented_graph_links_every_label() {
    let g = multilabel_data();
    let a = label_augmented_graph(&g);
    // node 1 connects to label nodes 0 and 1
    assert!(a.graph.has_edge(1, a.label_node(0)));
    assert!(a.graph.has_edge(1, a.label_node(1)));
    assert!(!a.graph.has_edge(0, a.label_node(1)));
}

#[test]
fn text_io_roundtrips_extra_labels() {
    let g = multilabel_data();
    let text = to_text(&g);
    assert!(text.contains("v 1 0 1"), "expected extra label in: {text}");
    let back = from_text(&text).unwrap();
    assert_eq!(g, back);
}

#[test]
fn encoder_sums_label_embeddings() {
    let g = multilabel_data();
    let mut rng = alss::core::train::seeded_rng(0);
    let enc = Encoder::embedding(
        &g,
        3,
        &alss::embedding::prone::ProneConfig {
            dim: 4,
            ..Default::default()
        },
        &mut rng,
    );
    let f0 = enc.node_features(0); // label 0 only
    let f1v = enc.node_features(1); // label 1 only
    let multi = enc.node_features_multi(&[0, 1]); // labels {0,1}
    for i in 0..4 {
        assert!(
            (multi[i] - (f0[i] + f1v[i])).abs() < 1e-5,
            "sum property violated at dim {i}"
        );
    }
}

#[test]
fn frequency_encoding_marks_every_label_dim() {
    let g = multilabel_data();
    let enc = Encoder::frequency(&g, 3);
    let multi = enc.node_features_multi(&[0, 2]);
    assert!(multi[0] != 0.0 && multi[2] != 0.0);
    assert_eq!(multi[1], 0.0);
}

#[test]
fn substructures_preserve_extra_labels() {
    let g = multilabel_data();
    let subs = alss::graph::decompose(&g, 2);
    // the substructure rooted at node 1 keeps its {0,1} label set
    let s = &subs[1];
    assert_eq!(s.original[0], 1);
    assert_eq!(s.graph.labels_of(0).collect::<Vec<_>>(), vec![0, 1]);
}

#[test]
fn yago_analogue_is_multilabeled_and_trainable() {
    let data = by_name("yago", 0.01, 0).expect("yago analogue");
    assert!(
        data.is_multi_labeled(),
        "yago analogue should be multi-label"
    );
    assert!(data.has_edge_labels());
    // build a tiny labeled workload from single-edge queries
    let mut queries = Vec::new();
    for e in data.edges().take(12) {
        let mut b = GraphBuilder::new(2);
        b.set_label(0, data.label(e.u))
            .set_label(1, data.label(e.v));
        b.add_edge(0, 1);
        let q = b.build();
        let c = count_homomorphisms(&data, &q, &Budget::new(5_000_000)).unwrap_or(1);
        queries.push(LabeledQuery::new(q, c.max(1)));
    }
    let mut cfg = SketchConfig::tiny();
    cfg.encoding = alss::core::EncodingKind::Embedding; // the paper's yago setting
    cfg.train = TrainConfig::quick(5);
    let (sketch, _) = LearnedSketch::train(&data, &Workload::from_queries(queries), &cfg);
    let probe = {
        let mut b = GraphBuilder::new(2);
        b.set_label(0, data.label(0))
            .set_label(1, alss::graph::WILDCARD);
        b.add_edge(0, 1);
        b.build()
    };
    assert!(sketch.estimate(&probe).is_finite());
}
