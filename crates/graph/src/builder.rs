//! Incremental graph builder producing the immutable CSR [`Graph`].

use crate::{Graph, LabelId, NodeId, WILDCARD};

/// Builder for [`Graph`].
///
/// Duplicated edges and self loops are rejected with a panic in debug
/// semantics (they indicate a generator bug); duplicate `add_edge` calls on
/// the same pair are deduplicated silently since random generators commonly
/// re-propose edges.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    labels: Vec<LabelId>,
    extra_labels: Vec<Vec<LabelId>>,
    any_extra_label: bool,
    edges: Vec<(NodeId, NodeId)>,
    edge_labels: Vec<LabelId>,
    any_edge_label: bool,
}

impl GraphBuilder {
    /// Create a builder for a graph with `n` nodes, all initially
    /// [`WILDCARD`]-labeled.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            labels: vec![WILDCARD; n],
            extra_labels: vec![Vec::new(); n],
            any_extra_label: false,
            edges: Vec::new(),
            edge_labels: Vec::new(),
            any_edge_label: false,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Set the label of node `v`.
    pub fn set_label(&mut self, v: NodeId, label: LabelId) -> &mut Self {
        self.labels[v as usize] = label;
        self
    }

    /// Add a secondary label to node `v` (multi-label graphs, e.g. the
    /// yago analogue). Duplicates of the primary or of an existing extra
    /// label are ignored.
    pub fn add_extra_label(&mut self, v: NodeId, label: LabelId) -> &mut Self {
        assert!(label != WILDCARD, "extra labels cannot be wildcards");
        let vi = v as usize;
        if self.labels[vi] != label && !self.extra_labels[vi].contains(&label) {
            self.extra_labels[vi].push(label);
            self.any_extra_label = true;
        }
        self
    }

    /// Set all node labels at once (`labels.len()` must equal `n`).
    pub fn set_labels(&mut self, labels: &[LabelId]) -> &mut Self {
        assert_eq!(labels.len(), self.labels.len(), "label count mismatch");
        self.labels.copy_from_slice(labels);
        self
    }

    /// Add an unlabeled undirected edge. Self loops are ignored.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.add_labeled_edge(u, v, WILDCARD)
    }

    /// Add an undirected edge carrying an edge label. Self loops are ignored.
    pub fn add_labeled_edge(&mut self, u: NodeId, v: NodeId, label: LabelId) -> &mut Self {
        assert!(
            (u as usize) < self.labels.len() && (v as usize) < self.labels.len(),
            "edge endpoint out of range"
        );
        if u == v {
            return self;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b));
        self.edge_labels.push(label);
        if label != WILDCARD {
            self.any_edge_label = true;
        }
        self
    }

    /// Whether edge `(u,v)` was already added (linear scan; intended for
    /// small query graphs and tests).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.contains(&(a, b))
    }

    /// Finalize into an immutable CSR [`Graph`]. Duplicate edges are merged
    /// (keeping the first label).
    pub fn build(&self) -> Graph {
        let n = self.labels.len();
        // Sort-dedup unique edges, keeping labels aligned.
        let mut order: Vec<usize> = (0..self.edges.len()).collect();
        order.sort_unstable_by_key(|&i| self.edges[i]);
        let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(self.edges.len());
        let mut edge_labels: Vec<LabelId> = Vec::with_capacity(self.edges.len());
        for &i in &order {
            if edges.last() == Some(&self.edges[i]) {
                continue;
            }
            edges.push(self.edges[i]);
            edge_labels.push(self.edge_labels[i]);
        }

        // Degree counting for CSR.
        let mut deg = vec![0u32; n];
        for &(u, v) in &edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + deg[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![0 as NodeId; 2 * edges.len()];
        let mut adj_labels = vec![WILDCARD; 2 * edges.len()];
        for (i, &(u, v)) in edges.iter().enumerate() {
            let l = edge_labels[i];
            neighbors[cursor[u as usize] as usize] = v;
            adj_labels[cursor[u as usize] as usize] = l;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize] as usize] = u;
            adj_labels[cursor[v as usize] as usize] = l;
            cursor[v as usize] += 1;
        }
        // Sort each adjacency (labels move with neighbors).
        for v in 0..n {
            let s = offsets[v] as usize;
            let e = offsets[v + 1] as usize;
            let mut idx: Vec<usize> = (s..e).collect();
            idx.sort_unstable_by_key(|&i| neighbors[i]);
            let nb: Vec<NodeId> = idx.iter().map(|&i| neighbors[i]).collect();
            let lb: Vec<LabelId> = idx.iter().map(|&i| adj_labels[i]).collect();
            neighbors[s..e].copy_from_slice(&nb);
            adj_labels[s..e].copy_from_slice(&lb);
        }

        let num_node_labels = self
            .labels
            .iter()
            .filter(|&&l| l != WILDCARD)
            .chain(self.extra_labels.iter().flatten())
            .map(|&l| l as usize + 1)
            .max()
            .unwrap_or(0);
        let num_edge_labels = if self.any_edge_label {
            edge_labels
                .iter()
                .filter(|&&l| l != WILDCARD)
                .map(|&l| l as usize + 1)
                .max()
                .unwrap_or(0)
        } else {
            0
        };
        let extra = self.any_extra_label.then(|| {
            self.extra_labels
                .iter()
                .map(|e| {
                    let mut s = e.clone();
                    s.sort_unstable();
                    s
                })
                .collect()
        });
        Graph::from_parts(
            offsets,
            neighbors,
            self.any_edge_label.then_some(adj_labels),
            self.labels.clone(),
            edges,
            self.any_edge_label.then_some(edge_labels),
            extra,
            num_node_labels,
            num_edge_labels,
        )
    }
}

/// Convenience: build a node-labeled graph from a label slice and an edge
/// list. Mostly used in tests and examples.
pub fn graph_from_edges(labels: &[LabelId], edges: &[(NodeId, NodeId)]) -> Graph {
    let mut b = GraphBuilder::new(labels.len());
    b.set_labels(labels);
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_edges_are_merged() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).add_edge(1, 0).add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn self_loops_ignored() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0).add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn label_count_tracks_max_label() {
        let g = graph_from_edges(&[0, 5, 2], &[(0, 1), (1, 2)]);
        assert_eq!(g.num_node_labels(), 6);
    }

    #[test]
    fn adjacency_sorted_with_labels_aligned() {
        let mut b = GraphBuilder::new(4);
        b.add_labeled_edge(2, 3, 1)
            .add_labeled_edge(2, 0, 2)
            .add_labeled_edge(2, 1, 3);
        let g = b.build();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.neighbor_edge_labels(2).unwrap(), &[2, 3, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5);
    }
}
