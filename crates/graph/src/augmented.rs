//! The label-augmented graph `G_L` of §4.3 (Fig. 3).

use crate::{label_id, node_id, Graph, GraphBuilder, LabelId, NodeId};

/// Result of [`label_augmented_graph`]: the augmented graph plus the mapping
/// from labels to their dedicated nodes.
#[derive(Clone, Debug)]
pub struct AugmentedGraph {
    /// `G_L = (V ∪ V_L, E ∪ E_L)`. The first `|V|` nodes are the original
    /// data nodes; node `|V| + l` represents label `l`.
    pub graph: Graph,
    /// Number of original data nodes (label node `l` is `base + l`).
    pub base: usize,
}

impl AugmentedGraph {
    /// Node id in `G_L` representing label `l`.
    #[inline]
    pub fn label_node(&self, l: LabelId) -> NodeId {
        node_id(self.base + l as usize)
    }

    /// Inverse of [`AugmentedGraph::label_node`]: if `v` is a label node,
    /// the label it represents.
    #[inline]
    pub fn node_label_id(&self, v: NodeId) -> Option<LabelId> {
        if (v as usize) >= self.base {
            Some(label_id(v as usize - self.base))
        } else {
            None
        }
    }
}

/// Construct the label-augmented graph `G_L` for a data graph `G` (§4.3):
/// add one node per label in `Σ` and connect every data node to the node of
/// its label. Node-embedding pre-training on `G_L` places labels near the
/// topological regions where they occur, which is what LSS-emb exploits.
///
/// Labels in `G_L` are kept (data nodes keep their label; label nodes get
/// their own label id) so downstream embeddings may also use them, though
/// the embedding algorithms in `alss-embedding` are label-agnostic.
pub fn label_augmented_graph(g: &Graph) -> AugmentedGraph {
    let n = g.num_nodes();
    let sigma = g.num_node_labels();
    let mut b = GraphBuilder::new(n + sigma);
    for v in g.nodes() {
        b.set_label(v, g.label(v));
    }
    for l in 0..sigma {
        b.set_label(node_id(n + l), label_id(l));
    }
    for e in g.edges() {
        b.add_edge(e.u, e.v);
    }
    for v in g.nodes() {
        for l in g.labels_of(v) {
            b.add_edge(v, node_id(n + l as usize));
        }
    }
    AugmentedGraph {
        graph: b.build(),
        base: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn augmentation_adds_label_nodes_and_edges() {
        // Fig. 3-style: 4 nodes, labels {0,0,1,2}, path edges.
        let g = graph_from_edges(&[0, 0, 1, 2], &[(0, 1), (1, 2), (2, 3)]);
        let a = label_augmented_graph(&g);
        assert_eq!(a.graph.num_nodes(), 4 + 3);
        // 3 original edges + 4 label edges
        assert_eq!(a.graph.num_edges(), 3 + 4);
        // label node 0 is adjacent to both label-0 data nodes
        let l0 = a.label_node(0);
        assert_eq!(a.graph.neighbors(l0), &[0, 1]);
        assert_eq!(a.node_label_id(l0), Some(0));
        assert_eq!(a.node_label_id(0), None);
    }

    #[test]
    fn original_topology_preserved() {
        let g = graph_from_edges(&[0, 1], &[(0, 1)]);
        let a = label_augmented_graph(&g);
        assert!(a.graph.has_edge(0, 1));
        assert!(a.graph.has_edge(0, a.label_node(0)));
        assert!(a.graph.has_edge(1, a.label_node(1)));
        assert!(!a.graph.has_edge(a.label_node(0), a.label_node(1)));
    }
}
