//! `l`-hop BFS-tree extraction (Algorithm 1, line 1).

use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// A breadth-first-search tree of depth at most `l`, rooted at a node of a
/// query graph. Node ids refer to the *original* graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsTree {
    /// Root node (original id).
    pub root: NodeId,
    /// Nodes in BFS discovery order; `nodes[0] == root`.
    pub nodes: Vec<NodeId>,
    /// Depth of each node in `nodes` (same order); `depth[0] == 0`.
    pub depths: Vec<u32>,
    /// Tree edges `(parent, child)` in original ids, in discovery order.
    pub edges: Vec<(NodeId, NodeId)>,
}

/// Compute the `l`-hop BFS tree of `g` rooted at `root`.
///
/// Each node reachable within `l` hops appears exactly once, attached to the
/// neighbor through which it was first discovered (ties broken by ascending
/// node id, since adjacency lists are sorted). Tree edges therefore form a
/// tree; every query edge `(u, v)` appears in at least the trees rooted at
/// `u` and `v` whenever `l >= 1`, which makes the decomposition *complete*
/// in the paper's sense.
pub fn bfs_tree(g: &Graph, root: NodeId, l: u32) -> BfsTree {
    let n = g.num_nodes();
    debug_assert!((root as usize) < n, "root out of range");
    let mut seen = vec![false; n];
    let mut nodes = Vec::new();
    let mut depths = Vec::new();
    let mut edges = Vec::new();
    let mut queue = VecDeque::new();
    seen[root as usize] = true;
    nodes.push(root);
    depths.push(0);
    queue.push_back((root, 0u32));
    while let Some((v, d)) = queue.pop_front() {
        if d == l {
            continue;
        }
        for &u in g.neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                nodes.push(u);
                depths.push(d + 1);
                edges.push((v, u));
                queue.push_back((u, d + 1));
            }
        }
    }
    BfsTree {
        root,
        nodes,
        depths,
        edges,
    }
}

impl BfsTree {
    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree contains only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Maximum depth reached.
    pub fn depth(&self) -> u32 {
        self.depths.last().copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    /// Path 0-1-2-3-4.
    fn path5() -> Graph {
        graph_from_edges(&[0, 1, 2, 3, 4], &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn hop_limit_respected() {
        let g = path5();
        let t = bfs_tree(&g, 0, 2);
        assert_eq!(t.nodes, vec![0, 1, 2]);
        assert_eq!(t.depths, vec![0, 1, 2]);
        assert_eq!(t.edges, vec![(0, 1), (1, 2)]);
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn full_coverage_with_large_l() {
        let g = path5();
        let t = bfs_tree(&g, 2, 10);
        assert_eq!(t.len(), 5);
        assert_eq!(t.edges.len(), 4); // spanning tree
    }

    #[test]
    fn tree_edges_form_a_tree() {
        // Cycle of 4: BFS tree from 0 must omit one cycle edge.
        let g = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let t = bfs_tree(&g, 0, 3);
        assert_eq!(t.len(), 4);
        assert_eq!(t.edges.len(), 3);
    }

    #[test]
    fn zero_hops_is_just_root() {
        let g = path5();
        let t = bfs_tree(&g, 3, 0);
        assert_eq!(t.nodes, vec![3]);
        assert!(t.is_empty());
        assert!(t.edges.is_empty());
    }
}
