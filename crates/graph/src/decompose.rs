//! Query decomposition into per-root BFS-tree substructures (§4.2).

use crate::{bfs_tree, node_id, Graph, GraphBuilder, NodeId, WILDCARD};

/// One decomposed substructure `s_i` of a query graph: an `l`-hop BFS tree
/// materialized as a small labeled graph with local (dense) node ids.
#[derive(Clone, Debug)]
pub struct Substructure {
    /// The substructure as a standalone labeled graph. Local node `i`
    /// corresponds to `original[i]` in the query graph.
    pub graph: Graph,
    /// Mapping local node id → original query node id.
    pub original: Vec<NodeId>,
    /// Root of the BFS tree, as a local id (always 0).
    pub root: NodeId,
}

/// Decompose a query graph `q` into `|V_q|` substructures, the `l`-hop BFS
/// tree rooted at every query node (§4.2; the paper uses `l = 3`).
///
/// The decomposition is *complete*: the union of substructure nodes is
/// `V_q` and (for `l >= 1` and connected `q`) the union of substructure
/// edges is `E_q`, because every edge `(u,v)` is a depth-1 tree edge of the
/// tree rooted at `u`. Substructures deliberately overlap so the attention
/// aggregator can learn their interrelation.
pub fn decompose(q: &Graph, l: u32) -> Vec<Substructure> {
    let _span = alss_telemetry::Span::enter("decompose");
    let subs: Vec<Substructure> = q.nodes().map(|root| substructure_at(q, root, l)).collect();
    alss_telemetry::counter("decompose.substructures").add(subs.len() as u64);
    subs
}

/// Build the single substructure rooted at `root`.
pub fn substructure_at(q: &Graph, root: NodeId, l: u32) -> Substructure {
    let t = bfs_tree(q, root, l);
    let mut local = vec![u32::MAX; q.num_nodes()];
    for (i, &v) in t.nodes.iter().enumerate() {
        local[v as usize] = node_id(i);
    }
    let mut b = GraphBuilder::new(t.nodes.len());
    for (i, &v) in t.nodes.iter().enumerate() {
        b.set_label(node_id(i), q.label(v));
        for l in q.extra_labels(v) {
            b.add_extra_label(node_id(i), *l);
        }
    }
    for &(u, v) in &t.edges {
        match q.edge_label(u, v) {
            Some(WILDCARD) | None => {
                b.add_edge(local[u as usize], local[v as usize]);
            }
            Some(el) => {
                b.add_labeled_edge(local[u as usize], local[v as usize], el);
            }
        }
    }
    Substructure {
        graph: b.build(),
        original: t.nodes,
        root: 0,
    }
}

/// Check the completeness property of a decomposition against its query:
/// every query node and (if `q` is connected and `l >= 1`) every query edge
/// is covered by some substructure. Used by tests and debug assertions.
pub fn is_complete(q: &Graph, subs: &[Substructure]) -> bool {
    let mut node_cov = vec![false; q.num_nodes()];
    let mut edge_cov = std::collections::HashSet::new();
    for s in subs {
        for (i, &orig) in s.original.iter().enumerate() {
            node_cov[orig as usize] = true;
            let _ = i;
        }
        for e in s.graph.edges() {
            let (a, b) = (s.original[e.u as usize], s.original[e.v as usize]);
            edge_cov.insert(if a < b { (a, b) } else { (b, a) });
        }
    }
    node_cov.iter().all(|&c| c) && q.edges().all(|e| edge_cov.contains(&(e.u, e.v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn square_with_diagonal() -> Graph {
        graph_from_edges(&[0, 1, 2, 3], &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)])
    }

    #[test]
    fn one_substructure_per_node() {
        let q = square_with_diagonal();
        let subs = decompose(&q, 3);
        assert_eq!(subs.len(), 4);
        for (i, s) in subs.iter().enumerate() {
            assert_eq!(s.original[0], i as NodeId);
            assert_eq!(s.root, 0);
        }
    }

    #[test]
    fn decomposition_is_complete() {
        let q = square_with_diagonal();
        for l in 1..=3 {
            let subs = decompose(&q, l);
            assert!(is_complete(&q, &subs), "incomplete at l={l}");
        }
    }

    #[test]
    fn labels_are_preserved_locally() {
        let q = square_with_diagonal();
        let subs = decompose(&q, 2);
        for s in &subs {
            for v in s.graph.nodes() {
                assert_eq!(s.graph.label(v), q.label(s.original[v as usize]));
            }
        }
    }

    #[test]
    fn substructures_are_trees() {
        let q = square_with_diagonal();
        for s in decompose(&q, 3) {
            // tree: |E| = |V| - 1, connected
            assert_eq!(s.graph.num_edges(), s.graph.num_nodes() - 1);
            assert!(s.graph.is_connected());
        }
    }

    #[test]
    fn edge_labels_survive_decomposition() {
        let mut b = GraphBuilder::new(3);
        b.set_label(0, 0).set_label(1, 1).set_label(2, 2);
        b.add_labeled_edge(0, 1, 5).add_labeled_edge(1, 2, 6);
        let q = b.build();
        let subs = decompose(&q, 3);
        let s0 = &subs[0];
        let l0 = s0.graph.edges().map(|e| e.label).collect::<Vec<_>>();
        assert!(l0.contains(&5) && l0.contains(&6));
    }
}
