//! Label statistics: frequency `F(l)`, entropy `Ent(Σ)`, and label coverage.

use crate::{Graph, LabelId, WILDCARD};
use serde::{Deserialize, Serialize};

/// Per-label occurrence statistics of a data graph (§4.3, Table 2).
///
/// `F(l) = |{v | L(v) = l}|` drives the frequency-based feature encoding,
/// and the label entropy `Ent(Σ) = -Σ_l p(l) log p(l)` (natural log, as in
/// Table 2) characterizes label skew: the *lower* the entropy the more
/// skewed the distribution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LabelStats {
    freq: Vec<u64>,
    num_nodes: u64,
    edge_freq: Vec<u64>,
    num_edges: u64,
}

impl LabelStats {
    /// Compute label statistics of a data graph.
    pub fn new(g: &Graph) -> Self {
        let mut freq = vec![0u64; g.num_node_labels()];
        for v in g.nodes() {
            // multi-labeled nodes contribute to every label they carry
            // (F(l) = |{v : l ∈ L(v)}|, §4.3)
            for l in g.labels_of(v) {
                freq[l as usize] += 1;
            }
        }
        let mut edge_freq = vec![0u64; g.num_edge_labels()];
        if g.has_edge_labels() {
            for e in g.edges() {
                if e.label != WILDCARD {
                    edge_freq[e.label as usize] += 1;
                }
            }
        }
        LabelStats {
            freq,
            num_nodes: g.num_nodes() as u64,
            edge_freq,
            num_edges: g.num_edges() as u64,
        }
    }

    /// Number of distinct node labels tracked.
    pub fn num_labels(&self) -> usize {
        self.freq.len()
    }

    /// `F(l)`: number of nodes carrying label `l`.
    #[inline]
    pub fn frequency(&self, l: LabelId) -> u64 {
        self.freq.get(l as usize).copied().unwrap_or(0)
    }

    /// `F(l)/|V|`: fraction of data nodes matching a query node labeled `l`
    /// (1.0 for [`WILDCARD`], matching the paper's encoding).
    #[inline]
    pub fn selectivity(&self, l: LabelId) -> f64 {
        if l == WILDCARD {
            return 1.0;
        }
        if self.num_nodes == 0 {
            return 0.0;
        }
        self.frequency(l) as f64 / self.num_nodes as f64
    }

    /// Number of edges carrying edge label `l` (0 if not edge-labeled).
    #[inline]
    pub fn edge_frequency(&self, l: LabelId) -> u64 {
        self.edge_freq.get(l as usize).copied().unwrap_or(0)
    }

    /// Fraction of edges matching a query edge labeled `l`.
    #[inline]
    pub fn edge_selectivity(&self, l: LabelId) -> f64 {
        if l == WILDCARD {
            return 1.0;
        }
        if self.num_edges == 0 {
            return 0.0;
        }
        self.edge_frequency(l) as f64 / self.num_edges as f64
    }

    /// Label entropy `Ent(Σ)` over the node-label distribution (natural
    /// log, Table 2). Higher entropy ⇒ flatter distribution.
    pub fn entropy(&self) -> f64 {
        let n = self.num_nodes as f64;
        if n == 0.0 {
            return 0.0;
        }
        -self
            .freq
            .iter()
            .filter(|&&f| f > 0)
            .map(|&f| {
                let p = f as f64 / n;
                p * p.ln()
            })
            .sum::<f64>()
    }

    /// Labels sorted by descending frequency; used by the §6.6 workload
    /// generator ("frequent labels" = top 20% of `Σ`).
    pub fn labels_by_frequency(&self) -> Vec<LabelId> {
        let mut order: Vec<LabelId> = (0..crate::label_id(self.freq.len())).collect();
        order.sort_by_key(|&l| std::cmp::Reverse(self.freq[l as usize]));
        order
    }
}

/// `Cov(Σ)` of a query workload: average number of (non-wildcard) labels per
/// query node (Table 3; with single labels per node this is the fraction of
/// labeled query nodes).
pub fn label_coverage(queries: &[Graph]) -> f64 {
    let mut labeled = 0u64;
    let mut total = 0u64;
    for q in queries {
        for v in q.nodes() {
            total += 1;
            if q.label(v) != WILDCARD {
                labeled += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        labeled as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn frequency_and_selectivity() {
        let g = graph_from_edges(&[0, 0, 1, 2], &[(0, 1), (1, 2), (2, 3)]);
        let s = LabelStats::new(&g);
        assert_eq!(s.frequency(0), 2);
        assert_eq!(s.frequency(1), 1);
        assert_eq!(s.frequency(9), 0);
        assert!((s.selectivity(0) - 0.5).abs() < 1e-12);
        assert_eq!(s.selectivity(WILDCARD), 1.0);
    }

    #[test]
    fn entropy_uniform_vs_skewed() {
        let uniform = graph_from_edges(&[0, 1, 2, 3], &[(0, 1)]);
        let skewed = graph_from_edges(&[0, 0, 0, 1], &[(0, 1)]);
        let eu = LabelStats::new(&uniform).entropy();
        let es = LabelStats::new(&skewed).entropy();
        assert!((eu - (4.0f64).ln()).abs() < 1e-9);
        assert!(es < eu);
    }

    #[test]
    fn coverage_counts_wildcards() {
        let q1 = graph_from_edges(&[0, WILDCARD], &[(0, 1)]);
        let q2 = graph_from_edges(&[1, 1], &[(0, 1)]);
        let cov = label_coverage(&[q1, q2]);
        assert!((cov - 0.75).abs() < 1e-12);
    }

    #[test]
    fn frequency_ordering() {
        let g = graph_from_edges(&[2, 2, 2, 0, 1, 1], &[(0, 1)]);
        let s = LabelStats::new(&g);
        assert_eq!(s.labels_by_frequency(), vec![2, 1, 0]);
    }
}
