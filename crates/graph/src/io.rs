//! Graph (de)serialization: a line-oriented text format compatible in
//! spirit with the `SubgraphMatching` dataset format used by the paper's
//! query sets, plus serde-JSON helpers for whole workloads.
//!
//! Text format:
//!
//! ```text
//! t <num_nodes> <num_edges>
//! v <id> <label> [extra_label ...]   # label -1 means wildcard
//! e <u> <v> [edge_label]
//! ```

use crate::{Graph, GraphBuilder, LabelId, NodeId, WILDCARD};
use std::fmt::Write as _;

/// Error for text-format parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Serialize a graph to the text format.
pub fn to_text(g: &Graph) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "t {} {}", g.num_nodes(), g.num_edges());
    for v in g.nodes() {
        let l = g.label(v);
        if l == WILDCARD {
            let _ = writeln!(s, "v {} -1", v);
        } else {
            let _ = write!(s, "v {} {}", v, l);
            for e in g.extra_labels(v) {
                let _ = write!(s, " {}", e);
            }
            let _ = writeln!(s);
        }
    }
    for e in g.edges() {
        if e.label == WILDCARD {
            let _ = writeln!(s, "e {} {}", e.u, e.v);
        } else {
            let _ = writeln!(s, "e {} {} {}", e.u, e.v, e.label);
        }
    }
    s
}

/// Parse a graph from the text format.
pub fn from_text(text: &str) -> Result<Graph, ParseError> {
    let mut builder: Option<GraphBuilder> = None;
    for (i, raw) in text.lines().enumerate() {
        let ln = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("t") => {
                let n: usize = it
                    .next()
                    .ok_or_else(|| err(ln, "missing node count"))?
                    .parse()
                    .map_err(|_| err(ln, "bad node count"))?;
                builder = Some(GraphBuilder::new(n));
            }
            Some("v") => {
                let b = builder.as_mut().ok_or_else(|| err(ln, "v before t"))?;
                let id: NodeId = it
                    .next()
                    .ok_or_else(|| err(ln, "missing node id"))?
                    .parse()
                    .map_err(|_| err(ln, "bad node id"))?;
                let lab: i64 = it
                    .next()
                    .ok_or_else(|| err(ln, "missing label"))?
                    .parse()
                    .map_err(|_| err(ln, "bad label"))?;
                if (id as usize) >= b.num_nodes() {
                    return Err(err(ln, "node id out of range"));
                }
                let label = if lab < 0 {
                    WILDCARD
                } else {
                    LabelId::try_from(lab).map_err(|_| err(ln, "label out of range"))?
                };
                b.set_label(id, label);
                for tok in it {
                    let extra: LabelId = tok.parse().map_err(|_| err(ln, "bad extra label"))?;
                    b.add_extra_label(id, extra);
                }
            }
            Some("e") => {
                let b = builder.as_mut().ok_or_else(|| err(ln, "e before t"))?;
                let u: NodeId = it
                    .next()
                    .ok_or_else(|| err(ln, "missing u"))?
                    .parse()
                    .map_err(|_| err(ln, "bad u"))?;
                let v: NodeId = it
                    .next()
                    .ok_or_else(|| err(ln, "missing v"))?
                    .parse()
                    .map_err(|_| err(ln, "bad v"))?;
                if (u as usize) >= b.num_nodes() || (v as usize) >= b.num_nodes() {
                    return Err(err(ln, "edge endpoint out of range"));
                }
                match it.next() {
                    Some(tok) => {
                        let l: LabelId = tok.parse().map_err(|_| err(ln, "bad edge label"))?;
                        b.add_labeled_edge(u, v, l);
                    }
                    None => {
                        b.add_edge(u, v);
                    }
                }
            }
            Some(tok) => return Err(err(ln, format!("unknown record '{tok}'"))),
            None => {}
        }
    }
    Ok(builder.ok_or_else(|| err(0, "empty input"))?.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn text_roundtrip_node_labels() {
        let g = graph_from_edges(&[0, 1, WILDCARD], &[(0, 1), (1, 2)]);
        let g2 = from_text(&to_text(&g)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn text_roundtrip_edge_labels() {
        let mut b = GraphBuilder::new(3);
        b.set_label(0, 2).set_label(1, 2).set_label(2, 0);
        b.add_labeled_edge(0, 1, 4).add_labeled_edge(1, 2, 5);
        let g = b.build();
        let g2 = from_text(&to_text(&g)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = from_text("t 2 1\nv 0 0\nv 5 0\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("out of range"));
        assert!(from_text("v 0 0").is_err());
        assert!(from_text("").is_err());
        assert!(from_text("t 1 0\nx 1").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = from_text("# header\n\nt 2 1\nv 0 1\nv 1 1\ne 0 1\n").unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
    }
}
