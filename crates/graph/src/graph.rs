//! CSR representation of a labeled undirected graph.

use crate::{LabelId, NodeId, WILDCARD};
use serde::{Deserialize, Serialize};

/// A labeled undirected graph `G = (V, E, L, Σ)` in CSR form (§2).
///
/// * Every node carries a *primary* label (data graphs) or possibly the
///   [`WILDCARD`] label (query graphs). Data nodes may additionally carry
///   extra labels (the paper's yago has multi-label entities; a query
///   label matches a data node if it appears anywhere in the node's label
///   set — see [`Graph::node_matches`]).
/// * Edges are undirected and stored twice in the adjacency (once per
///   direction); the unique edge list (`u < v`) is kept separately so that
///   relational-style estimators can treat `E` as an edge relation.
/// * Edge labels are optional (only the yago-like dataset uses them).
///
/// Construct with [`crate::GraphBuilder`]; the CSR arrays are immutable
/// afterwards, which lets the matching engine and the estimators share the
/// graph freely across threads (`Graph: Send + Sync`).
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct Graph {
    offsets: Vec<u32>,
    neighbors: Vec<NodeId>,
    /// Aligned with `neighbors`; present iff the graph has edge labels.
    adj_edge_labels: Option<Vec<LabelId>>,
    node_labels: Vec<LabelId>,
    /// Unique undirected edges with `u <= v` is forbidden (no self loops),
    /// stored with `u < v`.
    edges: Vec<(NodeId, NodeId)>,
    edge_labels: Option<Vec<LabelId>>,
    /// Extra (secondary) labels per node; present iff any node is
    /// multi-labeled. `extra_labels[v]` excludes the primary label.
    #[serde(default)]
    extra_labels: Option<Vec<Vec<LabelId>>>,
    num_node_labels: usize,
    num_edge_labels: usize,
}

/// A CSR well-formedness violation found by [`Graph::validate`].
///
/// The variants name the broken invariant; `Display` renders the offending
/// location so a corrupted graph file can be diagnosed without a debugger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CsrViolation {
    /// `offsets.len() != num_nodes + 1` or `offsets[0] != 0`.
    OffsetShape { expected: usize, found: usize },
    /// Offsets must be non-decreasing and end at `neighbors.len()`.
    OffsetOutOfBounds {
        node: NodeId,
        offset: usize,
        len: usize,
    },
    /// An adjacency entry names a node `>= num_nodes`.
    NeighborOutOfBounds { node: NodeId, neighbor: NodeId },
    /// An adjacency list is not strictly increasing (unsorted or
    /// duplicate neighbor).
    AdjacencyNotSorted { node: NodeId },
    /// A node is adjacent to itself.
    SelfLoop { node: NodeId },
    /// `v ∈ adj(u)` but `u ∉ adj(v)`.
    AsymmetricEdge { u: NodeId, v: NodeId },
    /// The unique edge list disagrees with the adjacency
    /// (`neighbors.len() != 2 * edges.len()`, an edge with `u >= v`, an
    /// unsorted/duplicate edge list, or an edge absent from the adjacency).
    EdgeListMismatch { detail: &'static str, index: usize },
    /// An edge-label array is not aligned with its edge array.
    LabelArrayMisaligned { expected: usize, found: usize },
}

impl std::fmt::Display for CsrViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsrViolation::OffsetShape { expected, found } => {
                write!(
                    f,
                    "offset array has wrong shape: expected {expected}, found {found}"
                )
            }
            CsrViolation::OffsetOutOfBounds { node, offset, len } => {
                write!(
                    f,
                    "offset {offset} of node {node} outside adjacency of length {len}"
                )
            }
            CsrViolation::NeighborOutOfBounds { node, neighbor } => {
                write!(f, "node {node} lists out-of-bounds neighbor {neighbor}")
            }
            CsrViolation::AdjacencyNotSorted { node } => {
                write!(f, "adjacency of node {node} is not strictly sorted")
            }
            CsrViolation::SelfLoop { node } => write!(f, "node {node} has a self loop"),
            CsrViolation::AsymmetricEdge { u, v } => {
                write!(
                    f,
                    "edge {u}-{v} present in adj({u}) but missing from adj({v})"
                )
            }
            CsrViolation::EdgeListMismatch { detail, index } => {
                write!(f, "edge list mismatch at index {index}: {detail}")
            }
            CsrViolation::LabelArrayMisaligned { expected, found } => {
                write!(
                    f,
                    "edge-label array misaligned: expected {expected}, found {found}"
                )
            }
        }
    }
}

impl std::error::Error for CsrViolation {}

/// A borrowed view of one unique undirected edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeRef {
    /// Smaller endpoint.
    pub u: NodeId,
    /// Larger endpoint.
    pub v: NodeId,
    /// Edge label, or [`WILDCARD`] if the graph is not edge-labeled.
    pub label: LabelId,
}

impl Graph {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        offsets: Vec<u32>,
        neighbors: Vec<NodeId>,
        adj_edge_labels: Option<Vec<LabelId>>,
        node_labels: Vec<LabelId>,
        edges: Vec<(NodeId, NodeId)>,
        edge_labels: Option<Vec<LabelId>>,
        extra_labels: Option<Vec<Vec<LabelId>>>,
        num_node_labels: usize,
        num_edge_labels: usize,
    ) -> Self {
        let g = Graph {
            offsets,
            neighbors,
            adj_edge_labels,
            node_labels,
            edges,
            edge_labels,
            extra_labels,
            num_node_labels,
            num_edge_labels,
        };
        debug_assert!(
            g.validate().is_ok(),
            "GraphBuilder produced a malformed CSR: {:?}",
            g.validate()
        );
        g
    }

    /// Check every CSR well-formedness invariant: offset shape and bounds,
    /// in-bounds sorted self-loop-free adjacencies, edge symmetry, and
    /// agreement between the adjacency and the unique edge list.
    ///
    /// Construction through [`crate::GraphBuilder`] upholds these by
    /// design (and debug builds re-check). Call this after deserializing a
    /// graph from disk or the network: serde fills the private arrays
    /// directly, so a corrupted or hand-edited file is otherwise only
    /// caught by an index panic deep inside a traversal.
    pub fn validate(&self) -> Result<(), CsrViolation> {
        let n = self.node_labels.len();
        let adj_len = self.neighbors.len();
        if self.offsets.len() != n + 1 || self.offsets.first() != Some(&0) {
            return Err(CsrViolation::OffsetShape {
                expected: n + 1,
                found: self.offsets.len(),
            });
        }
        for v in 0..n {
            let (s, e) = (self.offsets[v] as usize, self.offsets[v + 1] as usize);
            if s > e || e > adj_len {
                return Err(CsrViolation::OffsetOutOfBounds {
                    node: crate::node_id(v),
                    offset: e,
                    len: adj_len,
                });
            }
        }
        if self.offsets[n] as usize != adj_len {
            return Err(CsrViolation::OffsetOutOfBounds {
                node: crate::node_id(n),
                offset: self.offsets[n] as usize,
                len: adj_len,
            });
        }
        for v in 0..n {
            let adj = &self.neighbors[self.offsets[v] as usize..self.offsets[v + 1] as usize];
            for (i, &u) in adj.iter().enumerate() {
                if u as usize >= n {
                    return Err(CsrViolation::NeighborOutOfBounds {
                        node: crate::node_id(v),
                        neighbor: u,
                    });
                }
                if u as usize == v {
                    return Err(CsrViolation::SelfLoop {
                        node: crate::node_id(v),
                    });
                }
                if i > 0 && adj[i - 1] >= u {
                    return Err(CsrViolation::AdjacencyNotSorted {
                        node: crate::node_id(v),
                    });
                }
            }
            for &u in adj {
                let back = &self.neighbors
                    [self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize];
                if back.binary_search(&crate::node_id(v)).is_err() {
                    return Err(CsrViolation::AsymmetricEdge {
                        u: crate::node_id(v),
                        v: u,
                    });
                }
            }
        }
        if adj_len != 2 * self.edges.len() {
            return Err(CsrViolation::EdgeListMismatch {
                detail: "adjacency length is not twice the unique edge count",
                index: 0,
            });
        }
        for (i, &(u, v)) in self.edges.iter().enumerate() {
            if u >= v || v as usize >= n {
                return Err(CsrViolation::EdgeListMismatch {
                    detail: "edge endpoints must satisfy u < v < num_nodes",
                    index: i,
                });
            }
            if i > 0 && self.edges[i - 1] >= (u, v) {
                return Err(CsrViolation::EdgeListMismatch {
                    detail: "unique edge list must be strictly sorted",
                    index: i,
                });
            }
            let adj = &self.neighbors
                [self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize];
            if adj.binary_search(&v).is_err() {
                return Err(CsrViolation::EdgeListMismatch {
                    detail: "unique edge absent from the adjacency",
                    index: i,
                });
            }
        }
        if let Some(al) = &self.adj_edge_labels {
            if al.len() != adj_len {
                return Err(CsrViolation::LabelArrayMisaligned {
                    expected: adj_len,
                    found: al.len(),
                });
            }
        }
        if let Some(el) = &self.edge_labels {
            if el.len() != self.edges.len() {
                return Err(CsrViolation::LabelArrayMisaligned {
                    expected: self.edges.len(),
                    found: el.len(),
                });
            }
        }
        if self.node_labels.len() != n {
            return Err(CsrViolation::LabelArrayMisaligned {
                expected: n,
                found: self.node_labels.len(),
            });
        }
        Ok(())
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.node_labels.len()
    }

    /// Number of unique undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of distinct node labels `|Σ|` (upper bound; dense ids).
    #[inline]
    pub fn num_node_labels(&self) -> usize {
        self.num_node_labels
    }

    /// Number of distinct edge labels `|Σ_E|`, 0 if not edge-labeled.
    #[inline]
    pub fn num_edge_labels(&self) -> usize {
        self.num_edge_labels
    }

    /// Whether the graph carries edge labels.
    #[inline]
    pub fn has_edge_labels(&self) -> bool {
        self.edge_labels.is_some()
    }

    /// Primary label of node `v` ([`WILDCARD`] on an unlabeled query node).
    #[inline]
    pub fn label(&self, v: NodeId) -> LabelId {
        self.node_labels[v as usize]
    }

    /// Extra (secondary) labels of node `v`, excluding the primary label.
    /// Empty unless the graph is multi-labeled.
    #[inline]
    pub fn extra_labels(&self, v: NodeId) -> &[LabelId] {
        match &self.extra_labels {
            Some(e) => &e[v as usize],
            None => &[],
        }
    }

    /// All labels of node `v`: the primary label followed by any extras
    /// (the paper's `L(v)` as a set; yago-like graphs are multi-labeled).
    pub fn labels_of(&self, v: NodeId) -> impl Iterator<Item = LabelId> + '_ {
        let primary = self.label(v);
        std::iter::once(primary)
            .filter(move |&l| l != WILDCARD)
            .chain(self.extra_labels(v).iter().copied())
    }

    /// Whether the graph has any multi-labeled node.
    pub fn is_multi_labeled(&self) -> bool {
        self.extra_labels.is_some()
    }

    /// Does data node `dv` satisfy a query node label `ql`? A wildcard
    /// matches anything; otherwise `ql` must appear in the node's label
    /// set (§2: `L(u) = L(f(u))`, generalized to multi-label containment).
    #[inline]
    pub fn node_matches(&self, dv: NodeId, ql: LabelId) -> bool {
        if ql == WILDCARD || self.label(dv) == ql {
            return true;
        }
        self.extra_labels(dv).contains(&ql)
    }

    /// All node labels, indexed by node id.
    #[inline]
    pub fn node_labels(&self) -> &[LabelId] {
        &self.node_labels
    }

    /// Neighbors of `v` (sorted ascending).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let s = self.offsets[v as usize] as usize;
        let e = self.offsets[v as usize + 1] as usize;
        &self.neighbors[s..e]
    }

    /// Edge labels aligned with [`Graph::neighbors`]`(v)`.
    ///
    /// Returns `None` for graphs without edge labels.
    #[inline]
    pub fn neighbor_edge_labels(&self, v: NodeId) -> Option<&[LabelId]> {
        let s = self.offsets[v as usize] as usize;
        let e = self.offsets[v as usize + 1] as usize;
        self.adj_edge_labels.as_ref().map(|l| &l[s..e])
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Whether the undirected edge `(u, v)` exists (binary search).
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Label of edge `(u, v)`; [`WILDCARD`] if unlabeled; `None` if the edge
    /// does not exist.
    pub fn edge_label(&self, u: NodeId, v: NodeId) -> Option<LabelId> {
        let s = self.offsets[u as usize] as usize;
        let pos = self.neighbors(u).binary_search(&v).ok()?;
        Some(match &self.adj_edge_labels {
            Some(l) => l[s + pos],
            None => WILDCARD,
        })
    }

    /// Iterate over node ids `0..n`.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..crate::node_id(self.num_nodes())
    }

    /// Iterate over unique undirected edges (`u < v`).
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(move |(i, &(u, v))| EdgeRef {
                u,
                v,
                label: self.edge_labels.as_ref().map(|l| l[i]).unwrap_or(WILDCARD),
            })
    }

    /// The unique edge list (`u < v`) without labels.
    #[inline]
    pub fn edge_list(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Whether the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0 as NodeId];
        seen[0] = true;
        let mut cnt = 1;
        while let Some(v) = stack.pop() {
            for &u in self.neighbors(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    cnt += 1;
                    stack.push(u);
                }
            }
        }
        cnt == n
    }

    /// Relabel check helper: does data node `dv` satisfy the label of query
    /// node `qv` of query `q`?
    #[inline]
    pub fn node_compatible(&self, q: &Graph, qv: NodeId, dv: NodeId) -> bool {
        self.node_matches(dv, q.label(qv))
    }
}

#[cfg(test)]
mod validate_tests {
    use super::CsrViolation;
    use crate::{Graph, GraphBuilder};

    fn valid_path() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.set_label(0, 0).set_label(1, 1).set_label(2, 0);
        b.add_edge(0, 1).add_edge(1, 2);
        b.build()
    }

    #[test]
    fn builder_graphs_validate() {
        assert_eq!(valid_path().validate(), Ok(()));
        assert_eq!(GraphBuilder::new(0).build().validate(), Ok(()));
    }

    #[test]
    fn detects_offset_shape() {
        let mut g = valid_path();
        g.offsets.pop();
        assert!(matches!(
            g.validate(),
            Err(CsrViolation::OffsetShape { .. })
        ));
    }

    #[test]
    fn detects_offset_out_of_bounds() {
        let mut g = valid_path();
        let last = g.offsets.len() - 1;
        g.offsets[last] = 99;
        assert!(matches!(
            g.validate(),
            Err(CsrViolation::OffsetOutOfBounds { .. })
        ));
    }

    #[test]
    fn detects_out_of_bounds_neighbor() {
        let mut g = valid_path();
        g.neighbors[0] = 7;
        assert!(matches!(
            g.validate(),
            Err(CsrViolation::NeighborOutOfBounds {
                node: 0,
                neighbor: 7
            })
        ));
    }

    #[test]
    fn detects_unsorted_adjacency() {
        let mut g = valid_path();
        // node 1 is adjacent to [0, 2]; swap to break strict ordering
        let s = g.offsets[1] as usize;
        g.neighbors.swap(s, s + 1);
        assert!(matches!(
            g.validate(),
            Err(CsrViolation::AdjacencyNotSorted { node: 1 })
        ));
    }

    #[test]
    fn detects_self_loop() {
        let mut g = valid_path();
        g.neighbors[0] = 0;
        assert!(matches!(
            g.validate(),
            Err(CsrViolation::SelfLoop { node: 0 })
        ));
    }

    #[test]
    fn detects_asymmetric_edge() {
        let mut g = valid_path();
        // adj(0) = [1]; retarget to 2 without touching adj(2) = [1]
        g.neighbors[0] = 2;
        assert!(matches!(
            g.validate(),
            Err(CsrViolation::AsymmetricEdge { u: 0, v: 2 })
        ));
    }

    #[test]
    fn detects_edge_list_mismatch() {
        let mut g = valid_path();
        g.edges.pop();
        assert!(matches!(
            g.validate(),
            Err(CsrViolation::EdgeListMismatch { .. })
        ));

        let mut g = valid_path();
        g.edges[0] = (1, 0); // violates u < v
        assert!(matches!(
            g.validate(),
            Err(CsrViolation::EdgeListMismatch { .. })
        ));
    }

    #[test]
    fn detects_misaligned_labels() {
        let mut g = valid_path();
        g.node_labels.push(0);
        // One extra node label changes the expected offsets length first.
        assert!(g.validate().is_err());

        let mut g = valid_path();
        g.edge_labels = Some(vec![1]); // 2 edges, 1 label
        assert!(matches!(
            g.validate(),
            Err(CsrViolation::LabelArrayMisaligned { .. })
        ));
    }

    #[test]
    fn violations_render() {
        let mut g = valid_path();
        g.neighbors[0] = 7;
        let msg = g.validate().unwrap_err().to_string();
        assert!(msg.contains("out-of-bounds neighbor 7"), "{msg}");
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn triangle() -> crate::Graph {
        let mut b = GraphBuilder::new(3);
        b.set_label(0, 0).set_label(1, 1).set_label(2, 2);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
        b.build()
    }

    #[test]
    fn csr_basics() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(2), 2);
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.max_degree(), 2);
        assert!(g.is_connected());
    }

    #[test]
    fn edge_iteration_is_unique_and_ordered() {
        let g = triangle();
        let edges: Vec<_> = g.edges().map(|e| (e.u, e.v)).collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
        for e in g.edges() {
            assert!(e.u < e.v);
            assert_eq!(e.label, crate::WILDCARD);
        }
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).add_edge(2, 3);
        let g = b.build();
        assert!(!g.is_connected());
    }

    #[test]
    fn edge_label_lookup() {
        let mut b = GraphBuilder::new(3);
        b.add_labeled_edge(0, 1, 7).add_labeled_edge(1, 2, 9);
        let g = b.build();
        assert_eq!(g.edge_label(0, 1), Some(7));
        assert_eq!(g.edge_label(1, 0), Some(7));
        assert_eq!(g.edge_label(2, 1), Some(9));
        assert_eq!(g.edge_label(0, 2), None);
        assert!(g.has_edge_labels());
        assert_eq!(g.neighbor_edge_labels(1).unwrap(), &[7, 9]);
    }
}
