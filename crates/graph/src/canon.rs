//! Canonical query hashing for isomorphism-aware caching.
//!
//! The serving layer wants `estimate(q)` to be a cache hit whenever an
//! *isomorphic* copy of `q` was answered before, regardless of how the
//! client happened to number the query's nodes. This module computes a
//! 64-bit hash that is invariant under node permutations: two isomorphic
//! graphs always receive the same [`CanonicalKey`].
//!
//! The construction is degree/label-refined color refinement (1-WL):
//!
//! 1. every node starts with a color derived from its primary label, its
//!    sorted extra labels, and its degree;
//! 2. each round recolors a node by hashing its own color together with the
//!    **sorted** multiset of `(edge label, neighbor color)` pairs;
//!    refinement stops when the number of distinct colors stabilizes (at
//!    most `n` rounds);
//! 3. the graph hash folds together the sorted multiset of final node
//!    colors, the sorted multiset of canonical edge signatures, the node
//!    and edge counts, and a connectivity flag.
//!
//! Every step is a sorted-multiset fold, so the result cannot depend on
//! node ids — permutation invariance holds by construction. The converse
//! (distinct hashes for non-isomorphic graphs) holds exactly as often as
//! 1-WL distinguishes the pair; WL-equivalent non-isomorphic graphs (e.g.
//! some regular graph pairs) share a hash. For the small labeled query
//! graphs this workspace serves (≤ ~16 nodes, labeled, usually connected)
//! such collisions are vanishingly rare, and a collision degrades only to
//! a *cached approximate estimate* for a WL-equivalent query — acceptable
//! for an estimate cache, not for an exact-match index.

use crate::{Graph, LabelId};

/// Cache key for a query graph: canonical hash plus cheap structural
/// invariants kept separate to further cut the collision surface.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CanonicalKey {
    /// Number of query nodes.
    pub nodes: u32,
    /// Number of (unique, undirected) query edges.
    pub edges: u32,
    /// Permutation-invariant WL hash (see module docs).
    pub hash: u64,
}

/// splitmix64 finalizer: the avalanche core used for all mixing here.
#[inline]
fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Order-dependent combine; callers sort first where invariance is needed.
#[inline]
fn mix(acc: u64, v: u64) -> u64 {
    finalize(acc ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Fold a label into a hash. [`crate::WILDCARD`] maps to its own sentinel
/// so "any" never collides with a concrete label.
#[inline]
fn mix_label(acc: u64, l: LabelId) -> u64 {
    mix(acc, u64::from(l) ^ 0xA5A5_0000)
}

/// Initial color: primary label, sorted extra labels, degree.
fn initial_colors(g: &Graph) -> Vec<u64> {
    g.nodes()
        .map(|v| {
            let mut h = mix_label(0x1217_5EED, g.label(v));
            let mut extra: Vec<LabelId> = g.extra_labels(v).to_vec();
            extra.sort_unstable();
            for l in extra {
                h = mix_label(h, l);
            }
            mix(h, g.degree(v) as u64)
        })
        .collect()
}

fn distinct(colors: &[u64]) -> usize {
    let mut sorted = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// One refinement round: hash each node's color with the sorted multiset
/// of `(edge label, neighbor color)` signatures.
fn refine_once(g: &Graph, colors: &[u64]) -> Vec<u64> {
    g.nodes()
        .map(|v| {
            let nbrs = g.neighbors(v);
            let elabels = g.neighbor_edge_labels(v);
            let mut sig: Vec<u64> = nbrs
                .iter()
                .enumerate()
                .map(|(i, &u)| {
                    let el = elabels.map_or(crate::WILDCARD, |ls| ls[i]);
                    mix_label(colors[u as usize], el)
                })
                .collect();
            sig.sort_unstable();
            let mut h = mix(0xC01_0C01, colors[v as usize]);
            for s in sig {
                h = mix(h, s);
            }
            h
        })
        .collect()
}

/// Final WL node colors after stabilized refinement.
fn stable_colors(g: &Graph) -> Vec<u64> {
    let n = g.num_nodes();
    let mut colors = initial_colors(g);
    let mut classes = distinct(&colors);
    // Each effective round strictly grows the number of color classes, so
    // at most `n` rounds are ever needed.
    for _ in 0..n {
        let next = refine_once(g, &colors);
        let next_classes = distinct(&next);
        colors = next;
        if next_classes == classes {
            break;
        }
        classes = next_classes;
    }
    colors
}

/// Permutation-invariant canonical hash of a (query) graph.
pub fn canonical_hash(g: &Graph) -> u64 {
    let _span = alss_telemetry::Span::enter("canon.hash");
    let colors = stable_colors(g);

    // Sorted multiset of node colors.
    let mut node_part = colors.clone();
    node_part.sort_unstable();
    let mut h = 0x5EED_CA40_u64;
    for c in node_part {
        h = mix(h, c);
    }

    // Sorted multiset of edge signatures (endpoint colors ordered).
    let mut edge_part: Vec<u64> = g
        .edges()
        .map(|e| {
            let (cu, cv) = (colors[e.u as usize], colors[e.v as usize]);
            let (lo, hi) = if cu <= cv { (cu, cv) } else { (cv, cu) };
            mix_label(mix(mix(0xED6E, lo), hi), e.label)
        })
        .collect();
    edge_part.sort_unstable();
    for s in edge_part {
        h = mix(h, s);
    }

    h = mix(h, g.num_nodes() as u64);
    h = mix(h, g.num_edges() as u64);
    mix(h, u64::from(g.is_connected()))
}

/// Canonical cache key for a query graph.
pub fn canonical_key(g: &Graph) -> CanonicalKey {
    CanonicalKey {
        nodes: u32::try_from(g.num_nodes()).unwrap_or(u32::MAX),
        edges: u32::try_from(g.num_edges()).unwrap_or(u32::MAX),
        hash: canonical_hash(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::{GraphBuilder, WILDCARD};

    #[test]
    fn permuted_path_hashes_identically() {
        // 0-1-2 with labels a,b,c vs the reversed numbering.
        let g1 = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let g2 = graph_from_edges(&[2, 1, 0], &[(0, 1), (1, 2)]);
        assert_eq!(canonical_key(&g1), canonical_key(&g2));
    }

    #[test]
    fn labels_matter() {
        let g1 = graph_from_edges(&[0, 0], &[(0, 1)]);
        let g2 = graph_from_edges(&[0, 1], &[(0, 1)]);
        assert_ne!(canonical_hash(&g1), canonical_hash(&g2));
    }

    #[test]
    fn structure_matters() {
        // Path P4 vs star S3: same labels, same node/edge counts,
        // different degree sequences.
        let path = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]);
        let star = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]);
        assert_ne!(canonical_hash(&path), canonical_hash(&star));
    }

    #[test]
    fn connectivity_disambiguates_wl_twins() {
        // C6 vs 2xC3 is the classic 1-WL-equivalent pair; the explicit
        // connectivity flag still separates them.
        let mut b = GraphBuilder::new(6);
        for v in 0..6 {
            b.set_label(v, 0);
        }
        for v in 0..6u32 {
            b.add_edge(v, (v + 1) % 6);
        }
        let c6 = b.build();

        let mut b = GraphBuilder::new(6);
        for v in 0..6 {
            b.set_label(v, 0);
        }
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v);
        }
        let two_c3 = b.build();
        assert_ne!(canonical_hash(&c6), canonical_hash(&two_c3));
    }

    #[test]
    fn wildcard_label_is_distinct() {
        let mut b = GraphBuilder::new(2);
        b.set_label(0, 0).set_label(1, WILDCARD);
        b.add_edge(0, 1);
        let wild = b.build();
        let concrete = graph_from_edges(&[0, 1], &[(0, 1)]);
        assert_ne!(canonical_hash(&wild), canonical_hash(&concrete));
    }

    #[test]
    fn edge_labels_contribute() {
        let mut b = GraphBuilder::new(2);
        b.set_label(0, 0).set_label(1, 0);
        b.add_labeled_edge(0, 1, 3);
        let g1 = b.build();
        let mut b = GraphBuilder::new(2);
        b.set_label(0, 0).set_label(1, 0);
        b.add_labeled_edge(0, 1, 4);
        let g2 = b.build();
        assert_ne!(canonical_hash(&g1), canonical_hash(&g2));
    }
}
