//! Random connected-subgraph extraction — the query generator of §6.1.
//!
//! The paper generates query graphs "by randomly extracting connected
//! subgraphs from the data graph" (following G-CARE / the in-memory
//! subgraph-matching study). We implement snowball-style extraction with
//! knobs for induced vs. sparsified edges and for dropping labels to
//! wildcards.

use crate::{node_id, Graph, GraphBuilder, NodeId, WILDCARD};
use rand::seq::SliceRandom;
use rand::Rng;

/// Options controlling query extraction.
#[derive(Clone, Copy, Debug)]
pub struct ExtractOptions {
    /// If true, keep *all* data edges among the selected nodes (induced
    /// subgraph); otherwise keep the discovery spanning tree plus each
    /// remaining induced edge independently with probability `extra_edge_prob`.
    pub induced: bool,
    /// Probability of keeping a non-tree induced edge when `induced == false`.
    pub extra_edge_prob: f64,
    /// Probability of replacing a node label with [`WILDCARD`] ("any").
    pub wildcard_prob: f64,
    /// Drop edge labels entirely (query on node labels only).
    pub drop_edge_labels: bool,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            induced: true,
            extra_edge_prob: 0.5,
            wildcard_prob: 0.0,
            drop_edge_labels: false,
        }
    }
}

/// Extract one connected query graph with exactly `size` nodes.
///
/// Returns `None` if the random start lands in a component smaller than
/// `size` (callers simply retry). The result's node ids are local
/// (`0..size` in discovery order) and its labels are copied from the data
/// graph, possibly degraded to wildcards per
/// [`ExtractOptions::wildcard_prob`].
pub fn extract_query<R: Rng>(
    g: &Graph,
    size: usize,
    opts: &ExtractOptions,
    rng: &mut R,
) -> Option<Graph> {
    if size == 0 || g.num_nodes() < size {
        return None;
    }
    let start = node_id(rng.gen_range(0..g.num_nodes()));
    let mut selected: Vec<NodeId> = vec![start];
    let mut in_set = std::collections::HashSet::new();
    in_set.insert(start);
    // Frontier: all neighbors of the selected set not yet selected.
    let mut frontier: Vec<NodeId> = g
        .neighbors(start)
        .iter()
        .copied()
        .filter(|v| !in_set.contains(v))
        .collect();
    while selected.len() < size {
        if frontier.is_empty() {
            return None; // component exhausted
        }
        let idx = rng.gen_range(0..frontier.len());
        let v = frontier.swap_remove(idx);
        if !in_set.insert(v) {
            continue;
        }
        selected.push(v);
        for &u in g.neighbors(v) {
            if !in_set.contains(&u) {
                frontier.push(u);
            }
        }
    }

    let mut local = std::collections::HashMap::new();
    for (i, &v) in selected.iter().enumerate() {
        local.insert(v, node_id(i));
    }
    let mut b = GraphBuilder::new(size);
    for (i, &v) in selected.iter().enumerate() {
        if rng.gen_bool(opts.wildcard_prob.clamp(0.0, 1.0)) {
            b.set_label(node_id(i), WILDCARD);
        } else {
            b.set_label(node_id(i), g.label(v));
            for l in g.extra_labels(v) {
                b.add_extra_label(node_id(i), *l);
            }
        }
    }
    // Discovery tree edges: connect each node (after the first) to some
    // earlier-selected neighbor, guaranteeing connectivity.
    let mut induced_edges: Vec<(NodeId, NodeId)> = Vec::new();
    for (i, &v) in selected.iter().enumerate() {
        for &u in g.neighbors(v) {
            if let Some(&lu) = local.get(&u) {
                if lu < node_id(i) {
                    induced_edges.push((lu, node_id(i)));
                }
            }
        }
    }
    // Pick a spanning structure first.
    let mut connected_to_earlier = vec![false; size];
    connected_to_earlier[0] = true;
    let mut keep: Vec<(NodeId, NodeId)> = Vec::new();
    let mut rest: Vec<(NodeId, NodeId)> = Vec::new();
    // For each node, keep the first edge linking it to an earlier node.
    let mut shuffled = induced_edges.clone();
    shuffled.shuffle(rng);
    for &(a, bnode) in &shuffled {
        if !connected_to_earlier[bnode as usize] {
            connected_to_earlier[bnode as usize] = true;
            keep.push((a, bnode));
        } else {
            rest.push((a, bnode));
        }
    }
    if connected_to_earlier.iter().any(|&c| !c) {
        return None; // should not happen given snowball growth
    }
    for &(a, c) in &rest {
        if opts.induced || rng.gen_bool(opts.extra_edge_prob.clamp(0.0, 1.0)) {
            keep.push((a, c));
        }
    }
    for &(a, c) in &keep {
        let (ou, ov) = (selected[a as usize], selected[c as usize]);
        match g.edge_label(ou, ov) {
            Some(l) if l != WILDCARD && !opts.drop_edge_labels => {
                b.add_labeled_edge(a, c, l);
            }
            _ => {
                b.add_edge(a, c);
            }
        }
    }
    Some(b.build())
}

/// Extract an *unlabeled* pattern (all nodes wildcard) of the given size,
/// used by the §6.6 query-optimization workload before labels are assigned.
pub fn extract_pattern<R: Rng>(
    g: &Graph,
    size: usize,
    induced: bool,
    rng: &mut R,
) -> Option<Graph> {
    let opts = ExtractOptions {
        induced,
        wildcard_prob: 1.0,
        drop_edge_labels: true,
        ..Default::default()
    };
    extract_query(g, size, &opts, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid() -> Graph {
        // 4x4 grid, labels = row index
        let mut b = GraphBuilder::new(16);
        for v in 0..16u32 {
            b.set_label(v, v / 4);
        }
        for r in 0..4u32 {
            for c in 0..4u32 {
                let v = r * 4 + c;
                if c + 1 < 4 {
                    b.add_edge(v, v + 1);
                }
                if r + 1 < 4 {
                    b.add_edge(v, v + 4);
                }
            }
        }
        b.build()
    }

    #[test]
    fn extracted_queries_are_connected_and_sized() {
        let g = grid();
        let mut rng = SmallRng::seed_from_u64(7);
        for size in 2..=8 {
            for _ in 0..20 {
                if let Some(q) = extract_query(&g, size, &ExtractOptions::default(), &mut rng) {
                    assert_eq!(q.num_nodes(), size);
                    assert!(q.is_connected());
                    assert!(q.num_edges() >= size - 1);
                }
            }
        }
    }

    #[test]
    fn labels_copied_from_data_graph() {
        let g = grid();
        let mut rng = SmallRng::seed_from_u64(1);
        let q = extract_query(&g, 4, &ExtractOptions::default(), &mut rng).unwrap();
        for v in q.nodes() {
            assert!(q.label(v) < 4);
        }
    }

    #[test]
    fn wildcard_prob_one_drops_all_labels() {
        let g = grid();
        let mut rng = SmallRng::seed_from_u64(2);
        let q = extract_pattern(&g, 5, true, &mut rng).unwrap();
        for v in q.nodes() {
            assert_eq!(q.label(v), WILDCARD);
        }
    }

    #[test]
    fn oversized_request_returns_none() {
        let g = grid();
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(extract_query(&g, 17, &ExtractOptions::default(), &mut rng).is_none());
        assert!(extract_query(&g, 0, &ExtractOptions::default(), &mut rng).is_none());
    }

    #[test]
    fn sparsified_extraction_keeps_connectivity() {
        let g = grid();
        let mut rng = SmallRng::seed_from_u64(4);
        let opts = ExtractOptions {
            induced: false,
            extra_edge_prob: 0.0,
            ..Default::default()
        };
        for _ in 0..20 {
            if let Some(q) = extract_query(&g, 6, &opts, &mut rng) {
                assert!(q.is_connected());
                assert_eq!(q.num_edges(), 5); // exactly a spanning tree
            }
        }
    }
}
