//! # alss-graph
//!
//! Labeled undirected graph substrate for the ALSS reproduction
//! (*A Learned Sketch for Subgraph Counting*, SIGMOD 2021).
//!
//! This crate provides:
//!
//! * [`Graph`] — a compact CSR representation of a node-labeled (and
//!   optionally edge-labeled) undirected graph, used for both data graphs
//!   and query graphs (§2 of the paper);
//! * [`GraphBuilder`] — an ergonomic incremental builder;
//! * [`LabelStats`] — label frequencies `F(l)` and the label entropy
//!   `Ent(Σ)` reported in Table 2;
//! * [`bfs_tree`] / [`decompose`] — the `l`-hop BFS-tree query
//!   decomposition of §4.2 (Algorithm 1, line 1);
//! * [`augmented::label_augmented_graph`] — the label-augmented graph
//!   `G_L` of §4.3 (Fig. 3) used for embedding pre-training;
//! * [`extract`] — random connected-subgraph extraction, the query
//!   generator of §6.1;
//! * [`io`] — serde-based persistence of graphs and query workloads.
//!
//! Nodes in a *query* graph may be unlabeled (the paper's "**any**" label);
//! this is encoded with the sentinel [`WILDCARD`].
//!
//! ```
//! use alss_graph::{GraphBuilder, decompose};
//!
//! // a labeled triangle with a tail
//! let mut b = GraphBuilder::new(4);
//! b.set_label(0, 0).set_label(1, 1).set_label(2, 1).set_label(3, 2);
//! b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2).add_edge(2, 3);
//! let g = b.build();
//! assert_eq!(g.num_edges(), 4);
//! assert!(g.is_connected());
//!
//! // the paper's query decomposition: one BFS tree per node
//! let subs = decompose(&g, 3);
//! assert_eq!(subs.len(), 4);
//! ```

// Test modules opt back out of the library panic/numeric policy: a panic
// IS the failure report there, and fixtures are tiny.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub mod augmented;
pub mod bfs;
pub mod builder;
pub mod canon;
pub mod decompose;
pub mod extract;
pub mod graph;
pub mod io;
pub mod labels;

pub use bfs::{bfs_tree, BfsTree};
pub use builder::GraphBuilder;
pub use canon::{canonical_hash, canonical_key, CanonicalKey};
pub use decompose::{decompose, Substructure};
pub use graph::{CsrViolation, EdgeRef, Graph};
pub use labels::LabelStats;

/// Node identifier within a graph (dense, `0..n`).
pub type NodeId = u32;
/// Label identifier (dense, `0..|Σ|`).
pub type LabelId = u32;

/// Sentinel label meaning "matches **any** label" on a query node/edge (§2).
pub const WILDCARD: LabelId = u32::MAX;

/// Checked `usize → NodeId` conversion for loop indices and array
/// positions. Graphs are bounded to `u32` ids by representation choice
/// (CSR offsets are `u32`); a debug assert catches an index that would
/// silently wrap, and this is the one place that cast is allowed to live.
#[inline]
#[must_use]
pub fn node_id(i: usize) -> NodeId {
    debug_assert!(
        u32::try_from(i).is_ok(),
        "node index {i} exceeds the u32 id space"
    );
    #[allow(clippy::cast_possible_truncation)]
    // bounded: checked above, and |V| < 2^32 by representation
    {
        i as NodeId
    }
}

/// Checked `usize → LabelId` conversion; see [`node_id`].
#[inline]
#[must_use]
pub fn label_id(i: usize) -> LabelId {
    debug_assert!(
        u32::try_from(i).is_ok(),
        "label index {i} exceeds the u32 id space"
    );
    #[allow(clippy::cast_possible_truncation)]
    // bounded: checked above, and |Σ| < 2^32 by representation
    {
        i as LabelId
    }
}

/// Does a query label match a data label?
///
/// A [`WILDCARD`] query label matches everything; otherwise the labels must
/// be equal. Data graphs never carry wildcards.
#[inline]
pub fn label_matches(query_label: LabelId, data_label: LabelId) -> bool {
    query_label == WILDCARD || query_label == data_label
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcard_matches_everything() {
        assert!(label_matches(WILDCARD, 0));
        assert!(label_matches(WILDCARD, 12345));
        assert!(label_matches(3, 3));
        assert!(!label_matches(3, 4));
    }
}
