//! Property tests for the CSR well-formedness validator: any graph the
//! builder produces — duplicate edges, both edge orientations, labels,
//! wildcards — must validate, and the serde round trip must preserve both
//! the graph and its validity.

// Test code opts back out of the library panic/numeric policy: a panic IS
// the failure report here, and fixtures are tiny.
#![allow(
    clippy::unwrap_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use alss_graph::{Graph, GraphBuilder, WILDCARD};
use proptest::prelude::*;

fn build_random(n: usize, edges: &[(usize, usize)], labeled_edges: bool) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        let l = (v % 5) as u32;
        b.set_label(v as u32, if l == 4 { WILDCARD } else { l });
    }
    for (i, &(u, v)) in edges.iter().enumerate() {
        let (u, v) = (u % n, v % n);
        if u == v {
            continue;
        }
        if labeled_edges {
            b.add_labeled_edge(u as u32, v as u32, (i % 3) as u32);
        } else {
            b.add_edge(u as u32, v as u32);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn built_graphs_always_validate(
        n in 1usize..40,
        edges in proptest::collection::vec((0usize..64, 0usize..64), 0..120),
        labeled in proptest::bool::ANY,
    ) {
        let g = build_random(n, &edges, labeled);
        prop_assert_eq!(g.validate(), Ok(()));
        // Spot-check the invariants the validator promises.
        for v in g.nodes() {
            let adj = g.neighbors(v);
            prop_assert!(adj.windows(2).all(|w| w[0] < w[1]));
            for &u in adj {
                prop_assert!((u as usize) < g.num_nodes());
                prop_assert!(g.neighbors(u).binary_search(&v).is_ok());
            }
        }
    }

    #[test]
    fn serde_round_trip_preserves_validity(
        n in 1usize..20,
        edges in proptest::collection::vec((0usize..32, 0usize..32), 0..40),
    ) {
        let g = build_random(n, &edges, false);
        let json = serde_json::to_string(&g).expect("serialize");
        let back: Graph = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(back.validate(), Ok(()));
        prop_assert_eq!(back, g);
    }
}
