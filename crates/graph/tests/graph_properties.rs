//! Property tests for the graph substrate: CSR invariants, builder
//! determinism, BFS trees, decomposition, extraction, and text IO.

// Test code opts back out of the library panic/numeric policy: a panic IS
// the failure report here, and fixtures are tiny.
#![allow(
    clippy::unwrap_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use alss_graph::extract::{extract_query, ExtractOptions};
use alss_graph::io::{from_text, to_text};
use alss_graph::labels::LabelStats;
use alss_graph::{bfs_tree, decompose, Graph, GraphBuilder};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (1usize..=10).prop_flat_map(|n| {
        (
            proptest::collection::vec(0u32..5, n),
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..=2 * n),
        )
            .prop_map(move |(labels, edges)| {
                let mut b = GraphBuilder::new(n);
                b.set_labels(&labels);
                for (u, v) in edges {
                    if u != v {
                        b.add_edge(u, v);
                    }
                }
                b.build()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_adjacency_is_sorted_and_symmetric(g in arbitrary_graph()) {
        for v in g.nodes() {
            let nb = g.neighbors(v);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "unsorted adjacency");
            for &u in nb {
                prop_assert!(g.neighbors(u).contains(&v), "asymmetric edge");
            }
        }
        // handshake lemma
        let total_degree: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(total_degree, 2 * g.num_edges());
    }

    #[test]
    fn builder_is_deterministic(g in arbitrary_graph()) {
        // rebuilding from the edge list yields the identical graph
        let mut b = GraphBuilder::new(g.num_nodes());
        for v in g.nodes() {
            b.set_label(v, g.label(v));
        }
        for e in g.edges() {
            b.add_edge(e.u, e.v);
        }
        prop_assert_eq!(b.build(), g.clone());
    }

    #[test]
    fn text_io_roundtrip(g in arbitrary_graph()) {
        prop_assert_eq!(from_text(&to_text(&g)).unwrap(), g);
    }

    #[test]
    fn bfs_tree_depths_are_shortest_distances(g in arbitrary_graph(), root_pick in 0usize..10) {
        let root = (root_pick % g.num_nodes()) as u32;
        let t = bfs_tree(&g, root, u32::MAX);
        // recompute distances by simple BFS
        let mut dist = vec![u32::MAX; g.num_nodes()];
        let mut queue = std::collections::VecDeque::new();
        dist[root as usize] = 0;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if dist[u as usize] == u32::MAX {
                    dist[u as usize] = dist[v as usize] + 1;
                    queue.push_back(u);
                }
            }
        }
        for (node, depth) in t.nodes.iter().zip(&t.depths) {
            prop_assert_eq!(dist[*node as usize], *depth);
        }
        // tree contains exactly the reachable nodes
        let reachable = dist.iter().filter(|&&d| d != u32::MAX).count();
        prop_assert_eq!(t.nodes.len(), reachable);
    }

    #[test]
    fn label_stats_frequencies_sum_to_node_count(g in arbitrary_graph()) {
        let s = LabelStats::new(&g);
        let total: u64 = (0..g.num_node_labels() as u32).map(|l| s.frequency(l)).sum();
        prop_assert_eq!(total, g.num_nodes() as u64);
        // selectivities in (0, 1]
        for l in 0..g.num_node_labels() as u32 {
            let sel = s.selectivity(l);
            prop_assert!((0.0..=1.0).contains(&sel));
        }
        prop_assert!(s.entropy() >= -1e-9);
        prop_assert!(s.entropy() <= (g.num_node_labels().max(1) as f64).ln() + 1e-9);
    }

    #[test]
    fn decomposition_node_sets_cover_bfs_balls(g in arbitrary_graph(), l in 1u32..4) {
        for s in decompose(&g, l) {
            // the substructure's nodes are within l hops of its root
            let t = bfs_tree(&g, s.original[0], l);
            let ball: std::collections::HashSet<_> = t.nodes.iter().collect();
            for orig in &s.original {
                prop_assert!(ball.contains(orig));
            }
        }
    }

    #[test]
    fn extraction_yields_connected_induced_subgraphs(
        g in arbitrary_graph(),
        size in 2usize..5,
        seed in 0u64..100,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let opts = ExtractOptions::default(); // induced
        if let Some(q) = extract_query(&g, size, &opts, &mut rng) {
            prop_assert_eq!(q.num_nodes(), size);
            prop_assert!(q.is_connected());
            // labels are a multiset-subset of the data graph's labels
            let mut data_labels: Vec<u32> = g.nodes().map(|v| g.label(v)).collect();
            for v in q.nodes() {
                let lab = q.label(v);
                let pos = data_labels.iter().position(|&d| d == lab);
                prop_assert!(pos.is_some(), "label {} not in data graph", lab);
                data_labels.swap_remove(pos.unwrap());
            }
        }
    }
}
