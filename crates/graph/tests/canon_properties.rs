//! Property tests for canonical query hashing: the hash must be invariant
//! under node permutations (isomorphic re-numberings), and structurally
//! distinct queries must essentially never share a key.

// Test code opts back out of the library panic/numeric policy: a panic IS
// the failure report here, and fixtures are tiny.
#![allow(
    clippy::unwrap_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use alss_graph::canon::{canonical_hash, canonical_key};
use alss_graph::{Graph, GraphBuilder, NodeId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Rebuild `g` with node `v` renamed to `perm[v]` (labels, extra labels,
/// and edge labels carried along) — an explicit isomorphism.
fn permuted(g: &Graph, perm: &[NodeId]) -> Graph {
    let mut b = GraphBuilder::new(g.num_nodes());
    for v in g.nodes() {
        b.set_label(perm[v as usize], g.label(v));
        for &extra in g.extra_labels(v) {
            b.add_extra_label(perm[v as usize], extra);
        }
    }
    for e in g.edges() {
        let (u, v) = (perm[e.u as usize], perm[e.v as usize]);
        if e.label == alss_graph::WILDCARD {
            b.add_edge(u, v);
        } else {
            b.add_labeled_edge(u, v, e.label);
        }
    }
    b.build()
}

fn random_permutation(n: usize, rng: &mut SmallRng) -> Vec<NodeId> {
    let mut perm: Vec<NodeId> = (0..n as u32).collect();
    // Fisher-Yates
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (1usize..=9).prop_flat_map(|n| {
        (
            proptest::collection::vec(0u32..4, n),
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32, 0u32..3), 0..=2 * n),
            proptest::collection::vec(0u32..3, n),
        )
            .prop_map(move |(labels, edges, extras)| {
                let mut b = GraphBuilder::new(n);
                b.set_labels(&labels);
                for (v, &x) in extras.iter().enumerate() {
                    // sparse extra labels: only on every third node
                    if v % 3 == 0 && x != labels[v] {
                        b.add_extra_label(v as u32, x);
                    }
                }
                for (u, v, l) in edges {
                    if u != v && !b.has_edge(u, v) {
                        b.add_labeled_edge(u, v, l);
                    }
                }
                b.build()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any node renumbering of a query hashes identically.
    #[test]
    fn node_permutations_hash_identically(g in arbitrary_graph(), seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..4 {
            let perm = random_permutation(g.num_nodes(), &mut rng);
            let h = permuted(&g, &perm);
            prop_assert_eq!(canonical_key(&g), canonical_key(&h));
        }
    }

    /// Graphs whose cheap structural invariants differ (label multiset,
    /// degree sequence, node/edge counts) must never share a hash: these
    /// pairs are guaranteed non-isomorphic, so a shared hash would be a
    /// genuine cache-poisoning collision.
    #[test]
    fn distinct_structures_do_not_collide(a in arbitrary_graph(), b in arbitrary_graph()) {
        let mut la: Vec<u32> = a.node_labels().to_vec();
        let mut lb: Vec<u32> = b.node_labels().to_vec();
        la.sort_unstable();
        lb.sort_unstable();
        let mut da: Vec<usize> = a.nodes().map(|v| a.degree(v)).collect();
        let mut db: Vec<usize> = b.nodes().map(|v| b.degree(v)).collect();
        da.sort_unstable();
        db.sort_unstable();
        let structurally_distinct = la != lb
            || da != db
            || a.num_nodes() != b.num_nodes()
            || a.num_edges() != b.num_edges();
        if structurally_distinct {
            prop_assert_ne!(canonical_hash(&a), canonical_hash(&b));
        }
    }
}

/// Deterministic sweep: every pair in a family of small structurally
/// distinct queries gets a distinct key (collision rate ~0 in practice).
#[test]
fn small_query_family_is_collision_free() {
    let mut family: Vec<Graph> = Vec::new();
    // paths, stars, cycles, triangles with varied label patterns
    for labels in [
        vec![0u32, 0, 0],
        vec![0, 0, 1],
        vec![0, 1, 0],
        vec![0, 1, 2],
        vec![1, 1, 1],
    ] {
        family.push(alss_graph::builder::graph_from_edges(
            &labels,
            &[(0, 1), (1, 2)],
        ));
        family.push(alss_graph::builder::graph_from_edges(
            &labels,
            &[(0, 1), (1, 2), (0, 2)],
        ));
    }
    for labels in [vec![0u32, 0, 0, 0], vec![0, 1, 0, 1], vec![0, 1, 2, 0]] {
        family.push(alss_graph::builder::graph_from_edges(
            &labels,
            &[(0, 1), (1, 2), (2, 3)],
        ));
        family.push(alss_graph::builder::graph_from_edges(
            &labels,
            &[(0, 1), (0, 2), (0, 3)],
        ));
        family.push(alss_graph::builder::graph_from_edges(
            &labels,
            &[(0, 1), (1, 2), (2, 3), (0, 3)],
        ));
    }
    // `graph_from_edges` numbering vs canonical form: dedupe true
    // isomorphic duplicates first (0,1,0 path == 0,1,0 reversed etc.)
    let mut keys: Vec<(usize, u64)> = Vec::new();
    for (i, g) in family.iter().enumerate() {
        keys.push((i, canonical_hash(g)));
    }
    for (i, (ia, ha)) in keys.iter().enumerate() {
        for (ib, hb) in keys.iter().skip(i + 1) {
            let (a, b) = (&family[*ia], &family[*ib]);
            let mut la: Vec<u32> = a.node_labels().to_vec();
            let mut lb: Vec<u32> = b.node_labels().to_vec();
            la.sort_unstable();
            lb.sort_unstable();
            let same_shape =
                a.num_nodes() == b.num_nodes() && a.num_edges() == b.num_edges() && la == lb;
            if !same_shape {
                assert_ne!(ha, hb, "graphs {ia} and {ib} collide");
            }
        }
    }
}
