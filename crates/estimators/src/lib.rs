//! # alss-estimators
//!
//! From-scratch Rust re-implementations of the seven cardinality-estimation
//! baselines the paper compares against through the G-CARE benchmark
//! (§6.1), plus the isomorphism-revised variants of WJ and IMPR (§6.2):
//!
//! | name | style | module |
//! |------|-------|--------|
//! | CSET | summary (characteristic sets, star decomposition) | [`cset`] |
//! | SumRDF | summary (label summary graph, expected matchings) | [`sumrdf`] |
//! | IMPR | sampling (random-walk visible subgraphs, ≤5-node queries) | [`impr`] |
//! | CS | sampling (correlated hash-based vertex sampling) | [`cs`] |
//! | WJ | sampling (wander join random walks, Horvitz–Thompson) | [`wj`] |
//! | JSUB | sampling (maximal acyclic subquery upper bound) | [`jsub`] |
//! | BS | bound sketch (label-aware AGM bound) | [`bound_sketch`] |
//!
//! All estimators implement [`CardinalityEstimator`]; sampling-based ones
//! report *sampling failure* — the central phenomenon of Figs. 4–5 — when
//! every drawn sample is invalid, in which case the estimate is 0.
//!
//! ```
//! use alss_estimators::{CardinalityEstimator, LabelIndex, WanderJoin};
//! use alss_graph::builder::graph_from_edges;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let data = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3), (0, 3)]);
//! let index = LabelIndex::new(&data);
//! let wj = WanderJoin::new(&index, 500);
//! let query = graph_from_edges(&[0, 0], &[(0, 1)]);
//! let mut rng = SmallRng::seed_from_u64(0);
//! let est = wj.estimate(&query, &mut rng);
//! assert!(!est.failed);
//! assert!((est.count - 8.0).abs() < 2.0); // 2|E| = 8 ordered edge matchings
//! ```

// Test modules opt back out of the library panic/numeric policy: a panic
// IS the failure report there, and fixtures are tiny.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub mod bound_sketch;
pub mod cs;
pub mod cset;
pub mod impr;
pub mod index;
pub mod jsub;
pub mod sumrdf;
pub mod wj;

pub use bound_sketch::BoundSketch;
pub use cs::CorrelatedSampling;
pub use cset::CharacteristicSets;
pub use impr::Impr;
pub use index::LabelIndex;
pub use jsub::JSub;
pub use sumrdf::SumRdf;
pub use wj::WanderJoin;

use alss_graph::Graph;
use rand::rngs::SmallRng;

/// An estimation result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Estimated number of matchings (≥ 0; may be fractional).
    pub count: f64,
    /// True iff the estimator suffered *sampling failure*: every sample was
    /// invalid so the returned count is 0 with no information. Summary- and
    /// bound-based estimators never fail.
    pub failed: bool,
}

impl Estimate {
    /// A successful estimate.
    pub fn ok(count: f64) -> Self {
        Estimate {
            count,
            failed: false,
        }
    }

    /// Sampling failure (count 0).
    pub fn failure() -> Self {
        Estimate {
            count: 0.0,
            failed: true,
        }
    }

    /// The estimate clamped to ≥ 1 for q-error computation (the paper
    /// assumes `ĉ(q) ≥ 1`).
    pub fn clamped(&self) -> f64 {
        self.count.max(1.0)
    }
}

/// Common interface over all baselines.
pub trait CardinalityEstimator {
    /// Short display name matching the paper's figures (e.g. `"WJ"`).
    fn name(&self) -> &'static str;

    /// Estimate the matching count of `query`.
    fn estimate(&self, query: &Graph, rng: &mut SmallRng) -> Estimate;
}
