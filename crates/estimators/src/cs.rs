//! Correlated Sampling (Vengerov et al., VLDB'15), adapted to self-joins
//! over the edge relation: every data node is included in the sample with
//! probability `p` by a *shared* hash (the correlation — all query-edge
//! "relations" sample the same vertices), the query is counted exactly on
//! the sampled subgraph, and the count is scaled by `p^{-|V_q|}`.

use crate::{CardinalityEstimator, Estimate};
use alss_graph::{Graph, GraphBuilder, NodeId, WILDCARD};
use alss_matching::{count_homomorphisms, Budget};
use rand::rngs::SmallRng;

/// The CS estimator.
pub struct CorrelatedSampling<'g> {
    sampled: Graph,
    p: f64,
    budget_per_query: u64,
    _marker: std::marker::PhantomData<&'g Graph>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl<'g> CorrelatedSampling<'g> {
    /// Sample with node-inclusion probability `p` using hash seed `seed`.
    /// The sampled subgraph is materialized once and reused for all queries.
    pub fn new(data: &'g Graph, p: f64, seed: u64, budget_per_query: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        // p ∈ [0, 1] is asserted above, so the product lies in [0, 2^64).
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let threshold = (p * u64::MAX as f64) as u64;
        let keep: Vec<bool> = data
            .nodes()
            .map(|v| splitmix64(v as u64 ^ seed) <= threshold)
            .collect();
        // remap kept nodes densely
        let mut remap = vec![u32::MAX; data.num_nodes()];
        let mut kept_nodes: Vec<NodeId> = Vec::new();
        for v in data.nodes() {
            if keep[v as usize] {
                remap[v as usize] = alss_graph::node_id(kept_nodes.len());
                kept_nodes.push(v);
            }
        }
        let mut b = GraphBuilder::new(kept_nodes.len());
        for (i, &v) in kept_nodes.iter().enumerate() {
            b.set_label(alss_graph::node_id(i), data.label(v));
            for l in data.extra_labels(v) {
                b.add_extra_label(alss_graph::node_id(i), *l);
            }
        }
        for e in data.edges() {
            if keep[e.u as usize] && keep[e.v as usize] {
                if e.label == WILDCARD {
                    b.add_edge(remap[e.u as usize], remap[e.v as usize]);
                } else {
                    b.add_labeled_edge(remap[e.u as usize], remap[e.v as usize], e.label);
                }
            }
        }
        CorrelatedSampling {
            sampled: b.build(),
            p,
            budget_per_query,
            _marker: std::marker::PhantomData,
        }
    }

    /// Size of the materialized sample (diagnostics).
    pub fn sample_size(&self) -> (usize, usize) {
        (self.sampled.num_nodes(), self.sampled.num_edges())
    }
}

impl CardinalityEstimator for CorrelatedSampling<'_> {
    fn name(&self) -> &'static str {
        "CS"
    }

    fn estimate(&self, query: &Graph, _rng: &mut SmallRng) -> Estimate {
        let _span = alss_telemetry::Span::enter("estimator.cs");
        let budget = Budget::new(self.budget_per_query);
        let c = match count_homomorphisms(&self.sampled, query, &budget) {
            Ok(c) => c,
            Err(_) => return Estimate::failure(), // ran out of budget
        };
        if c == 0 {
            return Estimate::failure();
        }
        let exp = i32::try_from(query.num_nodes()).unwrap_or(i32::MAX);
        let scale = self.p.powi(-exp);
        Estimate::ok(c as f64 * scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::builder::graph_from_edges;
    use rand::SeedableRng;

    fn big_random_graph(n: usize, m: usize, seed: u64) -> Graph {
        use rand::Rng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 0..n as u32 {
            b.set_label(v, rng.gen_range(0..3));
        }
        for _ in 0..m {
            b.add_edge(rng.gen_range(0..n as u32), rng.gen_range(0..n as u32));
        }
        b.build()
    }

    #[test]
    fn sample_shrinks_with_p() {
        let d = big_random_graph(2000, 6000, 0);
        let small = CorrelatedSampling::new(&d, 0.1, 7, 1_000_000);
        let large = CorrelatedSampling::new(&d, 0.5, 7, 1_000_000);
        assert!(small.sample_size().0 < large.sample_size().0);
        // expected fraction roughly p
        let f = small.sample_size().0 as f64 / 2000.0;
        assert!((0.05..0.2).contains(&f), "fraction {f}");
    }

    #[test]
    fn estimate_order_of_magnitude_on_edge_query() {
        let d = big_random_graph(2000, 6000, 1);
        let cs = CorrelatedSampling::new(&d, 0.5, 3, 100_000_000);
        let q = graph_from_edges(&[WILDCARD, WILDCARD], &[(0, 1)]);
        let truth = alss_matching::count_homomorphisms(&d, &q, &Budget::unlimited()).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let e = cs.estimate(&q, &mut rng);
        assert!(!e.failed);
        let ratio = e.count / truth as f64;
        assert!((0.5..2.0).contains(&ratio), "{} vs {truth}", e.count);
    }

    #[test]
    fn failure_when_pattern_misses_sample() {
        // tiny graph, tiny p: the one matching edge is likely dropped
        let d = graph_from_edges(&[0, 1], &[(0, 1)]);
        let cs = CorrelatedSampling::new(&d, 1e-9, 5, 1_000);
        let q = graph_from_edges(&[0, 1], &[(0, 1)]);
        let mut rng = SmallRng::seed_from_u64(3);
        let e = cs.estimate(&q, &mut rng);
        assert!(e.failed);
    }

    #[test]
    fn full_sample_is_exact() {
        let d = big_random_graph(100, 300, 4);
        let cs = CorrelatedSampling::new(&d, 1.0, 9, 100_000_000);
        let q = graph_from_edges(&[0, 1], &[(0, 1)]);
        let truth = alss_matching::count_homomorphisms(&d, &q, &Budget::unlimited()).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let e = cs.estimate(&q, &mut rng);
        if truth == 0 {
            assert!(e.failed);
        } else {
            assert!((e.count - truth as f64).abs() < 1e-6);
        }
    }
}
