//! Shared label index and lightweight walk-order computation used by the
//! sampling-based estimators.

use alss_graph::labels::LabelStats;
use alss_graph::{Graph, LabelId, NodeId, WILDCARD};
use rand::Rng;
use std::collections::HashMap;

/// Per-label node lists over a data graph, shared by WJ / JSUB / IMPR.
pub struct LabelIndex<'g> {
    data: &'g Graph,
    by_label: HashMap<LabelId, Vec<NodeId>>,
    stats: LabelStats,
}

impl<'g> LabelIndex<'g> {
    /// Build from a data graph (one linear scan).
    pub fn new(data: &'g Graph) -> Self {
        let mut by_label: HashMap<LabelId, Vec<NodeId>> = HashMap::new();
        for v in data.nodes() {
            by_label.entry(data.label(v)).or_default().push(v);
        }
        LabelIndex {
            data,
            by_label,
            stats: LabelStats::new(data),
        }
    }

    /// The underlying data graph.
    pub fn data(&self) -> &'g Graph {
        self.data
    }

    /// Label statistics of the data graph.
    pub fn stats(&self) -> &LabelStats {
        &self.stats
    }

    /// Number of data nodes matching a query label.
    pub fn candidate_count(&self, l: LabelId) -> usize {
        if l == WILDCARD {
            self.data.num_nodes()
        } else {
            self.by_label.get(&l).map_or(0, |v| v.len())
        }
    }

    /// Uniformly sample a data node matching a query label.
    pub fn sample_candidate<R: Rng>(&self, l: LabelId, rng: &mut R) -> Option<NodeId> {
        if l == WILDCARD {
            let n = self.data.num_nodes();
            (n > 0).then(|| alss_graph::node_id(rng.gen_range(0..n)))
        } else {
            let v = self.by_label.get(&l)?;
            (!v.is_empty()).then(|| v[rng.gen_range(0..v.len())])
        }
    }
}

/// A traversal order over a (connected) query graph for random-walk
/// sampling: nodes ordered so each non-first node has at least one earlier
/// neighbor; per position, the earlier neighbor positions.
#[derive(Clone, Debug)]
pub struct WalkOrder {
    /// Query node at each position.
    pub order: Vec<NodeId>,
    /// For each position, the positions `< i` adjacent in the query.
    pub backward: Vec<Vec<usize>>,
}

/// Compute a walk order starting at the node with the fewest candidate
/// nodes in the data (rarest label), extending by maximum connectivity —
/// the plan heuristic G-CARE's WJ uses. Unlike the exact engine's order
/// this needs no per-node data scans, only label statistics.
pub fn walk_order(q: &Graph, index: &LabelIndex<'_>) -> WalkOrder {
    let n = q.num_nodes();
    assert!(n > 0, "empty query");
    let mut placed = vec![false; n];
    // `n > 0` is asserted above; the fallback keeps the expression total.
    let start = q
        .nodes()
        .min_by_key(|&v| (index.candidate_count(q.label(v)), v))
        .unwrap_or(0);
    let mut order = vec![start];
    placed[start as usize] = true;
    while order.len() < n {
        let mut best: Option<(usize, usize, NodeId)> = None;
        for v in q.nodes() {
            if placed[v as usize] {
                continue;
            }
            let conn = q
                .neighbors(v)
                .iter()
                .filter(|&&u| placed[u as usize])
                .count();
            let key = (usize::MAX - conn, index.candidate_count(q.label(v)), v);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        let Some((_, _, v)) = best else {
            // Unreachable while `order.len() < n`: some node is unplaced.
            debug_assert!(false, "remaining node");
            break;
        };
        order.push(v);
        placed[v as usize] = true;
    }
    let mut pos = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = i;
    }
    let backward = order
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let mut b: Vec<usize> = q
                .neighbors(v)
                .iter()
                .map(|&u| pos[u as usize])
                .filter(|&j| j < i)
                .collect();
            b.sort_unstable();
            b
        })
        .collect();
    WalkOrder { order, backward }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::builder::graph_from_edges;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn data() -> Graph {
        graph_from_edges(&[0, 0, 0, 1, 2], &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn candidate_counts() {
        let d = data();
        let idx = LabelIndex::new(&d);
        assert_eq!(idx.candidate_count(0), 3);
        assert_eq!(idx.candidate_count(2), 1);
        assert_eq!(idx.candidate_count(7), 0);
        assert_eq!(idx.candidate_count(WILDCARD), 5);
    }

    #[test]
    fn sampling_respects_labels() {
        let d = data();
        let idx = LabelIndex::new(&d);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..20 {
            let v = idx.sample_candidate(0, &mut rng).unwrap();
            assert_eq!(d.label(v), 0);
        }
        assert!(idx.sample_candidate(9, &mut rng).is_none());
    }

    #[test]
    fn walk_order_is_connected_and_starts_rare() {
        let d = data();
        let idx = LabelIndex::new(&d);
        let q = graph_from_edges(&[0, 0, 2], &[(0, 1), (1, 2)]);
        let wo = walk_order(&q, &idx);
        assert_eq!(wo.order[0], 2, "rarest label (2) first");
        for i in 1..wo.order.len() {
            assert!(!wo.backward[i].is_empty());
        }
    }
}
