//! JSUB (Zhao et al., SIGMOD'18 "random sampling over joins revisited",
//! as packaged in G-CARE): extract a *maximal acyclic subquery* — a
//! spanning tree of the query graph — and estimate its count with a
//! wander-join sampler. Tree walks never close cycles, so JSUB fails less
//! often than WJ, but the tree count upper-bounds the cyclic query's count,
//! giving a (often large) overestimate on cyclic queries.

use crate::index::LabelIndex;
use crate::wj::WanderJoin;
use crate::{CardinalityEstimator, Estimate};
use alss_graph::{bfs_tree, Graph, GraphBuilder, WILDCARD};
use rand::rngs::SmallRng;

/// The JSUB estimator.
pub struct JSub<'g> {
    index: &'g LabelIndex<'g>,
    samples: usize,
}

impl<'g> JSub<'g> {
    /// JSUB with the given number of walks.
    pub fn new(index: &'g LabelIndex<'g>, samples: usize) -> Self {
        JSub { index, samples }
    }

    /// The maximal acyclic subquery: a BFS spanning tree of `q` (node set
    /// unchanged, tree edges only). Public for tests and the bench harness.
    pub fn acyclic_subquery(q: &Graph) -> Graph {
        let t = bfs_tree(q, 0, u32::MAX);
        let mut b = GraphBuilder::new(q.num_nodes());
        for v in q.nodes() {
            b.set_label(v, q.label(v));
        }
        for &(u, v) in &t.edges {
            match q.edge_label(u, v) {
                Some(l) if l != WILDCARD => {
                    b.add_labeled_edge(u, v, l);
                }
                _ => {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }
}

impl CardinalityEstimator for JSub<'_> {
    fn name(&self) -> &'static str {
        "JSUB"
    }

    fn estimate(&self, query: &Graph, rng: &mut SmallRng) -> Estimate {
        let _span = alss_telemetry::Span::enter("estimator.jsub");
        let tree = Self::acyclic_subquery(query);
        WanderJoin::new(self.index, self.samples).estimate(&tree, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::builder::graph_from_edges;
    use alss_matching::{count_homomorphisms, Budget};
    use rand::SeedableRng;

    #[test]
    fn acyclic_subquery_is_spanning_tree() {
        let q = graph_from_edges(&[0, 1, 2, 3], &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]);
        let t = JSub::acyclic_subquery(&q);
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.num_edges(), 3);
        assert!(t.is_connected());
        for v in t.nodes() {
            assert_eq!(t.label(v), q.label(v));
        }
    }

    #[test]
    fn jsub_overestimates_cyclic_queries() {
        // data with many paths but few triangles
        let d = graph_from_edges(
            &[0, 0, 0, 0, 0, 0],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 2)],
        );
        let idx = LabelIndex::new(&d);
        let jsub = JSub::new(&idx, 3000);
        let tri = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let truth = count_homomorphisms(&d, &tri, &Budget::unlimited()).unwrap() as f64;
        let mut rng = SmallRng::seed_from_u64(0);
        let est = jsub.estimate(&tri, &mut rng);
        assert!(!est.failed);
        // tree relaxation counts all 2-paths → strictly more than triangles
        assert!(
            est.count > truth,
            "JSUB {} should overestimate truth {truth}",
            est.count
        );
    }

    #[test]
    fn jsub_matches_wj_on_acyclic_queries() {
        let d = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]);
        let idx = LabelIndex::new(&d);
        let q = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let mut rng1 = SmallRng::seed_from_u64(1);
        let mut rng2 = SmallRng::seed_from_u64(1);
        let e_jsub = JSub::new(&idx, 500).estimate(&q, &mut rng1);
        let e_wj = WanderJoin::new(&idx, 500).estimate(&q, &mut rng2);
        assert!((e_jsub.count - e_wj.count).abs() < 1e-9);
    }
}
