//! Wander Join (Li et al., SIGMOD'16), adapted to subgraph matching as in
//! G-CARE: random walks over the data graph sample (partial) matchings in
//! the query's walk order; the Horvitz–Thompson estimator multiplies the
//! branching factors observed along the walk. A walk *fails* when the next
//! query node has no compatible extension (or a cycle-closing edge is
//! absent); the paper's central finding is that on complex data/label
//! distributions *all* walks fail for larger queries, collapsing the
//! estimate to 0 ("sampling failure").

use crate::index::{walk_order, LabelIndex, WalkOrder};
use crate::{CardinalityEstimator, Estimate};
use alss_graph::{label_matches, Graph, NodeId, WILDCARD};
use rand::rngs::SmallRng;
use rand::Rng;

/// The WJ estimator. `injective = true` gives the isomorphism-revised
/// variant of §6.2 (walks that revisit a data node are rejected).
pub struct WanderJoin<'g> {
    index: &'g LabelIndex<'g>,
    samples: usize,
    injective: bool,
}

impl<'g> WanderJoin<'g> {
    /// Homomorphism-counting WJ with the given number of random walks.
    pub fn new(index: &'g LabelIndex<'g>, samples: usize) -> Self {
        WanderJoin {
            index,
            samples,
            injective: false,
        }
    }

    /// Isomorphism-revised WJ (the paper's §6.2 modification).
    pub fn new_isomorphism(index: &'g LabelIndex<'g>, samples: usize) -> Self {
        WanderJoin {
            index,
            samples,
            injective: true,
        }
    }

    /// One random walk; returns its HT estimate (0 for an invalid walk).
    fn walk(&self, q: &Graph, wo: &WalkOrder, rng: &mut SmallRng) -> f64 {
        let data = self.index.data();
        let n = q.num_nodes();
        let mut map: Vec<NodeId> = Vec::with_capacity(n);
        let root_label = q.label(wo.order[0]);
        let c0 = self.index.candidate_count(root_label);
        if c0 == 0 {
            return 0.0;
        }
        let Some(root) = self.index.sample_candidate(root_label, rng) else {
            return 0.0;
        };
        map.push(root);
        let mut weight = c0 as f64;

        for pos in 1..n {
            let qv = wo.order[pos];
            let bw = &wo.backward[pos];
            debug_assert!(!bw.is_empty(), "walk order must be connected");
            let anchor = bw[0];
            let au = map[anchor];
            let Some(ql) = q.edge_label(wo.order[anchor], qv) else {
                // An anchor is by construction an already-walked neighbor;
                // a missing edge means a malformed order — score the walk 0.
                debug_assert!(false, "anchor implies edge");
                return 0.0;
            };
            // compatible neighbors of the anchor image
            let nbrs = data.neighbors(au);
            let elabels = data.neighbor_edge_labels(au);
            let mut matches: Vec<NodeId> = Vec::new();
            for (i, &dv) in nbrs.iter().enumerate() {
                if !data.node_matches(dv, q.label(qv)) {
                    continue;
                }
                let dl = elabels.map(|l| l[i]).unwrap_or(WILDCARD);
                if !label_matches(ql, dl) {
                    continue;
                }
                if self.injective && map.contains(&dv) {
                    continue;
                }
                matches.push(dv);
            }
            if matches.is_empty() {
                return 0.0;
            }
            let dv = matches[rng.gen_range(0..matches.len())];
            weight *= matches.len() as f64;
            // verify remaining backward (cycle-closing) edges
            for &j in &bw[1..] {
                let qu = wo.order[j];
                let du = map[j];
                match data.edge_label(du, dv) {
                    Some(dl) => {
                        let Some(ql2) = q.edge_label(qu, qv) else {
                            debug_assert!(false, "backward position implies query edge");
                            return 0.0;
                        };
                        if !label_matches(ql2, dl) {
                            return 0.0;
                        }
                    }
                    None => return 0.0,
                }
            }
            map.push(dv);
        }
        weight
    }
}

impl CardinalityEstimator for WanderJoin<'_> {
    fn name(&self) -> &'static str {
        if self.injective {
            "WJ-iso"
        } else {
            "WJ"
        }
    }

    fn estimate(&self, query: &Graph, rng: &mut SmallRng) -> Estimate {
        let _span = alss_telemetry::Span::enter("estimator.wj");
        let wo = walk_order(query, self.index);
        let mut total = 0.0f64;
        let mut valid = 0usize;
        for _ in 0..self.samples {
            let w = self.walk(query, &wo, rng);
            if w > 0.0 {
                valid += 1;
            }
            total += w;
        }
        if valid == 0 {
            Estimate::failure()
        } else {
            Estimate::ok(total / self.samples as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::builder::graph_from_edges;
    use alss_graph::GraphBuilder;
    use alss_matching::{count_homomorphisms, count_isomorphisms, Budget};
    use rand::SeedableRng;

    /// A graph where WJ estimates should converge near the truth.
    fn clique_data() -> Graph {
        // K6 all label 0
        let mut b = GraphBuilder::new(6);
        for v in 0..6 {
            b.set_label(v, 0);
        }
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                b.add_edge(i, j);
            }
        }
        b.build()
    }

    #[test]
    fn wj_is_approximately_unbiased_on_path_query() {
        let d = clique_data();
        let idx = LabelIndex::new(&d);
        let wj = WanderJoin::new(&idx, 4000);
        let q = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let truth = count_homomorphisms(&d, &q, &Budget::unlimited()).unwrap() as f64;
        let mut rng = SmallRng::seed_from_u64(0);
        let est = wj.estimate(&q, &mut rng);
        assert!(!est.failed);
        let ratio = est.count / truth;
        assert!(
            (0.8..1.25).contains(&ratio),
            "estimate {} vs truth {truth}",
            est.count
        );
    }

    #[test]
    fn wj_triangle_estimate_close() {
        let d = clique_data();
        let idx = LabelIndex::new(&d);
        let wj = WanderJoin::new(&idx, 8000);
        let q = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let truth = count_homomorphisms(&d, &q, &Budget::unlimited()).unwrap() as f64;
        let mut rng = SmallRng::seed_from_u64(1);
        let est = wj.estimate(&q, &mut rng);
        let ratio = est.count / truth;
        assert!((0.7..1.4).contains(&ratio), "{} vs {truth}", est.count);
    }

    #[test]
    fn wj_detects_sampling_failure() {
        // data: two labels never adjacent
        let d = graph_from_edges(&[0, 0, 1, 1], &[(0, 1), (2, 3)]);
        let idx = LabelIndex::new(&d);
        let wj = WanderJoin::new(&idx, 100);
        let q = graph_from_edges(&[0, 1], &[(0, 1)]);
        let mut rng = SmallRng::seed_from_u64(2);
        let est = wj.estimate(&q, &mut rng);
        assert!(est.failed);
        assert_eq!(est.count, 0.0);
    }

    #[test]
    fn iso_variant_rejects_revisits() {
        // path query on a single edge: homomorphism can fold (a-b-a),
        // isomorphism cannot.
        let d = graph_from_edges(&[0, 0], &[(0, 1)]);
        let idx = LabelIndex::new(&d);
        let q = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let truth_iso = count_isomorphisms(&d, &q, &Budget::unlimited()).unwrap();
        assert_eq!(truth_iso, 0);
        let wj = WanderJoin::new_isomorphism(&idx, 200);
        let mut rng = SmallRng::seed_from_u64(3);
        let est = wj.estimate(&q, &mut rng);
        assert!(est.failed, "no injective matching exists: {est:?}");

        // homomorphism variant must see the folded matchings
        let wj_h = WanderJoin::new(&idx, 200);
        let est_h = wj_h.estimate(&q, &mut rng);
        assert!(!est_h.failed);
        assert!(est_h.count > 0.0);
    }
}
