//! IMPR (Chen & Lui, ICDM'16): random-walk graphlet estimation.
//!
//! IMPR samples "visible subgraphs" along random walks and returns a
//! weighted sum of per-sample matching counts. The original targets 3–5
//! node unlabeled graphlets; G-CARE revises it to sample on labeled
//! graphs. Our implementation follows that behavioral envelope:
//!
//! * a random walk of bounded length collects a *visible* node window;
//! * the query is counted exactly inside the induced window;
//! * counts are scaled by the node-coverage ratio `|V| / |V_window|`.
//!
//! Like the original (and as the paper's Figs. 4/7 report), this estimator
//! systematically **underestimates** clustered patterns — a walk window
//! sees only a local fragment of the matching mass — and it refuses query
//! graphs with more than 5 nodes.

use crate::{CardinalityEstimator, Estimate};
use alss_graph::{Graph, GraphBuilder, NodeId, WILDCARD};
use alss_matching::{count_homomorphisms, count_isomorphisms, Budget};
use rand::rngs::SmallRng;
use rand::Rng;

/// The IMPR estimator. Supports 3–5-node queries only.
pub struct Impr<'g> {
    data: &'g Graph,
    walks: usize,
    walk_length: usize,
    injective: bool,
}

impl<'g> Impr<'g> {
    /// Homomorphism-counting IMPR.
    pub fn new(data: &'g Graph, walks: usize, walk_length: usize) -> Self {
        Impr {
            data,
            walks,
            walk_length,
            injective: false,
        }
    }

    /// Isomorphism-revised IMPR (§6.2).
    pub fn new_isomorphism(data: &'g Graph, walks: usize, walk_length: usize) -> Self {
        Impr {
            data,
            walks,
            walk_length,
            injective: true,
        }
    }

    /// Induced subgraph visible along one random walk.
    fn sample_window(&self, rng: &mut SmallRng) -> Option<Graph> {
        let n = self.data.num_nodes();
        if n == 0 {
            return None;
        }
        let mut cur = alss_graph::node_id(rng.gen_range(0..n));
        let mut seen: Vec<NodeId> = vec![cur];
        for _ in 0..self.walk_length {
            let nbrs = self.data.neighbors(cur);
            if nbrs.is_empty() {
                break;
            }
            cur = nbrs[rng.gen_range(0..nbrs.len())];
            if !seen.contains(&cur) {
                seen.push(cur);
            }
        }
        if seen.len() < 2 {
            return None;
        }
        let mut remap = std::collections::HashMap::new();
        for (i, &v) in seen.iter().enumerate() {
            remap.insert(v, alss_graph::node_id(i));
        }
        let mut b = GraphBuilder::new(seen.len());
        for (i, &v) in seen.iter().enumerate() {
            b.set_label(alss_graph::node_id(i), self.data.label(v));
            for l in self.data.extra_labels(v) {
                b.add_extra_label(alss_graph::node_id(i), *l);
            }
        }
        for &v in &seen {
            let labels = self.data.neighbor_edge_labels(v);
            for (k, &u) in self.data.neighbors(v).iter().enumerate() {
                if let Some(&lu) = remap.get(&u) {
                    let lv = remap[&v];
                    if lv < lu {
                        match labels.map(|l| l[k]) {
                            Some(l) if l != WILDCARD => {
                                b.add_labeled_edge(lv, lu, l);
                            }
                            _ => {
                                b.add_edge(lv, lu);
                            }
                        }
                    }
                }
            }
        }
        Some(b.build())
    }
}

impl CardinalityEstimator for Impr<'_> {
    fn name(&self) -> &'static str {
        if self.injective {
            "IMPR-iso"
        } else {
            "IMPR"
        }
    }

    fn estimate(&self, query: &Graph, rng: &mut SmallRng) -> Estimate {
        let _span = alss_telemetry::Span::enter("estimator.impr");
        assert!(
            (3..=5).contains(&query.num_nodes()),
            "IMPR supports 3-5 node query graphs only (got {})",
            query.num_nodes()
        );
        let budget = Budget::new(10_000_000);
        let mut total = 0.0f64;
        let mut window_nodes = 0usize;
        let mut valid = 0usize;
        for _ in 0..self.walks {
            let Some(w) = self.sample_window(rng) else {
                continue;
            };
            window_nodes += w.num_nodes();
            let c = if self.injective {
                count_isomorphisms(&w, query, &budget)
            } else {
                count_homomorphisms(&w, query, &budget)
            }
            .unwrap_or(0);
            if c > 0 {
                valid += 1;
            }
            total += c as f64;
        }
        if valid == 0 {
            return Estimate::failure();
        }
        let avg_window = window_nodes as f64 / self.walks as f64;
        let scale = self.data.num_nodes() as f64 / avg_window.max(1.0);
        Estimate::ok(total / self.walks as f64 * scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::builder::graph_from_edges;
    use rand::SeedableRng;

    fn triangle_rich() -> Graph {
        // two triangles sharing a vertex + a tail
        graph_from_edges(
            &[0, 0, 0, 0, 0, 0],
            &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5)],
        )
    }

    #[test]
    fn impr_finds_triangles() {
        let d = triangle_rich();
        let impr = Impr::new(&d, 300, 12);
        let q = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let mut rng = SmallRng::seed_from_u64(0);
        let e = impr.estimate(&q, &mut rng);
        assert!(!e.failed);
        assert!(e.count > 0.0);
    }

    #[test]
    #[should_panic(expected = "3-5 node")]
    fn impr_rejects_large_queries() {
        let d = triangle_rich();
        let impr = Impr::new(&d, 10, 5);
        let q = graph_from_edges(
            &[0, 0, 0, 0, 0, 0],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
        );
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = impr.estimate(&q, &mut rng);
    }

    #[test]
    fn impr_fails_on_absent_pattern() {
        // triangle-free data
        let d = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]);
        let impr = Impr::new(&d, 100, 8);
        let q = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let mut rng = SmallRng::seed_from_u64(2);
        let e = impr.estimate(&q, &mut rng);
        assert!(e.failed);
    }

    #[test]
    fn iso_variant_counts_fewer() {
        let d = triangle_rich();
        let q = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let mut r1 = SmallRng::seed_from_u64(3);
        let mut r2 = SmallRng::seed_from_u64(3);
        let hom = Impr::new(&d, 300, 12).estimate(&q, &mut r1);
        let iso = Impr::new_isomorphism(&d, 300, 12).estimate(&q, &mut r2);
        assert!(iso.count <= hom.count);
    }
}
