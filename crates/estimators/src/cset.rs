//! Characteristic Sets (Neumann & Moerkotte, ICDE'11), adapted from RDF
//! star queries to labeled graphs as in G-CARE.
//!
//! Index: for every data node, its *characteristic set* — the set of
//! distinct labels among its neighbors — keyed together with the node's own
//! label. Per characteristic set we store the node count and, for each
//! member label, the total number of neighbors carrying it.
//!
//! Estimation: the query is greedily decomposed into stars covering all
//! edges; each star is estimated from the index
//! (`Σ_{S ⊇ star} count(S) · Π_leaf occ(S, l)/count(S)`), and star
//! estimates are combined under the independence assumption, dividing by
//! the candidate count of every node shared between stars. The
//! independence assumption is exactly what the paper blames for CSET's
//! systematic underestimation (§6.2).

use crate::{CardinalityEstimator, Estimate};
use alss_graph::labels::LabelStats;
use alss_graph::{Graph, LabelId, NodeId, WILDCARD};
use rand::rngs::SmallRng;
use std::collections::{BTreeSet, HashMap};

#[derive(Default, Clone, Debug)]
struct CsetEntry {
    node_count: u64,
    /// total neighbor occurrences per label over nodes with this cset
    occurrences: HashMap<LabelId, u64>,
    /// total degree over nodes with this cset (for wildcard leaves)
    total_degree: u64,
}

/// The CSET estimator (summary-based; never reports sampling failure).
pub struct CharacteristicSets {
    /// (node label, characteristic set) → aggregated statistics
    index: HashMap<(LabelId, Vec<LabelId>), CsetEntry>,
    stats: LabelStats,
    num_nodes: u64,
}

impl CharacteristicSets {
    /// Build the characteristic-set index in one pass over the data.
    pub fn new(data: &Graph) -> Self {
        let mut index: HashMap<(LabelId, Vec<LabelId>), CsetEntry> = HashMap::new();
        for v in data.nodes() {
            let mut cset: BTreeSet<LabelId> = BTreeSet::new();
            for &u in data.neighbors(v) {
                cset.insert(data.label(u));
            }
            let key = (data.label(v), cset.into_iter().collect::<Vec<_>>());
            let e = index.entry(key).or_default();
            e.node_count += 1;
            e.total_degree += data.degree(v) as u64;
            for &u in data.neighbors(v) {
                *e.occurrences.entry(data.label(u)).or_default() += 1;
            }
        }
        CharacteristicSets {
            index,
            stats: LabelStats::new(data),
            num_nodes: data.num_nodes() as u64,
        }
    }

    /// Estimate the matchings of a star: center label `lc`, leaf labels
    /// `leaves` (with multiplicity, wildcards allowed).
    fn estimate_star(&self, lc: LabelId, leaves: &[LabelId]) -> f64 {
        let mut total = 0.0f64;
        for ((center, cset), entry) in &self.index {
            if !alss_graph::label_matches(lc, *center) {
                continue;
            }
            // every labeled leaf needs its label in the characteristic set
            if !leaves
                .iter()
                .all(|&l| l == WILDCARD || cset.binary_search(&l).is_ok())
            {
                continue;
            }
            let cnt = entry.node_count as f64;
            let mut est = cnt;
            for &l in leaves {
                let occ = if l == WILDCARD {
                    entry.total_degree as f64
                } else {
                    *entry.occurrences.get(&l).unwrap_or(&0) as f64
                };
                est *= occ / cnt;
            }
            total += est;
        }
        total
    }

    /// Number of candidate data nodes for a query node label (used in the
    /// independence combination for shared nodes).
    fn candidates(&self, l: LabelId) -> f64 {
        if l == WILDCARD {
            self.num_nodes as f64
        } else {
            self.stats.frequency(l) as f64
        }
    }

    /// Greedy star decomposition of a query: repeatedly take the node with
    /// the most uncovered incident edges as a star center. Returns
    /// `(center, leaf labels)` stars and the per-node star-membership count.
    fn star_decomposition(q: &Graph) -> (Vec<(NodeId, Vec<LabelId>)>, Vec<u32>) {
        let m = q.num_edges();
        let mut covered = vec![false; m];
        let edges: Vec<_> = q.edges().collect();
        let mut stars = Vec::new();
        let mut membership = vec![0u32; q.num_nodes()];
        let mut covered_cnt = 0;
        while covered_cnt < m {
            // node with max uncovered incident edges
            let mut best: Option<(usize, NodeId)> = None;
            for v in q.nodes() {
                let cnt = edges
                    .iter()
                    .enumerate()
                    .filter(|(i, e)| !covered[*i] && (e.u == v || e.v == v))
                    .count();
                if cnt > 0 && best.is_none_or(|(bc, _)| cnt > bc) {
                    best = Some((cnt, v));
                }
            }
            let Some((_, center)) = best else {
                // Unreachable while `covered_cnt < m`: every uncovered edge
                // has two endpoints, so some node has positive count.
                debug_assert!(false, "uncovered edge must touch a node");
                break;
            };
            let mut leaves = Vec::new();
            let mut touched: BTreeSet<NodeId> = BTreeSet::new();
            touched.insert(center);
            for (i, e) in edges.iter().enumerate() {
                if covered[i] {
                    continue;
                }
                let other = if e.u == center {
                    e.v
                } else if e.v == center {
                    e.u
                } else {
                    continue;
                };
                covered[i] = true;
                covered_cnt += 1;
                leaves.push(q.label(other));
                touched.insert(other);
            }
            for t in touched {
                membership[t as usize] += 1;
            }
            stars.push((center, leaves));
        }
        (stars, membership)
    }
}

impl CardinalityEstimator for CharacteristicSets {
    fn name(&self) -> &'static str {
        "CSET"
    }

    fn estimate(&self, query: &Graph, _rng: &mut SmallRng) -> Estimate {
        let _span = alss_telemetry::Span::enter("estimator.cset");
        let (stars, membership) = Self::star_decomposition(query);
        let mut est = 1.0f64;
        for (center, leaves) in &stars {
            est *= self.estimate_star(query.label(*center), leaves);
        }
        // independence combination: a node in k > 1 stars was over-counted
        // as a free choice k times; divide by its candidate count k−1 times.
        for v in query.nodes() {
            let k = membership[v as usize];
            if k > 1 {
                let c = self.candidates(query.label(v)).max(1.0);
                est /= c.powi(k as i32 - 1);
            }
        }
        Estimate::ok(est)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::builder::graph_from_edges;
    use alss_matching::{count_homomorphisms, Budget};
    use rand::SeedableRng;

    #[test]
    fn exact_on_pure_star_queries() {
        // data star: center label 9, leaves 1,1,2
        let d = graph_from_edges(&[9, 1, 1, 2], &[(0, 1), (0, 2), (0, 3)]);
        let cset = CharacteristicSets::new(&d);
        // query: center 9 with leaves [1], [1,2], [1,1]
        let mut rng = SmallRng::seed_from_u64(0);
        let q1 = graph_from_edges(&[9, 1], &[(0, 1)]);
        let truth1 = count_homomorphisms(&d, &q1, &Budget::unlimited()).unwrap() as f64;
        assert!((cset.estimate(&q1, &mut rng).count - truth1).abs() < 1e-9);

        let q2 = graph_from_edges(&[9, 1, 2], &[(0, 1), (0, 2)]);
        let truth2 = count_homomorphisms(&d, &q2, &Budget::unlimited()).unwrap() as f64;
        assert!((cset.estimate(&q2, &mut rng).count - truth2).abs() < 1e-9);
    }

    #[test]
    fn star_decomposition_covers_all_edges() {
        let q = graph_from_edges(&[0, 1, 2, 3], &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]);
        let (stars, _) = CharacteristicSets::star_decomposition(&q);
        let covered: usize = stars.iter().map(|(_, l)| l.len()).sum();
        assert_eq!(covered, q.num_edges());
    }

    #[test]
    fn never_reports_failure() {
        let d = graph_from_edges(&[0, 1], &[(0, 1)]);
        let cset = CharacteristicSets::new(&d);
        let q = graph_from_edges(&[5, 5], &[(0, 1)]); // label absent
        let mut rng = SmallRng::seed_from_u64(1);
        let e = cset.estimate(&q, &mut rng);
        assert!(!e.failed);
        assert_eq!(e.count, 0.0);
    }

    #[test]
    fn path_estimate_in_right_ballpark_under_independence() {
        // data: path 0-1-2-3 labels all 0 — independence ≈ exact here
        let d = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]);
        let cset = CharacteristicSets::new(&d);
        let q = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let truth = count_homomorphisms(&d, &q, &Budget::unlimited()).unwrap() as f64;
        let mut rng = SmallRng::seed_from_u64(2);
        let est = cset.estimate(&q, &mut rng).count;
        assert!(est > 0.0);
        let ratio = est / truth;
        assert!((0.2..5.0).contains(&ratio), "est {est} vs truth {truth}");
    }
}
