//! Bound Sketch (Cai, Balazinska & Suciu, SIGMOD'19): pessimistic
//! cardinality estimation via bounding formulas. We implement the
//! label-aware AGM instantiation: `min_x Π_e |R_e|^{x_e}` over fractional
//! edge covers, where `|R_e|` is the number of directed data edges
//! compatible with query edge `e`'s label constraints. Always an upper
//! bound — the systematic overestimation the paper reports for BS (§6.2).

use crate::{CardinalityEstimator, Estimate};
use alss_ghd::cover::agm_bound;
use alss_ghd::plan::RelationIndex;
use alss_graph::Graph;
use rand::rngs::SmallRng;

/// The BS estimator.
pub struct BoundSketch {
    index: RelationIndex,
}

impl BoundSketch {
    /// Build the per-label-pair relation-size index.
    pub fn new(data: &Graph) -> Self {
        BoundSketch {
            index: RelationIndex::new(data),
        }
    }
}

impl CardinalityEstimator for BoundSketch {
    fn name(&self) -> &'static str {
        "BS"
    }

    fn estimate(&self, query: &Graph, _rng: &mut SmallRng) -> Estimate {
        let _span = alss_telemetry::Span::enter("estimator.bound_sketch");
        let sizes = self.index.relation_sizes(query);
        match agm_bound(query, &sizes) {
            Some(b) if b.is_finite() => Estimate::ok(b),
            _ => Estimate::ok(f64::INFINITY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::builder::graph_from_edges;
    use alss_graph::GraphBuilder;
    use alss_matching::{count_homomorphisms, Budget};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(n: usize, m: usize, labels: u32, seed: u64) -> Graph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 0..n as u32 {
            b.set_label(v, rng.gen_range(0..labels));
        }
        for _ in 0..m {
            b.add_edge(rng.gen_range(0..n as u32), rng.gen_range(0..n as u32));
        }
        b.build()
    }

    #[test]
    fn bs_always_upper_bounds_truth() {
        let d = random_graph(40, 120, 3, 0);
        let bs = BoundSketch::new(&d);
        let mut rng = SmallRng::seed_from_u64(1);
        for (labels, edges) in [
            (vec![0u32, 1], vec![(0u32, 1u32)]),
            (vec![0, 0, 1], vec![(0, 1), (1, 2)]),
            (vec![0, 1, 2], vec![(0, 1), (1, 2), (0, 2)]),
            (vec![0, 1, 0, 1], vec![(0, 1), (1, 2), (2, 3), (0, 3)]),
        ] {
            let q = graph_from_edges(&labels, &edges);
            let truth = count_homomorphisms(&d, &q, &Budget::unlimited()).unwrap() as f64;
            let est = bs.estimate(&q, &mut rng);
            assert!(!est.failed);
            assert!(
                est.count + 1e-6 >= truth,
                "BS {} < truth {truth} for {labels:?}",
                est.count
            );
        }
    }

    #[test]
    fn label_filters_tighten_the_bound() {
        let d = random_graph(60, 200, 4, 2);
        let bs = BoundSketch::new(&d);
        let mut rng = SmallRng::seed_from_u64(3);
        let labeled = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
        let unlabeled = graph_from_edges(&[alss_graph::WILDCARD; 3], &[(0, 1), (1, 2), (0, 2)]);
        let bl = bs.estimate(&labeled, &mut rng).count;
        let bu = bs.estimate(&unlabeled, &mut rng).count;
        assert!(bl <= bu, "labeled bound {bl} should be ≤ unlabeled {bu}");
    }
}
