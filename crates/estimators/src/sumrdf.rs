//! SumRDF (Stefanoni, Motik & Kostylev, WWW'18): a summary-graph
//! estimator. Data nodes are grouped into supernodes by label; superedges
//! carry the number of data edges between the groups. The estimate is the
//! *expected* number of matchings over the random graphs consistent with
//! the summary — the uniform-distribution assumption the paper identifies
//! as SumRDF's source of underestimation (§6.2).

use crate::{CardinalityEstimator, Estimate};
use alss_graph::labels::LabelStats;
use alss_graph::{Graph, LabelId, WILDCARD};
use rand::rngs::SmallRng;
use std::collections::HashMap;

/// The SumRDF estimator.
pub struct SumRdf {
    /// (min label, max label, edge label) → undirected edge count
    weights: HashMap<(LabelId, LabelId, LabelId), u64>,
    /// per-label incident edge totals (for wildcard endpoints)
    incident: HashMap<LabelId, u64>,
    stats: LabelStats,
    num_nodes: u64,
    num_edges: u64,
}

impl SumRdf {
    /// Build the label summary in one pass.
    pub fn new(data: &Graph) -> Self {
        let mut weights: HashMap<(LabelId, LabelId, LabelId), u64> = HashMap::new();
        let mut incident: HashMap<LabelId, u64> = HashMap::new();
        for e in data.edges() {
            let (a, b) = {
                let (lu, lv) = (data.label(e.u), data.label(e.v));
                if lu <= lv {
                    (lu, lv)
                } else {
                    (lv, lu)
                }
            };
            *weights.entry((a, b, e.label)).or_default() += 1;
            *incident.entry(a).or_default() += 1;
            if a != b {
                *incident.entry(b).or_default() += 1;
            }
        }
        SumRdf {
            weights,
            incident,
            stats: LabelStats::new(data),
            num_nodes: data.num_nodes() as u64,
            num_edges: data.num_edges() as u64,
        }
    }

    fn group_size(&self, l: LabelId) -> f64 {
        if l == WILDCARD {
            self.num_nodes as f64
        } else {
            self.stats.frequency(l) as f64
        }
    }

    /// Number of data edges compatible with endpoint labels `(l1, l2)` and
    /// edge label `le` (wildcards aggregate).
    fn edge_weight(&self, l1: LabelId, l2: LabelId, le: LabelId) -> f64 {
        let match_e = |k: LabelId| le == WILDCARD || k == le;
        match (l1 == WILDCARD, l2 == WILDCARD) {
            (true, true) => {
                if le == WILDCARD {
                    self.num_edges as f64
                } else {
                    self.weights
                        .iter()
                        .filter(|((_, _, k), _)| *k == le)
                        .map(|(_, &w)| w as f64)
                        .sum()
                }
            }
            (false, true) | (true, false) => {
                let l = if l1 == WILDCARD { l2 } else { l1 };
                if le == WILDCARD {
                    *self.incident.get(&l).unwrap_or(&0) as f64
                } else {
                    self.weights
                        .iter()
                        .filter(|((a, b, k), _)| (*a == l || *b == l) && match_e(*k))
                        .map(|(_, &w)| w as f64)
                        .sum()
                }
            }
            (false, false) => {
                let (a, b) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
                if le == WILDCARD {
                    self.weights
                        .iter()
                        .filter(|((x, y, _), _)| *x == a && *y == b)
                        .map(|(_, &w)| w as f64)
                        .sum()
                } else {
                    *self.weights.get(&(a, b, le)).unwrap_or(&0) as f64
                }
            }
        }
    }
}

impl CardinalityEstimator for SumRdf {
    fn name(&self) -> &'static str {
        "SumRDF"
    }

    /// Expected matchings: `Π_v s(σ(v)) · Π_{(u,v)∈E_q} p(u,v)` where
    /// `p(u,v)` is the probability a random ordered pair from the two
    /// groups is adjacent — `2w/(s_u·s_v)` (each undirected edge yields two
    /// ordered pairs; for distinct groups the labels already disambiguate
    /// direction so `w/(s_u·s_v)` per orientation and homomorphisms count
    /// orientations via node choices).
    fn estimate(&self, query: &Graph, _rng: &mut SmallRng) -> Estimate {
        let _span = alss_telemetry::Span::enter("estimator.sumrdf");
        let mut est = 1.0f64;
        for v in query.nodes() {
            est *= self.group_size(query.label(v));
        }
        for e in query.edges() {
            let (lu, lv) = (query.label(e.u), query.label(e.v));
            let su = self.group_size(lu).max(1.0);
            let sv = self.group_size(lv).max(1.0);
            let w = self.edge_weight(lu, lv, e.label);
            // ordered-pair adjacency probability under uniformity
            let p = if lu == lv {
                (2.0 * w) / (su * sv)
            } else {
                w / (su * sv)
            };
            est *= p.min(1.0);
        }
        Estimate::ok(est)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::builder::graph_from_edges;
    use alss_matching::{count_homomorphisms, Budget};
    use rand::SeedableRng;

    #[test]
    fn exact_on_single_edge_distinct_labels() {
        let d = graph_from_edges(&[0, 1, 0, 1], &[(0, 1), (2, 3), (0, 3)]);
        let s = SumRdf::new(&d);
        let q = graph_from_edges(&[0, 1], &[(0, 1)]);
        let truth = count_homomorphisms(&d, &q, &Budget::unlimited()).unwrap() as f64;
        let mut rng = SmallRng::seed_from_u64(0);
        let est = s.estimate(&q, &mut rng).count;
        assert!((est - truth).abs() < 1e-9, "est {est} truth {truth}");
    }

    #[test]
    fn exact_on_single_edge_same_label() {
        let d = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let s = SumRdf::new(&d);
        let q = graph_from_edges(&[0, 0], &[(0, 1)]);
        // homomorphisms of one edge = 2|E| = 4
        let mut rng = SmallRng::seed_from_u64(1);
        let est = s.estimate(&q, &mut rng).count;
        assert!((est - 4.0).abs() < 1e-9, "est {est}");
    }

    #[test]
    fn underestimates_clustered_triangles() {
        // data: a triangle plus isolated-ish nodes of the same label —
        // uniformity spreads the edge mass and misses the clustering
        let d = graph_from_edges(&[0, 0, 0, 0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let s = SumRdf::new(&d);
        let q = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let truth = count_homomorphisms(&d, &q, &Budget::unlimited()).unwrap() as f64;
        let mut rng = SmallRng::seed_from_u64(2);
        let est = s.estimate(&q, &mut rng).count;
        assert!(est < truth, "SumRDF {est} should underestimate {truth}");
        assert!(est > 0.0);
    }

    #[test]
    fn zero_when_labels_never_touch() {
        let d = graph_from_edges(&[0, 0, 1, 1], &[(0, 1), (2, 3)]);
        let s = SumRdf::new(&d);
        let q = graph_from_edges(&[0, 1], &[(0, 1)]);
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(s.estimate(&q, &mut rng).count, 0.0);
    }
}
