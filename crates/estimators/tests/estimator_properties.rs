//! Property tests over the baseline estimators: summary-based estimators
//! are exact on the structures they model, samplers are unbiased where
//! analysis says so, and all estimators degrade gracefully.

// Test code opts back out of the library panic/numeric policy: a panic IS
// the failure report here, and fixtures are tiny.
#![allow(
    clippy::unwrap_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use alss_estimators::{
    BoundSketch, CardinalityEstimator, CharacteristicSets, CorrelatedSampling, JSub, LabelIndex,
    SumRdf, WanderJoin,
};
use alss_graph::{Graph, GraphBuilder};
use alss_matching::{count_homomorphisms, Budget};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn labeled_graph() -> impl Strategy<Value = Graph> {
    (4usize..=12).prop_flat_map(|n| {
        (
            proptest::collection::vec(0u32..3, n),
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32), n..=3 * n),
        )
            .prop_map(move |(labels, edges)| {
                let mut b = GraphBuilder::new(n);
                b.set_labels(&labels);
                for (u, v) in edges {
                    if u != v {
                        b.add_edge(u, v);
                    }
                }
                b.build()
            })
    })
}

fn path_query(labels: &[u32]) -> Graph {
    let edges: Vec<(u32, u32)> = (1..labels.len() as u32).map(|i| (i - 1, i)).collect();
    let mut b = GraphBuilder::new(labels.len());
    b.set_labels(labels);
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sumrdf_exact_on_single_edge_queries(d in labeled_graph(), l1 in 0u32..3, l2 in 0u32..3) {
        let s = SumRdf::new(&d);
        let q = path_query(&[l1, l2]);
        let truth = count_homomorphisms(&d, &q, &Budget::unlimited()).unwrap() as f64;
        let mut rng = SmallRng::seed_from_u64(0);
        let est = s.estimate(&q, &mut rng).count;
        // single-edge estimates are exact by construction of the summary
        prop_assert!((est - truth).abs() < 1e-6 * truth.max(1.0) + 1e-6,
            "SumRDF {} vs truth {}", est, truth);
    }

    #[test]
    fn cset_exact_on_single_edge_queries(d in labeled_graph(), l1 in 0u32..3, l2 in 0u32..3) {
        let cs = CharacteristicSets::new(&d);
        let q = path_query(&[l1, l2]);
        let truth = count_homomorphisms(&d, &q, &Budget::unlimited()).unwrap() as f64;
        let mut rng = SmallRng::seed_from_u64(0);
        let est = cs.estimate(&q, &mut rng).count;
        prop_assert!((est - truth).abs() < 1e-6 * truth.max(1.0) + 1e-6,
            "CSET {} vs truth {}", est, truth);
    }

    #[test]
    fn bound_sketch_upper_bounds(d in labeled_graph(), l1 in 0u32..3, l2 in 0u32..3, l3 in 0u32..3) {
        let bs = BoundSketch::new(&d);
        let mut rng = SmallRng::seed_from_u64(1);
        for q in [path_query(&[l1, l2]), path_query(&[l1, l2, l3])] {
            let truth = count_homomorphisms(&d, &q, &Budget::unlimited()).unwrap() as f64;
            let e = bs.estimate(&q, &mut rng);
            prop_assert!(e.count + 1e-6 >= truth, "BS {} < {}", e.count, truth);
        }
    }

    #[test]
    fn wj_zero_iff_failed(d in labeled_graph(), l1 in 0u32..3, l2 in 0u32..3) {
        let idx = LabelIndex::new(&d);
        let wj = WanderJoin::new(&idx, 400);
        let mut rng = SmallRng::seed_from_u64(2);
        let e = wj.estimate(&path_query(&[l1, l2]), &mut rng);
        prop_assert_eq!(e.failed, e.count == 0.0);
    }

    #[test]
    fn cs_full_probability_is_exact(d in labeled_graph(), l1 in 0u32..3, l2 in 0u32..3) {
        let cs = CorrelatedSampling::new(&d, 1.0, 3, 1_000_000_000);
        let q = path_query(&[l1, l2]);
        let truth = count_homomorphisms(&d, &q, &Budget::unlimited()).unwrap() as f64;
        let mut rng = SmallRng::seed_from_u64(3);
        let e = cs.estimate(&q, &mut rng);
        if truth == 0.0 {
            prop_assert!(e.failed);
        } else {
            prop_assert!((e.count - truth).abs() < 1e-6);
        }
    }

    #[test]
    fn jsub_tree_extraction_preserves_nodes_and_labels(d in labeled_graph()) {
        // any connected query: the acyclic subquery keeps all nodes/labels
        let q = path_query(&[0, 1, 2]);
        let t = JSub::acyclic_subquery(&q);
        prop_assert_eq!(t.num_nodes(), q.num_nodes());
        for v in q.nodes() {
            prop_assert_eq!(t.label(v), q.label(v));
        }
        let _ = d;
    }
}

/// WJ is (approximately) unbiased: averaging many independent estimates
/// approaches the true count on an abundant query.
#[test]
fn wj_mean_of_estimates_approaches_truth() {
    let mut b = GraphBuilder::new(12);
    for v in 0..12 {
        b.set_label(v, v % 2);
    }
    for u in 0..12u32 {
        for v in (u + 1)..12 {
            if (u + v) % 3 != 0 {
                b.add_edge(u, v);
            }
        }
    }
    let d = b.build();
    let idx = LabelIndex::new(&d);
    let q = path_query(&[0, 1, 0]);
    let truth = count_homomorphisms(&d, &q, &Budget::unlimited()).unwrap() as f64;
    assert!(truth > 0.0);
    let wj = WanderJoin::new(&idx, 2000);
    let mut total = 0.0;
    let runs = 20;
    for seed in 0..runs {
        let mut rng = SmallRng::seed_from_u64(seed);
        total += wj.estimate(&q, &mut rng).count;
    }
    let mean = total / runs as f64;
    let rel = (mean - truth).abs() / truth;
    assert!(rel < 0.1, "WJ mean {mean} vs truth {truth} (rel {rel})");
}
