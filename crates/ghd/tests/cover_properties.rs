//! Property tests for the LP machinery: the fractional edge cover against
//! a brute-force integral cover, and AGM-bound invariants.

// Test code opts back out of the library panic/numeric policy: a panic IS
// the failure report here, and fixtures are tiny.
#![allow(
    clippy::unwrap_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use alss_ghd::cover::{agm_bound, fractional_edge_cover};
use alss_ghd::enumerate::{enumerate_ghds, is_alpha_acyclic};
use alss_graph::{Graph, GraphBuilder, WILDCARD};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn connected_graph(max_nodes: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_nodes).prop_flat_map(|n| {
        (
            proptest::collection::vec(1u32..n.max(2) as u32, n - 1),
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..=n),
        )
            .prop_map(move |(spine, extra)| {
                let mut b = GraphBuilder::new(n);
                for v in 0..n as u32 {
                    b.set_label(v, WILDCARD);
                }
                for (i, r) in spine.iter().enumerate() {
                    let child = (i + 1) as u32;
                    b.add_edge(r % child, child);
                }
                for (u, v) in extra {
                    if u != v {
                        b.add_edge(u, v);
                    }
                }
                b.build()
            })
    })
}

/// Brute-force minimum *integral* edge cover size (exponential; graphs are
/// tiny).
fn min_integral_cover(g: &Graph) -> Option<usize> {
    let edges: Vec<(u32, u32)> = g.edges().map(|e| (e.u, e.v)).collect();
    let m = edges.len();
    if m == 0 || m > 12 {
        return None;
    }
    let mut best = None;
    'mask: for mask in 1u32..(1 << m) {
        let mut covered = vec![false; g.num_nodes()];
        for (i, &(u, v)) in edges.iter().enumerate() {
            if mask & (1 << i) != 0 {
                covered[u as usize] = true;
                covered[v as usize] = true;
            }
        }
        for c in &covered {
            if !c {
                continue 'mask;
            }
        }
        let size = mask.count_ones() as usize;
        if best.is_none_or(|b| size < b) {
            best = Some(size);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fractional_cover_bounded_by_integral_cover(g in connected_graph(6)) {
        let (rho, x) = fractional_edge_cover(&g).expect("connected graph");
        // every vertex covered
        let edges: Vec<(u32, u32)> = g.edges().map(|e| (e.u, e.v)).collect();
        for v in g.nodes() {
            let cov: f64 = edges
                .iter()
                .zip(&x)
                .filter(|(&(a, b), _)| a == v || b == v)
                .map(|(_, &xi)| xi)
                .sum();
            prop_assert!(cov >= 1.0 - 1e-6, "vertex {} uncovered: {}", v, cov);
        }
        // ρ* ≤ integral cover, and ≥ n/2 (each edge covers ≤ 2 vertices)
        if let Some(int_cover) = min_integral_cover(&g) {
            prop_assert!(rho <= int_cover as f64 + 1e-6);
        }
        prop_assert!(rho >= g.num_nodes() as f64 / 2.0 - 1e-6);
    }

    #[test]
    fn agm_bound_monotone_in_relation_sizes(g in connected_graph(5)) {
        let m = g.num_edges();
        let small = vec![10.0; m];
        let large = vec![1000.0; m];
        let b_small = agm_bound(&g, &small).expect("solvable");
        let b_large = agm_bound(&g, &large).expect("solvable");
        prop_assert!(b_small <= b_large + 1e-6);
    }

    #[test]
    fn agm_uniform_equals_rho_power(g in connected_graph(5)) {
        let n = 100.0f64;
        let m = g.num_edges();
        let (rho, _) = fractional_edge_cover(&g).expect("connected");
        let bound = agm_bound(&g, &vec![n; m]).expect("solvable");
        let expect = n.powf(rho);
        prop_assert!(
            (bound - expect).abs() / expect < 1e-4,
            "bound {} vs N^rho {}", bound, expect
        );
    }

    #[test]
    fn every_enumerated_ghd_is_acyclic_over_bags(g in connected_graph(5)) {
        if g.num_edges() > 8 {
            return Ok(()); // keep enumeration fast
        }
        for d in enumerate_ghds(&g, 3) {
            let sets: Vec<BTreeSet<u32>> = d
                .bags
                .iter()
                .map(|b| b.nodes.iter().copied().collect())
                .collect();
            prop_assert!(is_alpha_acyclic(&sets));
        }
    }
}
