//! GHD plan costing and selection (§6.6).
//!
//! A plan's estimated cost is `max_i ĉ(τ_i)` over its bags, where `ĉ` is
//! supplied by a pluggable estimator: the classical AGM bound
//! ([`agm_cost`]) or any learned model (the bench harness plugs LSS in via
//! a closure). The *true* cost of a chosen plan is `max_i |R_{τ_i}|`, the
//! exact homomorphism count of each bag subquery.

use crate::cover::agm_bound;
use crate::enumerate::Decomposition;
use alss_graph::{Graph, LabelId, WILDCARD};
use alss_matching::{count_homomorphisms, Budget};
use std::collections::HashMap;

/// Index of label-filtered relation sizes: for a query edge with endpoint
/// labels `(l_u, l_v)` (and optional edge label), the number of *directed*
/// data edges compatible with it.
#[derive(Clone, Debug)]
pub struct RelationIndex {
    pair: HashMap<(LabelId, LabelId, LabelId), u64>,
    src: HashMap<(LabelId, LabelId), u64>,
    by_edge_label: HashMap<LabelId, u64>,
    total_directed: u64,
}

impl RelationIndex {
    /// Scan the data graph once.
    pub fn new(data: &Graph) -> Self {
        let mut pair: HashMap<(LabelId, LabelId, LabelId), u64> = HashMap::new();
        let mut src: HashMap<(LabelId, LabelId), u64> = HashMap::new();
        let mut by_edge_label: HashMap<LabelId, u64> = HashMap::new();
        for e in data.edges() {
            let (lu, lv) = (data.label(e.u), data.label(e.v));
            for (a, b) in [(lu, lv), (lv, lu)] {
                *pair.entry((a, b, e.label)).or_default() += 1;
                *src.entry((a, e.label)).or_default() += 1;
                *by_edge_label.entry(e.label).or_default() += 1;
            }
        }
        RelationIndex {
            pair,
            src,
            by_edge_label,
            total_directed: 2 * data.num_edges() as u64,
        }
    }

    /// Directed tuples compatible with a query edge `(l_u, l_v, l_e)`;
    /// wildcards aggregate.
    pub fn size(&self, lu: LabelId, lv: LabelId, le: LabelId) -> u64 {
        match (lu == WILDCARD, lv == WILDCARD, le == WILDCARD) {
            (true, true, true) => self.total_directed,
            (true, true, false) => self.by_edge_label.get(&le).copied().unwrap_or(0),
            (false, true, _) => {
                if le == WILDCARD {
                    // sum over edge labels with source lu
                    self.src
                        .iter()
                        .filter(|((l, _), _)| *l == lu)
                        .map(|(_, &c)| c)
                        .sum()
                } else {
                    self.src.get(&(lu, le)).copied().unwrap_or(0)
                }
            }
            (true, false, _) => self.size(lv, lu, le), // symmetric
            (false, false, _) => {
                if le == WILDCARD {
                    self.pair
                        .iter()
                        .filter(|((a, b, _), _)| *a == lu && *b == lv)
                        .map(|(_, &c)| c)
                        .sum()
                } else {
                    self.pair.get(&(lu, lv, le)).copied().unwrap_or(0)
                }
            }
        }
    }

    /// Relation sizes for every edge of a query, in edge order.
    pub fn relation_sizes(&self, q: &Graph) -> Vec<f64> {
        q.edges()
            .map(|e| self.size(q.label(e.u), q.label(e.v), e.label).max(1) as f64)
            .collect()
    }
}

/// AGM cost of one bag subquery: the label-aware AGM bound
/// `min_x Π_e |R_e|^{x_e}`.
pub fn agm_cost(index: &RelationIndex, bag_query: &Graph) -> f64 {
    let sizes = index.relation_sizes(bag_query);
    agm_bound(bag_query, &sizes).unwrap_or(f64::INFINITY)
}

/// A selected plan with its estimated cost.
#[derive(Clone, Debug)]
pub struct PlanChoice {
    /// Index into the decomposition list.
    pub index: usize,
    /// `max_i ĉ(τ_i)` under the supplied estimator.
    pub est_cost: f64,
}

/// Choose the decomposition minimizing `max_i ĉ(bag_i)` under `estimate`.
pub fn choose_plan(
    q: &Graph,
    decomps: &[Decomposition],
    mut estimate: impl FnMut(&Graph) -> f64,
) -> PlanChoice {
    assert!(!decomps.is_empty(), "no decompositions to choose from");
    let mut best = PlanChoice {
        index: 0,
        est_cost: f64::INFINITY,
    };
    for (i, d) in decomps.iter().enumerate() {
        let mut cost = 0.0f64;
        for b in 0..d.bags.len() {
            let (bq, _) = d.bag_query(q, b);
            cost = cost.max(estimate(&bq).max(1.0));
        }
        if cost < best.est_cost {
            best = PlanChoice {
                index: i,
                est_cost: cost,
            };
        }
    }
    best
}

/// True cost of a plan: `max_i |R_{τ_i}|` by exact homomorphism counting.
/// Returns `None` if any bag count exceeds the budget.
pub fn true_cost(data: &Graph, q: &Graph, d: &Decomposition, budget: &Budget) -> Option<u64> {
    let mut cost = 0u64;
    for b in 0..d.bags.len() {
        let (bq, _) = d.bag_query(q, b);
        let c = count_homomorphisms(data, &bq, budget).ok()?;
        cost = cost.max(c.max(1));
    }
    Some(cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_ghds;
    use alss_graph::builder::graph_from_edges;

    fn data() -> Graph {
        // labels: many 0-0 edges, few 1-1 edges
        graph_from_edges(
            &[0, 0, 0, 0, 1, 1],
            &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2), (4, 5)],
        )
    }

    #[test]
    fn relation_index_counts_directed_pairs() {
        let d = data();
        let idx = RelationIndex::new(&d);
        assert_eq!(idx.size(0, 0, WILDCARD), 10); // 5 undirected 0-0 edges
        assert_eq!(idx.size(1, 1, WILDCARD), 2);
        assert_eq!(idx.size(0, 1, WILDCARD), 0);
        assert_eq!(idx.size(WILDCARD, WILDCARD, WILDCARD), 12);
        assert_eq!(idx.size(1, WILDCARD, WILDCARD), 2);
    }

    #[test]
    fn agm_cost_respects_labels() {
        let d = data();
        let idx = RelationIndex::new(&d);
        let q_dense = graph_from_edges(&[0, 0], &[(0, 1)]);
        let q_sparse = graph_from_edges(&[1, 1], &[(0, 1)]);
        assert!(agm_cost(&idx, &q_dense) > agm_cost(&idx, &q_sparse));
    }

    #[test]
    fn plan_selection_picks_cheapest() {
        let d = data();
        let idx = RelationIndex::new(&d);
        let q = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let decomps = enumerate_ghds(&q, 3);
        let choice = choose_plan(&q, &decomps, |bq| agm_cost(&idx, bq));
        assert!(choice.est_cost.is_finite());
        assert!(choice.index < decomps.len());
    }

    #[test]
    fn true_cost_is_max_over_bags() {
        let d = data();
        let q = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let decomps = enumerate_ghds(&q, 2);
        let full = decomps.iter().position(|x| x.bags.len() == 1).unwrap();
        let split = decomps.iter().position(|x| x.bags.len() == 2).unwrap();
        let b = Budget::unlimited();
        let tc_full = true_cost(&d, &q, &decomps[full], &b).unwrap();
        let tc_split = true_cost(&d, &q, &decomps[split], &b).unwrap();
        // splitting the path into two single-edge bags caps each bag's size
        // at the edge-relation size, which is smaller than the path count
        assert!(tc_split <= tc_full);
    }

    #[test]
    fn perfect_estimator_never_loses_to_agm() {
        // with the true count as estimator, chosen plan's true cost is ≤
        // AGM's chosen plan true cost
        let d = data();
        let idx = RelationIndex::new(&d);
        let q = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let decomps = enumerate_ghds(&q, 3);
        let b = Budget::unlimited();
        let agm_pick = choose_plan(&q, &decomps, |bq| agm_cost(&idx, bq));
        let oracle_pick = choose_plan(&q, &decomps, |bq| {
            count_homomorphisms(&d, bq, &Budget::unlimited()).unwrap() as f64
        });
        let agm_true = true_cost(&d, &q, &decomps[agm_pick.index], &b).unwrap();
        let oracle_true = true_cost(&d, &q, &decomps[oracle_pick.index], &b).unwrap();
        assert!(oracle_true <= agm_true);
    }
}
