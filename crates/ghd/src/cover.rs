//! Fractional edge covers and the AGM bound (Atserias–Grohe–Marx).

use crate::simplex::{solve_min, LpResult};
use alss_graph::Graph;

/// The fractional edge cover number `ρ*(q)`: the optimum of
/// `min Σ_e x_e  s.t.  Σ_{e ∋ v} x_e ≥ 1 ∀v,  x ≥ 0`.
///
/// Isolated query nodes make the LP infeasible (no incident edge); queries
/// here are connected with ≥ 1 edge, so we return `None` in that case
/// rather than panicking.
pub fn fractional_edge_cover(q: &Graph) -> Option<(f64, Vec<f64>)> {
    let n = q.num_nodes();
    let m = q.num_edges();
    if m == 0 {
        return if n == 0 { Some((0.0, vec![])) } else { None };
    }
    let edges: Vec<(u32, u32)> = q.edges().map(|e| (e.u, e.v)).collect();
    let mut a = vec![0.0f64; n * m];
    for (j, &(u, v)) in edges.iter().enumerate() {
        a[u as usize * m + j] = 1.0;
        a[v as usize * m + j] = 1.0;
    }
    let c = vec![1.0f64; m];
    let b = vec![1.0f64; n];
    match solve_min(&c, &a, &b) {
        LpResult::Optimal(v, x) => Some((v, x)),
        _ => None,
    }
}

/// AGM upper bound on the number of homomorphisms of `q` into a data graph
/// with per-query-edge relation sizes `rel_sizes` (|R_e| as *directed*
/// tuple counts): `Π_e |R_e|^{x_e}` minimized over fractional edge covers.
///
/// When all relations have the same size `N` this reduces to `N^{ρ*}`.
/// The exact per-edge-weighted optimum solves the LP with objective
/// `Σ_e x_e ln |R_e|`, which we do here.
pub fn agm_bound(q: &Graph, rel_sizes: &[f64]) -> Option<f64> {
    let n = q.num_nodes();
    let m = q.num_edges();
    assert_eq!(rel_sizes.len(), m, "one relation size per query edge");
    if m == 0 {
        return Some(if n == 0 { 1.0 } else { f64::INFINITY });
    }
    let edges: Vec<(u32, u32)> = q.edges().map(|e| (e.u, e.v)).collect();
    let mut a = vec![0.0f64; n * m];
    for (j, &(u, v)) in edges.iter().enumerate() {
        a[u as usize * m + j] = 1.0;
        a[v as usize * m + j] = 1.0;
    }
    // Objective: minimize Σ x_e ln|R_e| → bound = exp(optimum).
    let c: Vec<f64> = rel_sizes.iter().map(|&s| s.max(1.0).ln()).collect();
    let b = vec![1.0f64; n];
    match solve_min(&c, &a, &b) {
        LpResult::Optimal(v, _) => Some(v.exp()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::builder::graph_from_edges;
    use alss_graph::WILDCARD;

    #[test]
    fn triangle_cover_is_three_halves() {
        let q = graph_from_edges(&[WILDCARD; 3], &[(0, 1), (1, 2), (0, 2)]);
        let (rho, x) = fractional_edge_cover(&q).unwrap();
        assert!((rho - 1.5).abs() < 1e-6);
        assert_eq!(x.len(), 3);
    }

    #[test]
    fn single_edge_cover_is_one() {
        let q = graph_from_edges(&[WILDCARD; 2], &[(0, 1)]);
        let (rho, _) = fractional_edge_cover(&q).unwrap();
        assert!((rho - 1.0).abs() < 1e-6);
    }

    #[test]
    fn four_cycle_cover_is_two() {
        let q = graph_from_edges(&[WILDCARD; 4], &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let (rho, _) = fractional_edge_cover(&q).unwrap();
        assert!((rho - 2.0).abs() < 1e-6);
    }

    #[test]
    fn isolated_node_is_uncoverable() {
        let q = graph_from_edges(&[WILDCARD; 3], &[(0, 1)]);
        assert!(fractional_edge_cover(&q).is_none());
    }

    #[test]
    fn agm_matches_uniform_formula() {
        // triangle with all relations of size N: bound = N^1.5
        let q = graph_from_edges(&[WILDCARD; 3], &[(0, 1), (1, 2), (0, 2)]);
        let n = 1000.0;
        let b = agm_bound(&q, &[n, n, n]).unwrap();
        assert!((b - n.powf(1.5)).abs() / n.powf(1.5) < 1e-6);
    }

    #[test]
    fn agm_prefers_small_relations() {
        // path of 2 edges: cover can use both edges (x=1,1 minus center
        // overlap...); vertices: ends need their edge. ρ picks both edges.
        // With sizes (10, 1000) bound = 10 * 1000; but a triangle with one
        // tiny relation should lean on it.
        let tri = graph_from_edges(&[WILDCARD; 3], &[(0, 1), (1, 2), (0, 2)]);
        let b = agm_bound(&tri, &[4.0, 1e6, 1e6]).unwrap();
        // covers must still touch vertex 2 via big edges; optimum uses
        // x_small = 1, and x_big1 + x_big2 covering vertices 1,2: ≥ ... bound
        // must be finite and far below 1e9 (uniform-cover value)
        assert!(b < 1e9);
        assert!(b >= 4.0);
    }

    #[test]
    fn agm_is_a_true_upper_bound_on_small_case() {
        use alss_matching::{count_homomorphisms, Budget};
        let data = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]);
        let q = graph_from_edges(&[WILDCARD; 3], &[(0, 1), (1, 2), (0, 2)]);
        let hom = count_homomorphisms(&data, &q, &Budget::unlimited()).unwrap();
        // every relation = all directed edges = 2|E|
        let m = (2 * data.num_edges()) as f64;
        let bound = agm_bound(&q, &[m, m, m]).unwrap();
        assert!(bound >= hom as f64, "AGM {bound} < true {hom}");
    }
}
