//! # alss-ghd
//!
//! The query-optimization substrate for §6.6 of *A Learned Sketch for
//! Subgraph Counting*: generalized hypertree decompositions (GHD) in the
//! style of EmptyHeaded, costed either by the classical AGM bound or by a
//! pluggable cardinality estimator (the bench harness plugs in LSS).
//!
//! * [`simplex`] — a dense two-phase simplex LP solver;
//! * [`cover`] — fractional edge covers `ρ*` and the (label-aware) AGM
//!   bound `min_x Π_e |R_e|^{x_e}`;
//! * [`enumerate`] — GHD enumeration for small queries: edge partitions
//!   with connected bags, validated α-acyclic by GYO reduction;
//! * [`plan`] — plan costing (`max_i ĉ(τ_i)`), selection, and true-cost
//!   evaluation (`max_i |R_{τ_i}|` by exact counting).
//!
//! ```
//! use alss_ghd::{enumerate_ghds, fractional_edge_cover};
//! use alss_graph::builder::graph_from_edges;
//! use alss_graph::WILDCARD;
//!
//! // the triangle has fractional edge cover number 3/2 (AGM: |E|^1.5)
//! let tri = graph_from_edges(&[WILDCARD; 3], &[(0, 1), (1, 2), (0, 2)]);
//! let (rho, _) = fractional_edge_cover(&tri).unwrap();
//! assert!((rho - 1.5).abs() < 1e-6);
//!
//! // GHD plans: the whole-triangle bag plus two-bag splits
//! let plans = enumerate_ghds(&tri, 3);
//! assert!(plans.iter().any(|d| d.bags.len() == 1));
//! ```

// Test modules opt back out of the library panic/numeric policy: a panic
// IS the failure report there, and fixtures are tiny.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub mod cover;
pub mod enumerate;
pub mod plan;
pub mod simplex;

pub use cover::{agm_bound, fractional_edge_cover};
pub use enumerate::{enumerate_ghds, Decomposition};
pub use plan::{agm_cost, choose_plan, true_cost, PlanChoice, RelationIndex};
