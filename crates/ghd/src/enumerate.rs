//! Enumeration of generalized hypertree decompositions (GHDs) for small
//! query graphs (§6.6).
//!
//! A decomposition partitions the query's edges into *bags*; we require
//! each bag's edges to induce a connected subquery and the hypergraph of
//! bag node-sets to be α-acyclic (GYO-reducible), which guarantees an
//! acyclic join tree over the bags exists (joins *among* bags are acyclic,
//! joins *inside* a bag may be cyclic — exactly the paper's framing).
//! The single-bag decomposition (whole query evaluated by one worst-case
//! optimal join) is always included.

use alss_graph::{Graph, GraphBuilder, NodeId, WILDCARD};
use std::collections::BTreeSet;

/// One bag of a decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bag {
    /// Indices into the query's unique edge list.
    pub edges: Vec<usize>,
    /// Query nodes covered by those edges (sorted).
    pub nodes: Vec<NodeId>,
}

/// A candidate GHD: a valid partition of the query edges into bags.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decomposition {
    /// The bags; their edge sets partition `E_q`.
    pub bags: Vec<Bag>,
}

impl Decomposition {
    /// Materialize bag `i` as a standalone labeled query graph (local node
    /// ids) together with the local→query node mapping.
    pub fn bag_query(&self, q: &Graph, i: usize) -> (Graph, Vec<NodeId>) {
        let bag = &self.bags[i];
        let qedges: Vec<_> = q.edges().collect();
        let mut local = std::collections::HashMap::new();
        let mut order = Vec::new();
        for &n in &bag.nodes {
            local.insert(n, alss_graph::node_id(order.len()));
            order.push(n);
        }
        let mut b = GraphBuilder::new(order.len());
        for (&n, &l) in order
            .iter()
            .zip(order.iter().map(|&n| local[&n]).collect::<Vec<_>>().iter())
        {
            b.set_label(l, q.label(n));
        }
        for &ei in &bag.edges {
            let e = qedges[ei];
            if e.label == WILDCARD {
                b.add_edge(local[&e.u], local[&e.v]);
            } else {
                b.add_labeled_edge(local[&e.u], local[&e.v], e.label);
            }
        }
        (b.build(), order)
    }
}

/// GYO reduction: is the hypergraph given by `hyperedges` α-acyclic?
pub fn is_alpha_acyclic(hyperedges: &[BTreeSet<NodeId>]) -> bool {
    let mut hs: Vec<BTreeSet<NodeId>> = hyperedges.to_vec();
    loop {
        let mut changed = false;
        // Remove hyperedges contained in another hyperedge.
        let mut keep: Vec<BTreeSet<NodeId>> = Vec::with_capacity(hs.len());
        for (i, h) in hs.iter().enumerate() {
            let contained = hs
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && h.is_subset(other) && !(h == other && j > i));
            if !contained {
                keep.push(h.clone());
            } else {
                changed = true;
            }
        }
        hs = keep;
        // Remove vertices occurring in exactly one hyperedge.
        let mut count: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
        for h in &hs {
            for &v in h {
                *count.entry(v).or_default() += 1;
            }
        }
        for h in &mut hs {
            let before = h.len();
            h.retain(|v| count[v] > 1);
            if h.len() != before {
                changed = true;
            }
        }
        hs.retain(|h| !h.is_empty());
        if hs.len() <= 1 {
            return true;
        }
        if !changed {
            return false;
        }
    }
}

/// Is every bag's edge set connected (as a subgraph)?
fn bag_connected(q: &Graph, edge_ids: &[usize], qedges: &[(NodeId, NodeId)]) -> bool {
    if edge_ids.len() <= 1 {
        return true;
    }
    let _ = q;
    // union-find over bag nodes via edges
    let mut parent: std::collections::HashMap<NodeId, NodeId> = std::collections::HashMap::new();
    fn find(p: &mut std::collections::HashMap<NodeId, NodeId>, x: NodeId) -> NodeId {
        let mut r = x;
        while p[&r] != r {
            r = p[&r];
        }
        let mut c = x;
        while p[&c] != r {
            let next = p[&c];
            p.insert(c, r);
            c = next;
        }
        r
    }
    let mut comps = 0i64;
    for &ei in edge_ids {
        let (u, v) = qedges[ei];
        for &x in &[u, v] {
            if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(x) {
                e.insert(x);
                comps += 1;
            }
        }
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent.insert(ru, rv);
            comps -= 1;
        }
    }
    comps == 1
}

/// Enumerate all valid decompositions with at most `max_bags` bags.
///
/// Edge partitions are generated in canonical form (edge 0 in bag 0; a new
/// bag may only be opened by the lowest-index unassigned edge), filtered by
/// per-bag connectivity and GYO α-acyclicity. Queries with more than
/// `MAX_EDGES` edges are rejected (the §6.6 workload uses 4/5-node
/// patterns).
pub fn enumerate_ghds(q: &Graph, max_bags: usize) -> Vec<Decomposition> {
    const MAX_EDGES: usize = 12;
    let qedges: Vec<(NodeId, NodeId)> = q.edges().map(|e| (e.u, e.v)).collect();
    let m = qedges.len();
    assert!(m >= 1, "query has no edges");
    assert!(
        m <= MAX_EDGES,
        "GHD enumeration limited to {MAX_EDGES} edges"
    );
    let mut out = Vec::new();
    let mut assign = vec![0usize; m];

    #[allow(clippy::too_many_arguments)]
    fn rec(
        pos: usize,
        num_bags: usize,
        assign: &mut Vec<usize>,
        m: usize,
        max_bags: usize,
        q: &Graph,
        qedges: &[(NodeId, NodeId)],
        out: &mut Vec<Decomposition>,
    ) {
        if pos == m {
            let mut bags: Vec<Vec<usize>> = vec![Vec::new(); num_bags];
            for (e, &b) in assign.iter().enumerate() {
                bags[b].push(e);
            }
            if !bags.iter().all(|b| bag_connected(q, b, qedges)) {
                return;
            }
            let nodesets: Vec<BTreeSet<NodeId>> = bags
                .iter()
                .map(|b| {
                    b.iter()
                        .flat_map(|&ei| [qedges[ei].0, qedges[ei].1])
                        .collect()
                })
                .collect();
            if !is_alpha_acyclic(&nodesets) {
                return;
            }
            out.push(Decomposition {
                bags: bags
                    .into_iter()
                    .zip(nodesets)
                    .map(|(edges, ns)| Bag {
                        edges,
                        nodes: ns.into_iter().collect(),
                    })
                    .collect(),
            });
            return;
        }
        let open = num_bags.min(max_bags);
        for b in 0..open {
            assign[pos] = b;
            rec(pos + 1, num_bags, assign, m, max_bags, q, qedges, out);
        }
        if num_bags < max_bags {
            assign[pos] = num_bags;
            rec(pos + 1, num_bags + 1, assign, m, max_bags, q, qedges, out);
        }
    }
    rec(0, 0, &mut assign, m, max_bags, q, &qedges, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::builder::graph_from_edges;

    fn set(v: &[u32]) -> BTreeSet<NodeId> {
        v.iter().copied().collect()
    }

    #[test]
    fn gyo_accepts_acyclic_hypergraphs() {
        // join tree: {0,1},{1,2},{2,3}
        assert!(is_alpha_acyclic(&[
            set(&[0, 1]),
            set(&[1, 2]),
            set(&[2, 3])
        ]));
        // single hyperedge always acyclic
        assert!(is_alpha_acyclic(&[set(&[0, 1, 2])]));
        // triangle covered by one bag
        assert!(is_alpha_acyclic(&[set(&[0, 1, 2]), set(&[2, 3])]));
    }

    #[test]
    fn gyo_rejects_cyclic_hypergraphs() {
        // the triangle as three binary hyperedges is the classic cycle
        assert!(!is_alpha_acyclic(&[
            set(&[0, 1]),
            set(&[1, 2]),
            set(&[0, 2])
        ]));
    }

    #[test]
    fn triangle_decompositions() {
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
        let ds = enumerate_ghds(&q, 3);
        // single-bag must be present
        assert!(ds.iter().any(|d| d.bags.len() == 1));
        // the 3-singleton-bag split is cyclic → excluded
        assert!(ds.iter().all(|d| d.bags.len() != 3));
        // two-bag splits like {01,12},{02}: bag node sets {0,1,2},{0,2}
        // are acyclic → included
        assert!(ds.iter().any(|d| d.bags.len() == 2));
    }

    #[test]
    fn path_allows_full_split() {
        let q = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]);
        let ds = enumerate_ghds(&q, 3);
        // per-edge bags form a join tree for a path
        assert!(ds.iter().any(|d| d.bags.len() == 3));
    }

    #[test]
    fn disconnected_bags_rejected() {
        let q = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]);
        let ds = enumerate_ghds(&q, 2);
        for d in &ds {
            for bag in &d.bags {
                // reconstruct connectivity
                let (bq, _) = d.bag_query(&q, 0);
                assert!(bq.is_connected());
                let _ = bag;
            }
        }
        // specifically {e0,e2} in one bag is disconnected → no decomposition
        // may contain exactly that bag
        for d in &ds {
            for bag in &d.bags {
                assert_ne!(bag.edges, vec![0, 2]);
            }
        }
    }

    #[test]
    fn bag_query_preserves_labels() {
        let q = graph_from_edges(&[5, 6, 7], &[(0, 1), (1, 2)]);
        let ds = enumerate_ghds(&q, 2);
        let two = ds.iter().find(|d| d.bags.len() == 2).unwrap();
        let (bq, orig) = two.bag_query(&q, 0);
        for v in bq.nodes() {
            assert_eq!(bq.label(v), q.label(orig[v as usize]));
        }
    }
}
