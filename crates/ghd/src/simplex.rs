//! A small dense two-phase primal simplex solver.
//!
//! Sized for the tiny LPs of this repository: fractional edge covers of
//! query graphs (≤ ~40 variables, ≤ ~32 constraints). Uses Bland's rule,
//! so it cannot cycle.

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    /// Optimal solution found: (objective value, variable assignment).
    Optimal(f64, Vec<f64>),
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

/// Minimize `c·x` subject to `A x ≥ b`, `x ≥ 0`.
///
/// `a` is row-major `m × n`; `b` has length `m`; `c` has length `n`.
pub fn solve_min(c: &[f64], a: &[f64], b: &[f64]) -> LpResult {
    let n = c.len();
    let m = b.len();
    assert_eq!(a.len(), m * n, "constraint matrix shape");

    // Convert to equalities: A x − s = b (surplus s ≥ 0), then phase-1 with
    // artificials. Normalize rows to b ≥ 0 first (flip rows with b < 0).
    // Columns: [x (n) | s (m) | artificials (m)].
    let cols = n + m + m;
    let mut t = vec![0.0f64; m * cols]; // tableau rows
    let mut rhs = vec![0.0f64; m];
    for i in 0..m {
        let flip = b[i] < 0.0;
        let sgn = if flip { -1.0 } else { 1.0 };
        for j in 0..n {
            t[i * cols + j] = sgn * a[i * n + j];
        }
        t[i * cols + n + i] = -sgn; // surplus
        t[i * cols + n + m + i] = 1.0; // artificial
        rhs[i] = sgn * b[i];
    }
    let mut basis: Vec<usize> = (0..m).map(|i| n + m + i).collect();

    // Phase 1: minimize sum of artificials.
    let mut obj1 = vec![0.0f64; cols];
    for o in obj1.iter_mut().skip(n + m) {
        *o = 1.0;
    }
    let feasible = simplex_core(&mut t, &mut rhs, &mut basis, &obj1, cols, m);
    match feasible {
        CoreResult::Unbounded => return LpResult::Infeasible, // cannot happen
        CoreResult::Optimal(v) if v > 1e-7 => return LpResult::Infeasible,
        CoreResult::Optimal(_) => {}
    }
    // Drive artificials out of the basis where possible.
    for i in 0..m {
        if basis[i] >= n + m {
            // find a non-artificial column with nonzero coefficient
            if let Some(j) = (0..n + m).find(|&j| t[i * cols + j].abs() > 1e-9) {
                pivot(&mut t, &mut rhs, &mut basis, cols, m, i, j);
            }
            // else: redundant row; keep artificial at value 0
        }
    }

    // Phase 2: original objective; forbid artificials by large cost.
    let mut obj2 = vec![0.0f64; cols];
    obj2[..n].copy_from_slice(c);
    for o in obj2.iter_mut().skip(n + m) {
        *o = 1e18;
    }
    match simplex_core(&mut t, &mut rhs, &mut basis, &obj2, cols, m) {
        CoreResult::Unbounded => LpResult::Unbounded,
        CoreResult::Optimal(_) => {
            let mut x = vec![0.0; n];
            for i in 0..m {
                if basis[i] < n {
                    x[basis[i]] = rhs[i];
                }
            }
            let val = c.iter().zip(&x).map(|(&ci, &xi)| ci * xi).sum();
            LpResult::Optimal(val, x)
        }
    }
}

enum CoreResult {
    Optimal(f64),
    Unbounded,
}

/// Revised-tableau simplex with Bland's rule on an equality system.
fn simplex_core(
    t: &mut [f64],
    rhs: &mut [f64],
    basis: &mut [usize],
    obj: &[f64],
    cols: usize,
    m: usize,
) -> CoreResult {
    loop {
        // reduced costs: r_j = obj_j − y·col_j where y solves basis pricing.
        // With the tableau kept in canonical form, r_j = obj_j − Σ_i obj_basis[i]*t[i][j].
        let mut entering = None;
        for j in 0..cols {
            if basis.contains(&j) {
                continue;
            }
            let mut r = obj[j];
            for i in 0..m {
                r -= obj[basis[i]] * t[i * cols + j];
            }
            if r < -1e-9 {
                entering = Some(j);
                break; // Bland: smallest index
            }
        }
        let Some(j) = entering else {
            let val = (0..m).map(|i| obj[basis[i]] * rhs[i]).sum();
            return CoreResult::Optimal(val);
        };
        // ratio test
        let mut leave: Option<(usize, f64)> = None;
        for i in 0..m {
            let aij = t[i * cols + j];
            if aij > 1e-9 {
                let ratio = rhs[i] / aij;
                let better = match leave {
                    None => true,
                    Some((li, lr)) => {
                        ratio < lr - 1e-12 || (ratio < lr + 1e-12 && basis[i] < basis[li])
                    }
                };
                if better {
                    leave = Some((i, ratio));
                }
            }
        }
        let Some((i, _)) = leave else {
            return CoreResult::Unbounded;
        };
        pivot(t, rhs, basis, cols, m, i, j);
    }
}

fn pivot(
    t: &mut [f64],
    rhs: &mut [f64],
    basis: &mut [usize],
    cols: usize,
    m: usize,
    pr: usize,
    pc: usize,
) {
    let pv = t[pr * cols + pc];
    debug_assert!(pv.abs() > 1e-12, "pivot on ~zero element");
    for j in 0..cols {
        t[pr * cols + j] /= pv;
    }
    rhs[pr] /= pv;
    for i in 0..m {
        if i == pr {
            continue;
        }
        let f = t[i * cols + pc];
        if f.abs() < 1e-13 {
            continue;
        }
        for j in 0..cols {
            t[i * cols + j] -= f * t[pr * cols + j];
        }
        rhs[i] -= f * rhs[pr];
    }
    basis[pr] = pc;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_optimal(r: LpResult, expect: f64) -> Vec<f64> {
        match r {
            LpResult::Optimal(v, x) => {
                assert!((v - expect).abs() < 1e-6, "objective {v} != {expect}");
                x
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn simple_covering_lp() {
        // min x1 + x2 s.t. x1 ≥ 1, x2 ≥ 2 → 3
        let r = solve_min(&[1.0, 1.0], &[1.0, 0.0, 0.0, 1.0], &[1.0, 2.0]);
        let x = assert_optimal(r, 3.0);
        assert!((x[0] - 1.0).abs() < 1e-6 && (x[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn triangle_edge_cover() {
        // K3 fractional edge cover: 3 edges, each vertex in 2 edges;
        // min Σx s.t. each vertex covered → 3/2 with x = 1/2 each.
        #[rustfmt::skip]
        let a = [
            1.0, 1.0, 0.0, // vertex 0 in edges (01),(02)
            1.0, 0.0, 1.0, // vertex 1 in edges (01),(12)
            0.0, 1.0, 1.0, // vertex 2 in edges (02),(12)
        ];
        let r = solve_min(&[1.0, 1.0, 1.0], &a, &[1.0, 1.0, 1.0]);
        assert_optimal(r, 1.5);
    }

    #[test]
    fn infeasible_detected() {
        // x ≥ 2 and −x ≥ −1 (i.e. x ≤ 1): infeasible
        let r = solve_min(&[1.0], &[1.0, -1.0], &[2.0, -1.0]);
        assert_eq!(r, LpResult::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min −x s.t. x ≥ 0 (no upper bound)
        let r = solve_min(&[-1.0], &[1.0], &[0.0]);
        assert_eq!(r, LpResult::Unbounded);
    }

    #[test]
    fn star_edge_cover_needs_all_leaves() {
        // star with center 0, leaves 1..3; edges (0,i): each leaf vertex
        // only covered by its own edge → x_i = 1, objective 3.
        #[rustfmt::skip]
        let a = [
            1.0, 1.0, 1.0, // center in all edges
            1.0, 0.0, 0.0,
            0.0, 1.0, 0.0,
            0.0, 0.0, 1.0,
        ];
        let r = solve_min(&[1.0, 1.0, 1.0], &a, &[1.0; 4]);
        assert_optimal(r, 3.0);
    }

    #[test]
    fn path_cover_alternates() {
        // path 0-1-2-3-4 (4 edges): both end vertices force their edge to 1,
        // and the middle vertex needs x2+x3 ≥ 1 → ρ* = ⌈5/2⌉ = 3
        #[rustfmt::skip]
        let a = [
            1.0, 0.0, 0.0, 0.0,
            1.0, 1.0, 0.0, 0.0,
            0.0, 1.0, 1.0, 0.0,
            0.0, 0.0, 1.0, 1.0,
            0.0, 0.0, 0.0, 1.0,
        ];
        let r = solve_min(&[1.0; 4], &a, &[1.0; 5]);
        assert_optimal(r, 3.0);
    }
}
