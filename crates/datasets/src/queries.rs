//! Query-workload generation (Table 3): random connected subgraphs of the
//! data graph, labeled with exact counts in parallel, keeping only queries
//! whose ground truth fits the expansion budget (the paper's 2-hour
//! filter).

use alss_core::workload::{LabeledQuery, Workload};
use alss_graph::extract::{extract_pattern, extract_query, ExtractOptions};
use alss_graph::io::to_text;
use alss_graph::labels::LabelStats;
use alss_graph::{Graph, LabelId, NodeId, WILDCARD};
use alss_matching::{Budget, Semantics};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Workload-generation parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Query sizes to generate (Table 3's "Query Sizes").
    pub sizes: Vec<usize>,
    /// Target number of labeled queries per size.
    pub per_size: usize,
    /// Counting semantics (homomorphism or isomorphism).
    pub semantics: Semantics,
    /// Per-query exact-count expansion budget (stands in for the paper's
    /// 2-hour timeout).
    pub budget_per_query: u64,
    /// Probability of degrading a node label to a wildcard.
    pub wildcard_prob: f64,
    /// Extract induced subgraphs (denser queries) or sparsified ones.
    pub induced: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            sizes: vec![3, 6, 9, 12],
            per_size: 50,
            semantics: Semantics::Homomorphism,
            budget_per_query: 20_000_000,
            wildcard_prob: 0.05,
            induced: false,
            seed: 1,
        }
    }
}

/// Generate a labeled workload. Candidate queries are extracted until each
/// size bucket reaches `per_size` labeled queries or the candidate budget
/// (`10 × per_size` per size) runs out; labeling runs rayon-parallel.
pub fn generate_workload(data: &Graph, spec: &WorkloadSpec) -> Workload {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let opts = ExtractOptions {
        induced: spec.induced,
        extra_edge_prob: 0.4,
        wildcard_prob: spec.wildcard_prob,
        drop_edge_labels: false,
    };
    let mut queries = Vec::new();
    for &size in &spec.sizes {
        // oversample candidates (dedup by text form)
        let mut cands: Vec<Graph> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let attempts = spec.per_size * 10;
        for _ in 0..attempts {
            if cands.len() >= spec.per_size * 3 {
                break;
            }
            if let Some(q) = extract_query(data, size, &opts, &mut rng) {
                if seen.insert(to_text(&q)) {
                    cands.push(q);
                }
            }
        }
        // parallel exact labeling
        let labeled: Vec<LabeledQuery> = cands
            .into_par_iter()
            .filter_map(|q| {
                let budget = Budget::new(spec.budget_per_query);
                match spec.semantics.count(data, &q, &budget) {
                    Ok(c) if c >= 1 => Some(LabeledQuery::new(q, c)),
                    _ => None, // zero-count or budget-exceeded: dropped
                }
            })
            .collect();
        queries.extend(labeled.into_iter().take(spec.per_size));
    }
    Workload::from_queries(queries)
}

/// Generate an *unlabeled* pool of queries (for active-learning pools).
pub fn unlabeled_pool(
    data: &Graph,
    sizes: &[usize],
    per_size: usize,
    wildcard_prob: f64,
    seed: u64,
) -> Vec<Graph> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let opts = ExtractOptions {
        induced: false,
        extra_edge_prob: 0.4,
        wildcard_prob,
        drop_edge_labels: false,
    };
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for &size in sizes {
        let mut got = 0;
        for _ in 0..per_size * 10 {
            if got >= per_size {
                break;
            }
            if let Some(q) = extract_query(data, size, &opts, &mut rng) {
                if seen.insert(to_text(&q)) {
                    out.push(q);
                    got += 1;
                }
            }
        }
    }
    out
}

/// §6.6 workload: unlabeled patterns with controlled label frequency.
/// Attaches one of the data graph's *frequent* labels (top 20% of `Σ` by
/// frequency) to `num_frequent` randomly chosen pattern nodes and an
/// *infrequent* label to the rest.
pub fn assign_pattern_labels<R: Rng>(
    pattern: &Graph,
    stats: &LabelStats,
    num_frequent: usize,
    rng: &mut R,
) -> Graph {
    let order = stats.labels_by_frequency();
    assert!(!order.is_empty(), "data graph has no labels");
    let cut = (order.len() / 5).max(1);
    let (freq, infreq) = order.split_at(cut);
    let infreq = if infreq.is_empty() { freq } else { infreq };
    let n = pattern.num_nodes();
    let mut idx: Vec<usize> = (0..n).collect();
    use rand::seq::SliceRandom;
    idx.shuffle(rng);
    let mut labels: Vec<LabelId> = vec![WILDCARD; n];
    for (i, &v) in idx.iter().enumerate() {
        labels[v] = if i < num_frequent.min(n) {
            freq[rng.gen_range(0..freq.len())]
        } else {
            infreq[rng.gen_range(0..infreq.len())]
        };
    }
    let mut b = alss_graph::GraphBuilder::new(n);
    b.set_labels(&labels);
    for e in pattern.edges() {
        b.add_edge(e.u, e.v);
    }
    b.build()
}

/// Extract `count` unlabeled connected patterns of a given size (§6.6).
pub fn unlabeled_patterns(data: &Graph, size: usize, count: usize, seed: u64) -> Vec<Graph> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..count * 20 {
        if out.len() >= count {
            break;
        }
        if let Some(p) = extract_pattern(data, size, false, &mut rng) {
            if seen.insert(to_text(&p)) {
                out.push(p);
            }
        }
    }
    out
}

/// Re-exported node id type for workload consumers.
pub type Node = NodeId;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::by_name;

    #[test]
    fn workload_generation_labels_queries() {
        let g = by_name("yeast", 0.05, 0).unwrap();
        let spec = WorkloadSpec {
            sizes: vec![3, 4],
            per_size: 5,
            budget_per_query: 5_000_000,
            ..Default::default()
        };
        let w = generate_workload(&g, &spec);
        assert!(!w.is_empty());
        for q in &w.queries {
            assert!(q.count >= 1);
            assert!(q.graph.is_connected());
            assert!(q.size() == 3 || q.size() == 4);
        }
    }

    #[test]
    fn isomorphism_workloads_use_iso_counts() {
        let g = by_name("yeast", 0.05, 1).unwrap();
        let mk = |sem| {
            generate_workload(
                &g,
                &WorkloadSpec {
                    sizes: vec![3],
                    per_size: 8,
                    semantics: sem,
                    seed: 3,
                    ..Default::default()
                },
            )
        };
        let hom = mk(Semantics::Homomorphism);
        let iso = mk(Semantics::Isomorphism);
        assert!(!hom.is_empty() && !iso.is_empty());
        // same extraction seed → same query shapes; iso counts ≤ hom counts
        for (h, i) in hom.queries.iter().zip(&iso.queries) {
            if h.graph == i.graph {
                assert!(i.count <= h.count);
            }
        }
    }

    #[test]
    fn pattern_label_assignment_controls_frequency() {
        let g = by_name("wordnet", 0.05, 2).unwrap();
        let stats = LabelStats::new(&g);
        let pats = unlabeled_patterns(&g, 4, 3, 5);
        assert!(!pats.is_empty());
        let mut rng = SmallRng::seed_from_u64(6);
        let order = stats.labels_by_frequency();
        let cut = (order.len() / 5).max(1);
        let frequent: std::collections::HashSet<_> = order[..cut].iter().copied().collect();
        let labeled = assign_pattern_labels(&pats[0], &stats, 2, &mut rng);
        let n_freq = labeled
            .nodes()
            .filter(|&v| frequent.contains(&labeled.label(v)))
            .count();
        assert!(
            n_freq >= 2,
            "expected ≥ 2 frequent-labeled nodes, got {n_freq}"
        );
        // all nodes labeled (no wildcards)
        assert!(labeled.nodes().all(|v| labeled.label(v) != WILDCARD));
    }

    #[test]
    fn pools_are_deduplicated() {
        let g = by_name("yeast", 0.05, 3).unwrap();
        let pool = unlabeled_pool(&g, &[3], 10, 0.0, 7);
        let texts: std::collections::HashSet<_> = pool.iter().map(to_text).collect();
        assert_eq!(texts.len(), pool.len());
    }
}
