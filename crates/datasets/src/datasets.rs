//! Synthetic analogues of the paper's six data graphs (Table 2).
//!
//! The real graphs are not redistributable here, so each analogue is a
//! generated graph matched on the *distributional knobs the paper's
//! analysis depends on*: topology family, sparsity, `|Σ|`, and the label
//! entropy `Ent(Σ)` (§6.2 ties baseline sampling failure to exactly these).
//! Sizes are scaled down 5–50× for laptop-scale exact ground truth; the
//! `scale` parameter (1.0 = our default bench size) lets callers grow them.

use crate::generators::{
    barabasi_albert, erdos_renyi, knowledge_graph, molecule_forest, watts_strogatz,
};
use crate::zipf::assign_labels;
use alss_graph::{Graph, GraphBuilder};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Descriptor of one synthetic dataset (a Table 2 row).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Paper dataset this mimics (e.g. `"aids"`).
    pub name: &'static str,
    /// Topology family description (for documentation output).
    pub family: &'static str,
    /// Node count.
    pub nodes: usize,
    /// Number of node labels `|Σ|`.
    pub labels: usize,
    /// Number of edge labels `|Σ_E|` (0 = node labels only).
    pub edge_labels: usize,
    /// Target label entropy `Ent(Σ)` from Table 2.
    pub entropy: f64,
}

/// The six Table 2 rows at default (scaled-down) sizes.
pub fn all_specs(scale: f64) -> Vec<DatasetSpec> {
    // scale is a shrink factor in (0, 1]; the product stays within usize
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let s = |n: usize| ((n as f64 * scale) as usize).max(64);
    vec![
        DatasetSpec {
            name: "aids",
            family: "molecule forest",
            nodes: s(20_000),
            labels: 51,
            edge_labels: 0,
            entropy: 0.93,
        },
        DatasetSpec {
            name: "yeast",
            family: "small world",
            nodes: s(3_112),
            labels: 71,
            edge_labels: 0,
            entropy: 2.92,
        },
        DatasetSpec {
            name: "youtube",
            family: "preferential attachment",
            nodes: s(25_000),
            labels: 20,
            edge_labels: 0,
            entropy: 2.9, // near-uniform random assignment (Ent 3.21 of 20 labels ≈ ln 20)
        },
        DatasetSpec {
            name: "wordnet",
            family: "sparse lexical",
            nodes: s(15_000),
            labels: 5,
            edge_labels: 0,
            entropy: 0.66,
        },
        DatasetSpec {
            name: "eu2005",
            family: "dense web (PA)",
            nodes: s(12_000),
            labels: 40,
            edge_labels: 0,
            entropy: 3.68,
        },
        DatasetSpec {
            name: "yago",
            family: "knowledge graph",
            nodes: s(30_000),
            labels: 2_000,
            edge_labels: 30,
            entropy: 6.5,
        },
    ]
}

/// Generate the analogue for a spec.
pub fn generate(spec: &DatasetSpec, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = spec.nodes;
    let labeled_edges: Vec<(u32, u32, u32)> = match spec.name {
        "aids" => molecule_forest(n, 8..40, 0.35, &mut rng)
            .into_iter()
            .map(|(u, v)| (u, v, u32::MAX))
            .collect(),
        "yeast" => watts_strogatz(n, 2, 0.3, &mut rng)
            .into_iter()
            .chain(erdos_renyi(n, n * 2, &mut rng))
            .map(|(u, v)| (u, v, u32::MAX))
            .collect(),
        "youtube" => barabasi_albert(n, 3, &mut rng)
            .into_iter()
            .map(|(u, v)| (u, v, u32::MAX))
            .collect(),
        "wordnet" => molecule_forest(n, 30..200, 0.15, &mut rng)
            .into_iter()
            .chain(erdos_renyi(n, n / 2, &mut rng))
            .map(|(u, v)| (u, v, u32::MAX))
            .collect(),
        "eu2005" => barabasi_albert(n, 8, &mut rng)
            .into_iter()
            .chain(erdos_renyi(n, n * 4, &mut rng))
            .map(|(u, v)| (u, v, u32::MAX))
            .collect(),
        "yago" => knowledge_graph(
            n,
            n + n / 4,
            alss_graph::label_id(spec.edge_labels),
            &mut rng,
        ),
        // analyzer: allow(no-panic) - spec names come from the static DATASETS table validated one frame up; reachable only through a bug in this file
        other => panic!("unknown dataset spec '{other}'"),
    };
    let labels = assign_labels(n, spec.labels, spec.entropy, &mut rng);
    let mut b = GraphBuilder::new(n);
    b.set_labels(&labels);
    if spec.name == "yago" {
        // knowledge-graph entities carry multiple types (multi-label nodes)
        use rand::Rng as _;
        for v in 0..alss_graph::node_id(n) {
            if rng.gen_bool(0.2) {
                let extras = rng.gen_range(1..=2);
                for _ in 0..extras {
                    b.add_extra_label(v, rng.gen_range(0..alss_graph::label_id(spec.labels)));
                }
            }
        }
    }
    for (u, v, l) in labeled_edges {
        if l == u32::MAX {
            b.add_edge(u, v);
        } else {
            b.add_labeled_edge(u, v, l);
        }
    }
    b.build()
}

/// Generate one dataset by paper name at the given scale.
pub fn by_name(name: &str, scale: f64, seed: u64) -> Option<Graph> {
    all_specs(scale)
        .into_iter()
        .find(|s| s.name == name)
        .map(|s| generate(&s, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::labels::LabelStats;

    #[test]
    fn all_specs_generate_valid_graphs() {
        for spec in all_specs(0.05) {
            let g = generate(&spec, 1);
            assert!(g.num_nodes() >= 64, "{}", spec.name);
            assert!(g.num_edges() > 0, "{}", spec.name);
            assert!(
                g.num_node_labels() <= spec.labels,
                "{}: labels {} > {}",
                spec.name,
                g.num_node_labels(),
                spec.labels
            );
            if spec.edge_labels > 0 {
                assert!(g.has_edge_labels(), "{}", spec.name);
            }
        }
    }

    #[test]
    fn entropy_close_to_target() {
        for spec in all_specs(0.2) {
            if spec.name == "yago" {
                continue; // label universe larger than node count at small scale
            }
            let g = generate(&spec, 2);
            let ent = LabelStats::new(&g).entropy();
            assert!(
                (ent - spec.entropy).abs() < 0.35,
                "{}: entropy {ent} vs target {}",
                spec.name,
                spec.entropy
            );
        }
    }

    #[test]
    fn aids_like_is_sparse_youtube_like_is_denser() {
        let aids = by_name("aids", 0.05, 3).unwrap();
        let yt = by_name("youtube", 0.05, 3).unwrap();
        let r_aids = aids.num_edges() as f64 / aids.num_nodes() as f64;
        let r_yt = yt.num_edges() as f64 / yt.num_nodes() as f64;
        assert!(r_aids < 1.3, "aids ratio {r_aids}");
        assert!(r_yt > 2.0, "youtube ratio {r_yt}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = by_name("yeast", 0.05, 9).unwrap();
        let b = by_name("yeast", 0.05, 9).unwrap();
        assert_eq!(a, b);
        let c = by_name("yeast", 0.05, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("imdb", 1.0, 0).is_none());
    }
}
