//! Entropy-calibrated Zipf label assignment.
//!
//! Table 2 characterizes each data graph by its label entropy `Ent(Σ)`;
//! the experiments attribute baseline sampling failure to this skew. Our
//! synthetic datasets therefore assign labels from a Zipf distribution
//! whose exponent is *calibrated* so the resulting entropy matches the
//! paper's reported value.

use rand::Rng;

/// Zipf probabilities `p_i ∝ (i+1)^{-s}` over `k` labels.
pub fn zipf_probs(k: usize, s: f64) -> Vec<f64> {
    assert!(k >= 1, "need at least one label");
    let raw: Vec<f64> = (1..=k).map(|i| (i as f64).powf(-s)).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|p| p / total).collect()
}

/// Shannon entropy (natural log) of a distribution.
pub fn entropy_of(probs: &[f64]) -> f64 {
    -probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * p.ln())
        .sum::<f64>()
}

/// Find the Zipf exponent whose distribution over `k` labels has entropy
/// closest to `target` (clamped into the achievable `(≈0, ln k]` range).
/// Entropy decreases monotonically in the exponent, so a bisection works.
pub fn calibrate_exponent(k: usize, target: f64) -> f64 {
    let max_ent = (k as f64).ln();
    if target >= max_ent {
        return 0.0; // uniform
    }
    let (mut lo, mut hi) = (0.0f64, 20.0f64);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        let e = entropy_of(&zipf_probs(k, mid));
        if e > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Assign a label to each of `n` nodes, i.i.d. from the calibrated Zipf
/// distribution (labels permuted so label ids don't encode rank).
pub fn assign_labels<R: Rng>(n: usize, k: usize, entropy: f64, rng: &mut R) -> Vec<u32> {
    let s = calibrate_exponent(k, entropy);
    let probs = zipf_probs(k, s);
    // cumulative for inverse-CDF sampling
    let mut cum = Vec::with_capacity(k);
    let mut acc = 0.0;
    for &p in &probs {
        acc += p;
        cum.push(acc);
    }
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            alss_graph::label_id(cum.partition_point(|&c| c < u).min(k - 1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zero_exponent_is_uniform() {
        let p = zipf_probs(4, 0.0);
        for &pi in &p {
            assert!((pi - 0.25).abs() < 1e-12);
        }
        assert!((entropy_of(&p) - (4.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn entropy_decreases_with_exponent() {
        let e0 = entropy_of(&zipf_probs(10, 0.5));
        let e1 = entropy_of(&zipf_probs(10, 1.5));
        let e2 = entropy_of(&zipf_probs(10, 3.0));
        assert!(e0 > e1 && e1 > e2);
    }

    #[test]
    fn calibration_hits_target() {
        for (k, target) in [(51usize, 0.93f64), (71, 2.92), (20, 2.5), (5, 0.66)] {
            let s = calibrate_exponent(k, target);
            let e = entropy_of(&zipf_probs(k, s));
            assert!(
                (e - target).abs() < 0.01,
                "k={k} target={target} got {e} (s={s})"
            );
        }
    }

    #[test]
    fn assigned_labels_match_entropy_roughly() {
        let mut rng = SmallRng::seed_from_u64(0);
        let labels = assign_labels(20_000, 51, 0.93, &mut rng);
        assert!(labels.iter().all(|&l| l < 51));
        // empirical entropy
        let mut freq = vec![0usize; 51];
        for &l in &labels {
            freq[l as usize] += 1;
        }
        let n = labels.len() as f64;
        let emp: f64 = -freq
            .iter()
            .filter(|&&f| f > 0)
            .map(|&f| {
                let p = f as f64 / n;
                p * p.ln()
            })
            .sum::<f64>();
        assert!((emp - 0.93).abs() < 0.1, "empirical entropy {emp}");
    }

    #[test]
    fn unreachable_target_clamps_to_uniform() {
        let s = calibrate_exponent(4, 10.0);
        assert_eq!(s, 0.0);
    }
}
