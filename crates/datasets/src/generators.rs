//! Random-graph topology generators. Each returns an edge list over
//! `0..n`; label assignment is orthogonal (see [`crate::zipf`]).

use rand::seq::SliceRandom;
use rand::Rng;

/// Erdős–Rényi `G(n, m)`: `m` edges sampled uniformly (duplicates and self
/// loops retried).
pub fn erdos_renyi<R: Rng>(n: usize, m: usize, rng: &mut R) -> Vec<(u32, u32)> {
    assert!(n >= 2, "need at least two nodes");
    let mut seen = std::collections::HashSet::with_capacity(m);
    let mut edges = Vec::with_capacity(m);
    let max_edges = n * (n - 1) / 2;
    let m = m.min(max_edges);
    while edges.len() < m {
        let u = rng.gen_range(0..alss_graph::node_id(n));
        let v = rng.gen_range(0..alss_graph::node_id(n));
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            edges.push(key);
        }
    }
    edges
}

/// Barabási–Albert preferential attachment: each new node attaches to
/// `m_per_node` existing nodes chosen proportionally to degree. Produces
/// the heavy-tailed degree distributions of social/web graphs.
pub fn barabasi_albert<R: Rng>(n: usize, m_per_node: usize, rng: &mut R) -> Vec<(u32, u32)> {
    assert!(n > m_per_node && m_per_node >= 1, "invalid BA parameters");
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * m_per_node);
    // target list: node ids repeated once per degree (classic implementation)
    let mut targets: Vec<u32> = (0..=alss_graph::node_id(m_per_node)).collect();
    // seed clique-ish: connect initial m+1 nodes in a path
    for i in 0..alss_graph::node_id(m_per_node) {
        edges.push((i, i + 1));
    }
    let mut degree_pool: Vec<u32> = edges.iter().flat_map(|&(u, v)| [u, v]).collect();
    for v in (alss_graph::node_id(m_per_node) + 1)..alss_graph::node_id(n) {
        targets.clear();
        let mut tries = 0;
        while targets.len() < m_per_node && tries < 50 * m_per_node {
            tries += 1;
            let t = degree_pool[rng.gen_range(0..degree_pool.len())];
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            edges.push((t, v));
            degree_pool.push(t);
            degree_pool.push(v);
        }
    }
    edges
}

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbors per
/// side, each edge rewired with probability `beta`.
pub fn watts_strogatz<R: Rng>(n: usize, k: usize, beta: f64, rng: &mut R) -> Vec<(u32, u32)> {
    assert!(n > 2 * k && k >= 1, "invalid WS parameters");
    let mut seen = std::collections::HashSet::new();
    let mut edges = Vec::new();
    for v in 0..alss_graph::node_id(n) {
        for j in 1..=alss_graph::node_id(k) {
            let mut u = (v + j) % alss_graph::node_id(n);
            if rng.gen_bool(beta.clamp(0.0, 1.0)) {
                // rewire to a random non-neighbor
                for _ in 0..20 {
                    let cand = rng.gen_range(0..alss_graph::node_id(n));
                    let key = if v < cand { (v, cand) } else { (cand, v) };
                    if cand != v && !seen.contains(&key) {
                        u = cand;
                        break;
                    }
                }
            }
            let key = if v < u { (v, u) } else { (u, v) };
            if v != u && seen.insert(key) {
                edges.push(key);
            }
        }
    }
    edges
}

/// Molecule-like forest: many small random-tree components with a few
/// extra intra-component edges (rings), mimicking the aids chemical graph
/// (|E| ≈ 1.08 |V|, thousands of components).
pub fn molecule_forest<R: Rng>(
    n: usize,
    component_size: std::ops::Range<usize>,
    ring_prob: f64,
    rng: &mut R,
) -> Vec<(u32, u32)> {
    assert!(component_size.start >= 2, "components need ≥ 2 nodes");
    let mut edges = Vec::with_capacity(n + n / 10);
    let mut next = 0u32;
    while (next as usize) < n {
        let want = rng.gen_range(component_size.clone());
        let size = want.min(n - next as usize).max(1);
        let base = next;
        // random tree: attach node i to a random earlier node (chemistry-like
        // low branching: bias toward recent nodes)
        for i in 1..alss_graph::node_id(size) {
            let lo = i.saturating_sub(4);
            let p = rng.gen_range(lo..i);
            edges.push((base + p, base + i));
        }
        // occasional ring closure
        if size >= 4 && rng.gen_bool(ring_prob.clamp(0.0, 1.0)) {
            let a = rng.gen_range(0..alss_graph::node_id(size) / 2);
            let b = rng.gen_range(alss_graph::node_id(size) / 2..alss_graph::node_id(size));
            edges.push((base + a, base + b));
        }
        next += alss_graph::node_id(size);
    }
    edges
}

/// Knowledge-graph-like: a few heavy hub entities plus a long tail,
/// implemented as preferential attachment with extra random edges and a
/// per-edge label from `0..edge_labels`.
pub fn knowledge_graph<R: Rng>(
    n: usize,
    m: usize,
    edge_labels: u32,
    rng: &mut R,
) -> Vec<(u32, u32, u32)> {
    let base = barabasi_albert(n, 1, rng);
    let mut edges: Vec<(u32, u32, u32)> = base
        .into_iter()
        .map(|(u, v)| (u, v, rng.gen_range(0..edge_labels.max(1))))
        .collect();
    let mut seen: std::collections::HashSet<(u32, u32)> =
        edges.iter().map(|&(u, v, _)| (u, v)).collect();
    while edges.len() < m {
        let u = rng.gen_range(0..alss_graph::node_id(n));
        let v = rng.gen_range(0..alss_graph::node_id(n));
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            edges.push((key.0, key.1, rng.gen_range(0..edge_labels.max(1))));
        }
    }
    edges.shuffle(rng);
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn degree_dist(n: usize, edges: &[(u32, u32)]) -> Vec<usize> {
        let mut d = vec![0usize; n];
        for &(u, v) in edges {
            d[u as usize] += 1;
            d[v as usize] += 1;
        }
        d
    }

    #[test]
    fn er_edge_count_and_simplicity() {
        let mut rng = SmallRng::seed_from_u64(0);
        let e = erdos_renyi(100, 300, &mut rng);
        assert_eq!(e.len(), 300);
        let set: std::collections::HashSet<_> = e.iter().collect();
        assert_eq!(set.len(), 300);
        assert!(e.iter().all(|&(u, v)| u < v && (v as usize) < 100));
    }

    #[test]
    fn ba_is_heavy_tailed() {
        let mut rng = SmallRng::seed_from_u64(1);
        let e = barabasi_albert(2000, 2, &mut rng);
        let d = degree_dist(2000, &e);
        let max = *d.iter().max().unwrap();
        let mean = d.iter().sum::<usize>() as f64 / 2000.0;
        assert!(
            max as f64 > 8.0 * mean,
            "hub degree {max} should dominate mean {mean}"
        );
    }

    #[test]
    fn ws_degree_is_regularish() {
        let mut rng = SmallRng::seed_from_u64(2);
        let e = watts_strogatz(500, 3, 0.1, &mut rng);
        let d = degree_dist(500, &e);
        let mean = d.iter().sum::<usize>() as f64 / 500.0;
        assert!((mean - 6.0).abs() < 1.0, "mean degree {mean}");
    }

    #[test]
    fn forest_is_sparse_with_many_components() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 5000;
        let e = molecule_forest(n, 10..40, 0.3, &mut rng);
        let ratio = e.len() as f64 / n as f64;
        assert!((0.9..1.2).contains(&ratio), "|E|/|V| = {ratio}");
    }

    #[test]
    fn kg_has_edge_labels_in_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        let e = knowledge_graph(1000, 2500, 20, &mut rng);
        assert_eq!(e.len(), 2500);
        assert!(e.iter().all(|&(_, _, l)| l < 20));
    }
}
