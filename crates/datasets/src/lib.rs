//! # alss-datasets
//!
//! Synthetic stand-ins for the paper's evaluation data (§6.1): generators
//! for the six Table 2 data graphs (the originals are not redistributable)
//! and the Table 3 query workloads with exact ground-truth labeling.
//!
//! * [`zipf`] — Zipf label assignment calibrated to a target label entropy
//!   `Ent(Σ)` (the skew knob §6.2's sampling-failure analysis hinges on);
//! * [`generators`] — topology families (Erdős–Rényi, Barabási–Albert,
//!   Watts–Strogatz, molecule forests, knowledge graphs);
//! * [`datasets`] — the six analogues (`aids`, `yeast`, `youtube`,
//!   `wordnet`, `eu2005`, `yago`) with per-dataset family/entropy choices;
//! * [`queries`] — random connected-subgraph workload generation with
//!   rayon-parallel exact labeling and budget filtering, plus the §6.6
//!   frequent/infrequent pattern labeling.
//!
//! ```
//! use alss_datasets::{by_name, generate_workload, WorkloadSpec};
//!
//! let data = by_name("yeast", 0.05, 0).unwrap();
//! let workload = generate_workload(&data, &WorkloadSpec {
//!     sizes: vec![3],
//!     per_size: 5,
//!     budget_per_query: 1_000_000,
//!     ..Default::default()
//! });
//! assert!(!workload.is_empty());
//! assert!(workload.queries.iter().all(|q| q.count >= 1));
//! ```

// Test modules opt back out of the library panic/numeric policy: a panic
// IS the failure report there, and fixtures are tiny.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub mod datasets;
pub mod generators;
pub mod queries;
pub mod zipf;

pub use datasets::{all_specs, by_name, generate, DatasetSpec};
pub use queries::{
    assign_pattern_labels, generate_workload, unlabeled_patterns, unlabeled_pool, WorkloadSpec,
};
