//! Property tests over the synthetic-dataset generators and workload
//! machinery.

// Test code opts back out of the library panic/numeric policy: a panic IS
// the failure report here, and fixtures are tiny.
#![allow(
    clippy::unwrap_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use alss_datasets::queries::{generate_workload, unlabeled_pool, WorkloadSpec};
use alss_datasets::zipf::{calibrate_exponent, entropy_of, zipf_probs};
use alss_datasets::{all_specs, by_name};
use alss_matching::{count_homomorphisms, Budget, Semantics};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn zipf_probs_are_a_distribution(k in 1usize..200, s in 0.0f64..5.0) {
        let p = zipf_probs(k, s);
        prop_assert_eq!(p.len(), k);
        let total: f64 = p.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| x >= 0.0));
        // monotone non-increasing
        prop_assert!(p.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn calibration_is_accurate_within_range(k in 3usize..100, frac in 0.1f64..0.95) {
        let target = frac * (k as f64).ln();
        let s = calibrate_exponent(k, target);
        let achieved = entropy_of(&zipf_probs(k, s));
        prop_assert!((achieved - target).abs() < 0.02, "target {} got {}", target, achieved);
    }

    #[test]
    fn generated_workload_counts_are_correct(seed in 0u64..20) {
        let data = by_name("yeast", 0.05, seed).unwrap();
        let w = generate_workload(
            &data,
            &WorkloadSpec {
                sizes: vec![3],
                per_size: 4,
                semantics: Semantics::Homomorphism,
                budget_per_query: 2_000_000,
                wildcard_prob: 0.0,
                induced: false,
                seed,
            },
        );
        for q in &w.queries {
            let truth = count_homomorphisms(&data, &q.graph, &Budget::unlimited()).unwrap();
            prop_assert_eq!(q.count, truth, "stored count mismatches recount");
        }
    }

    #[test]
    fn pools_contain_connected_subgraphs_of_requested_sizes(seed in 0u64..20) {
        let data = by_name("aids", 0.02, seed).unwrap();
        for q in unlabeled_pool(&data, &[3, 4], 5, 0.2, seed) {
            prop_assert!(q.is_connected());
            prop_assert!(q.num_nodes() == 3 || q.num_nodes() == 4);
        }
    }
}

#[test]
fn all_dataset_specs_scale_monotonically() {
    let small = all_specs(0.05);
    let large = all_specs(0.2);
    for (s, l) in small.iter().zip(&large) {
        assert_eq!(s.name, l.name);
        assert!(s.nodes <= l.nodes, "{}: {} > {}", s.name, s.nodes, l.nodes);
    }
}

#[test]
fn every_dataset_generates_connected_enough_graphs() {
    // not necessarily fully connected, but the largest component should be
    // substantial for every family except the molecule forest
    for spec in all_specs(0.05) {
        let g = alss_datasets::generate(&spec, 9);
        let mut seen = vec![false; g.num_nodes()];
        let mut best = 0usize;
        for start in g.nodes() {
            if seen[start as usize] {
                continue;
            }
            let mut stack = vec![start];
            seen[start as usize] = true;
            let mut size = 0;
            while let Some(v) = stack.pop() {
                size += 1;
                for &u in g.neighbors(v) {
                    if !seen[u as usize] {
                        seen[u as usize] = true;
                        stack.push(u);
                    }
                }
            }
            best = best.max(size);
        }
        let frac = best as f64 / g.num_nodes() as f64;
        let floor = if spec.name == "aids" { 0.005 } else { 0.5 };
        assert!(
            frac >= floor,
            "{}: largest component only {:.1}%",
            spec.name,
            frac * 100.0
        );
    }
}
