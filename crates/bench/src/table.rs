//! Minimal aligned-text table rendering for the figure/table binaries.

/// Accumulates rows and prints a left-aligned text table.
#[derive(Default)]
pub struct TableWriter {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// Start a table with a header row.
    pub fn new(header: &[&str]) -> Self {
        TableWriter {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                line.push_str(&format!("{:<w$}", cells[i], w = widths[i] + 2));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(
                widths
                    .iter()
                    .map(|w| w + 2)
                    .sum::<usize>()
                    .saturating_sub(2),
            ),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float compactly (scientific for large magnitudes).
pub fn fnum(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    let a = x.abs();
    if a != 0.0 && !(1e-3..1e6).contains(&a) {
        format!("{x:.2e}")
    } else if a >= 100.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TableWriter::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TableWriter::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456), "1.23");
        assert_eq!(fnum(12345678.0), "1.23e7");
        assert_eq!(fnum(250.0), "250");
    }
}
