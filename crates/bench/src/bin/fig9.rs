//! Fig. 9: average elapsed time (ms) of *isomorphism* counting on youtube
//! and eu2005 — LSS vs WJ-iso/IMPR-iso vs the exact engine (GQL).
//!
//! Run: `cargo run -p alss-bench --bin fig9 --release [datasets...]`

use alss_bench::evalkit::{
    encodings_for, run_exact, run_isomorphism_baselines, train_and_eval_lss, MethodResult,
};
use alss_bench::scenario::{load_scenario, selected_datasets};
use alss_bench::table::fnum;
use alss_bench::TableWriter;
use alss_matching::Semantics;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let _telemetry = alss_bench::init_telemetry("fig9");
    for name in selected_datasets(&["youtube", "eu2005"]) {
        let sc = load_scenario(&name, Semantics::Isomorphism);
        if sc.workload.len() < 10 {
            alss_telemetry::progress("fig9", &format!("{name}: workload too small, skipped"));
            continue;
        }
        let mut rng = SmallRng::seed_from_u64(9);
        let (train, test) = sc.workload.stratified_split(0.8, &mut rng);
        println!("\n== Fig 9 [{name}]: elapsed time (ms) per query, isomorphism ==\n");
        let mut methods: Vec<MethodResult> = Vec::new();
        for enc in encodings_for(&name) {
            methods.push(train_and_eval_lss(&sc, &train, &test, enc, 0x919).result);
        }
        methods.extend(run_isomorphism_baselines(&sc, &test));
        methods.push(run_exact(&sc, &test, 200_000_000));

        let sizes = test.sizes();
        let mut header: Vec<&str> = vec!["method"];
        let size_labels: Vec<String> = sizes.iter().map(|s| format!("{s}-node")).collect();
        header.extend(size_labels.iter().map(|s| s.as_str()));
        let mut t = TableWriter::new(&header);
        for m in &methods {
            let mut row = vec![m.method.clone()];
            for &s in &sizes {
                let ms = m.mean_ms(s);
                row.push(if ms.is_nan() {
                    "-".to_string()
                } else {
                    fnum(ms)
                });
            }
            t.row(row);
        }
        t.print();
    }
    println!("\nexpected shape (paper): LSS 1-2 orders faster than WJ-iso; IMPR-iso can be");
    println!("slower than the exact engine on large graphs; GQL benefits from strong filtering.");
}
