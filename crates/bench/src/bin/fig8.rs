//! Fig. 8: average elapsed time (ms) of homomorphism counting per query
//! size — LSS prediction vs baseline estimation vs the exact engine
//! (GFlow).
//!
//! Run: `cargo run -p alss-bench --bin fig8 --release [datasets...]`

use alss_bench::evalkit::{
    encodings_for, run_exact, run_homomorphism_baselines, train_and_eval_lss, MethodResult,
};
use alss_bench::scenario::{load_scenario, selected_datasets};
use alss_bench::table::fnum;
use alss_bench::TableWriter;
use alss_matching::Semantics;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let _telemetry = alss_bench::init_telemetry("fig8");
    for name in selected_datasets(&["aids", "yeast", "wordnet", "eu2005", "yago"]) {
        let sc = load_scenario(&name, Semantics::Homomorphism);
        if sc.workload.len() < 10 {
            alss_telemetry::progress("fig8", &format!("{name}: workload too small, skipped"));
            continue;
        }
        let mut rng = SmallRng::seed_from_u64(8);
        let (train, test) = sc.workload.stratified_split(0.8, &mut rng);
        println!("\n== Fig 8 [{name}]: elapsed time (ms) per query, homomorphism ==\n");
        let mut methods: Vec<MethodResult> = Vec::new();
        for enc in encodings_for(&name) {
            methods.push(train_and_eval_lss(&sc, &train, &test, enc, 0x818).result);
        }
        methods.extend(run_homomorphism_baselines(&sc, &test));
        methods.push(run_exact(&sc, &test, 200_000_000));

        let sizes = test.sizes();
        let mut header: Vec<&str> = vec!["method"];
        let size_labels: Vec<String> = sizes.iter().map(|s| format!("{s}-node")).collect();
        header.extend(size_labels.iter().map(|s| s.as_str()));
        let mut t = TableWriter::new(&header);
        for m in &methods {
            let mut row = vec![m.method.clone()];
            for &s in &sizes {
                let ms = m.mean_ms(s);
                row.push(if ms.is_nan() {
                    "-".to_string()
                } else {
                    fnum(ms)
                });
            }
            t.row(row);
        }
        t.print();
    }
    println!("\nexpected shape (paper): LSS grows linearly in query size and beats all baselines");
    println!("except index-only CSET on large graphs; exact GFlow dominates the cost; on tiny");
    println!("graphs (yeast) sampling is cheap enough to compete.");
}
