//! Fig. 5: percentage of queries suffering *sampling failure* for the
//! sampling-based baselines (CS, WJ, JSUB), per dataset and query size.
//!
//! Run: `cargo run -p alss-bench --bin fig5 --release [datasets...]`

use alss_bench::evalkit::run_homomorphism_baselines;
use alss_bench::scenario::{load_scenario, selected_datasets};
use alss_bench::TableWriter;
use alss_matching::Semantics;

fn main() {
    let _telemetry = alss_bench::init_telemetry("fig5");
    println!("== Fig 5: % sampling failure of CS / WJ / JSUB ==");
    for name in selected_datasets(&["aids", "wordnet", "yeast", "eu2005"]) {
        let sc = load_scenario(&name, Semantics::Homomorphism);
        if sc.workload.is_empty() {
            alss_telemetry::progress("fig5", &format!("{name}: workload empty, skipped"));
            continue;
        }
        let methods = run_homomorphism_baselines(&sc, &sc.workload);
        println!("\n[{name}]");
        let mut t = TableWriter::new(&["size", "CS", "WJ", "JSUB"]);
        for size in sc.workload.sizes() {
            let pct = |m: &str| -> String {
                methods
                    .iter()
                    .find(|r| r.method == m)
                    .map(|r| format!("{:.0}%", 100.0 * r.failure_rate(size)))
                    .unwrap_or_else(|| "-".to_string())
            };
            t.row(vec![size.to_string(), pct("CS"), pct("WJ"), pct("JSUB")]);
        }
        t.print();
    }
    println!("\nexpected shape (paper): aids nearly failure-free; yeast/eu2005 fail for all");
    println!("queries at >= 8 nodes; wordnet moderate at 4 nodes, degrading with size.");
}
