//! Table 3: query-set statistics — #queries, sizes, range of `c(q)`, and
//! label coverage `Cov(Σ)`.
//!
//! Run: `cargo run -p alss-bench --bin table3 --release`

use alss_bench::scenario::load_scenario;
use alss_bench::TableWriter;
use alss_graph::labels::label_coverage;
use alss_matching::Semantics;

fn main() {
    let _telemetry = alss_bench::init_telemetry("table3");
    println!("== Table 3: Query Sets ==\n");
    let mut t = TableWriter::new(&[
        "Type",
        "Dataset",
        "#Queries",
        "Query Sizes",
        "Range of c(q)",
        "Cov(Sigma)",
    ]);
    let rows: Vec<(&str, Semantics)> = vec![
        ("aids", Semantics::Homomorphism),
        ("yeast", Semantics::Homomorphism),
        ("wordnet", Semantics::Homomorphism),
        ("eu2005", Semantics::Homomorphism),
        ("yago", Semantics::Homomorphism),
        ("youtube", Semantics::Isomorphism),
        ("eu2005", Semantics::Isomorphism),
    ];
    for (name, sem) in rows {
        let sc = load_scenario(name, sem);
        let graphs: Vec<_> = sc
            .workload
            .queries
            .iter()
            .map(|q| q.graph.clone())
            .collect();
        let (lo, hi) = sc.workload.count_range().unwrap_or((0, 0));
        t.row(vec![
            match sem {
                Semantics::Homomorphism => "Homo.".to_string(),
                Semantics::Isomorphism => "Iso.".to_string(),
            },
            name.to_string(),
            sc.workload.len().to_string(),
            format!("{:?}", sc.workload.sizes()),
            format!(
                "[1e{:.1}, 1e{:.1}]",
                (lo.max(1) as f64).log10(),
                (hi.max(1) as f64).log10()
            ),
            format!("{:.2}", label_coverage(&graphs)),
        ]);
    }
    t.print();
    println!(
        "\n(queries kept only if exact count fits the expansion budget — the paper's 2h filter)"
    );
}
