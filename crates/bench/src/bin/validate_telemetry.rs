//! CI validator for a `--telemetry` JSON-lines capture.
//!
//! Run: `cargo run -p alss-bench --bin validate_telemetry -- out.jsonl`
//!
//! Checks that every line parses as a JSON object with a known `type` tag,
//! that spans for the instrumented subsystems (query decomposition, model
//! forward pass, matching engine) were recorded, and that the capture ends
//! with a metrics snapshot carrying non-zero counters. Exits non-zero (by
//! panicking) on any violation, printing the offending line.

use serde_json::Value;

fn main() {
    let _telemetry = alss_bench::init_telemetry("validate_telemetry");
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "telemetry.jsonl".to_string());
    // analyzer: allow(no-expect) - CI validator: a missing capture file is the failure being detected
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));

    let mut spans: Vec<String> = Vec::new();
    let mut last: Option<Value> = None;
    let mut n_lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("line {}: invalid JSON ({e}): {line}", i + 1));
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("line {}: missing \"type\" tag: {line}", i + 1));
        match ty {
            "span" => {
                let path = v
                    .get("path")
                    .and_then(Value::as_str)
                    .unwrap_or_else(|| panic!("line {}: span without path: {line}", i + 1));
                assert!(
                    v.get("us")
                        .and_then(Value::as_f64)
                        .is_some_and(|us| us >= 0.0),
                    "line {}: span without non-negative \"us\": {line}",
                    i + 1
                );
                spans.push(path.to_string());
            }
            "event" | "progress" | "snapshot" => {}
            other => panic!("line {}: unknown type {other:?}: {line}", i + 1),
        }
        n_lines += 1;
        last = Some(v);
    }
    assert!(n_lines > 0, "{path}: empty capture");

    for required in ["decompose", "model.forward", "matching."] {
        assert!(
            spans.iter().any(|p| p.contains(required)),
            "{path}: no span matching {required:?} among {} spans",
            spans.len()
        );
    }

    let last = last.unwrap_or_else(|| unreachable!("n_lines > 0"));
    assert_eq!(
        last.get("type").and_then(Value::as_str),
        Some("snapshot"),
        "{path}: capture must end with a metrics snapshot"
    );
    let counters = last
        .get("counters")
        .and_then(Value::as_object)
        .unwrap_or_else(|| panic!("{path}: snapshot without counters object"));
    let nonzero = counters
        .iter()
        .filter(|(_, v)| v.as_u64().unwrap_or(0) > 0)
        .count();
    assert!(
        nonzero > 0,
        "{path}: snapshot has no non-zero counters ({} total)",
        counters.len()
    );

    println!(
        "{path}: OK — {n_lines} lines, {} spans, {nonzero} non-zero counters",
        spans.len()
    );
}
