//! CI validator for a `--telemetry` JSON-lines capture.
//!
//! Run: `cargo run -p alss-bench --bin validate_telemetry -- out.jsonl \
//!       [--require-events ev1,ev2] [--require-spans s1,s2]`
//!
//! Checks that every line parses as a JSON object with a known `type` tag,
//! that each `--require-spans` substring (default: the decompose / model
//! forward / matching subsystems) matches some recorded span, that every
//! event named in `--require-events` appears at least once, and that the
//! capture ends with a metrics snapshot carrying non-zero counters.
//!
//! `--require-events` / `--require-spans` given with an empty or malformed
//! list is a hard error — a gate that silently requires nothing is worse
//! than a failing one. Exits non-zero on any violation, printing the
//! offending line. The rules live in [`alss_bench::validate`].

use alss_bench::validate::{parse_args, validate_capture};
use std::process::ExitCode;

fn run() -> Result<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let spec = parse_args(&args)?;
    let text = std::fs::read_to_string(&spec.path)
        .map_err(|e| format!("cannot read {}: {e}", spec.path))?;
    let sum = validate_capture(&text, &spec).map_err(|e| format!("{}: {e}", spec.path))?;
    Ok(format!(
        "{}: OK — {} lines, {} spans, {} events, {} non-zero counters",
        spec.path, sum.lines, sum.spans, sum.events, sum.nonzero_counters
    ))
}

fn main() -> ExitCode {
    let _telemetry = alss_bench::init_telemetry("validate_telemetry");
    match run() {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("validate_telemetry: {e}");
            ExitCode::FAILURE
        }
    }
}
