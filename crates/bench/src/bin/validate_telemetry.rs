//! CI validator for a `--telemetry` JSON-lines capture.
//!
//! Run: `cargo run -p alss-bench --bin validate_telemetry -- out.jsonl \
//!       [--require-events ev1,ev2]`
//!
//! Checks that every line parses as a JSON object with a known `type` tag,
//! that spans for the instrumented subsystems (query decomposition, model
//! forward pass, matching engine) were recorded, that every event named in
//! `--require-events` appears at least once, and that the capture ends
//! with a metrics snapshot carrying non-zero counters. Exits non-zero (by
//! panicking) on any violation, printing the offending line.

use serde_json::Value;

/// `--require-events a,b` / `--require-events=a,b` → `["a", "b"]`.
fn required_events(args: &[String]) -> Vec<String> {
    let mut it = args.iter();
    let mut list = None;
    while let Some(a) = it.next() {
        if a == "--require-events" {
            list = it.next().cloned();
        } else if let Some(v) = a.strip_prefix("--require-events=") {
            list = Some(v.to_string());
        }
    }
    list.map(|l| {
        l.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect()
    })
    .unwrap_or_default()
}

fn main() {
    let _telemetry = alss_bench::init_telemetry("validate_telemetry");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let required = required_events(&args);
    // First positional argument = capture path (skip flags and their values).
    let mut path = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--require-events" {
            it.next();
        } else if !a.starts_with("--") {
            path = Some(a.clone());
            break;
        }
    }
    let path = path.unwrap_or_else(|| "telemetry.jsonl".to_string());
    // analyzer: allow(no-expect) - CI validator: a missing capture file is the failure being detected
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));

    let mut spans: Vec<String> = Vec::new();
    let mut events: Vec<String> = Vec::new();
    let mut last: Option<Value> = None;
    let mut n_lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("line {}: invalid JSON ({e}): {line}", i + 1));
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("line {}: missing \"type\" tag: {line}", i + 1));
        match ty {
            "span" => {
                let path = v
                    .get("path")
                    .and_then(Value::as_str)
                    .unwrap_or_else(|| panic!("line {}: span without path: {line}", i + 1));
                assert!(
                    v.get("us")
                        .and_then(Value::as_f64)
                        .is_some_and(|us| us >= 0.0),
                    "line {}: span without non-negative \"us\": {line}",
                    i + 1
                );
                spans.push(path.to_string());
            }
            "event" => {
                if let Some(name) = v.get("name").and_then(Value::as_str) {
                    events.push(name.to_string());
                }
            }
            "progress" | "snapshot" => {}
            other => panic!("line {}: unknown type {other:?}: {line}", i + 1),
        }
        n_lines += 1;
        last = Some(v);
    }
    assert!(n_lines > 0, "{path}: empty capture");

    for required in ["decompose", "model.forward", "matching."] {
        assert!(
            spans.iter().any(|p| p.contains(required)),
            "{path}: no span matching {required:?} among {} spans",
            spans.len()
        );
    }

    for ev in &required {
        assert!(
            events.iter().any(|e| e == ev),
            "{path}: required event {ev:?} never emitted ({} events captured)",
            events.len()
        );
    }

    let last = last.unwrap_or_else(|| unreachable!("n_lines > 0"));
    assert_eq!(
        last.get("type").and_then(Value::as_str),
        Some("snapshot"),
        "{path}: capture must end with a metrics snapshot"
    );
    let counters = last
        .get("counters")
        .and_then(Value::as_object)
        .unwrap_or_else(|| panic!("{path}: snapshot without counters object"));
    let nonzero = counters
        .iter()
        .filter(|(_, v)| v.as_u64().unwrap_or(0) > 0)
        .count();
    assert!(
        nonzero > 0,
        "{path}: snapshot has no non-zero counters ({} total)",
        counters.len()
    );

    println!(
        "{path}: OK — {n_lines} lines, {} spans, {} events, {nonzero} non-zero counters",
        spans.len(),
        events.len()
    );
}
