//! Ablation: multi-task coefficient λ of Eq. (6) (paper: λ = 1/3). λ = 0
//! disables the magnitude classifier (and with it the AL uncertainty
//! signal); λ → 1 starves the regression head.
//!
//! Run: `cargo run -p alss-bench --bin ablation_lambda --release`

use alss_bench::evalkit::train_eval_config;
use alss_bench::scenario::{bench_model_config, bench_train_config, load_scenario};
use alss_bench::TableWriter;
use alss_core::{EncodingKind, SketchConfig};
use alss_matching::Semantics;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let _telemetry = alss_bench::init_telemetry("ablation_lambda");
    let sc = load_scenario("aids", Semantics::Homomorphism);
    let mut rng = SmallRng::seed_from_u64(0xAB2);
    let (train, test) = sc.workload.stratified_split(0.8, &mut rng);
    println!(
        "== Ablation: Eq. (6) λ sweep (aids, {} test queries) ==\n",
        test.len()
    );
    let mut t = TableWriter::new(&["lambda", "q-error distribution"]);
    for lambda in [0.0f32, 1.0 / 6.0, 1.0 / 3.0, 2.0 / 3.0, 0.9] {
        let mut model = bench_model_config();
        model.lambda = lambda;
        let cfg = SketchConfig {
            encoding: EncodingKind::Embedding,
            hops: 3,
            model,
            train: bench_train_config(),
            prone_dim: 32,
            seed: 0xAB2,
        };
        let (stats, _) = train_eval_config(&sc, &train, &test, &cfg);
        t.row(vec![format!("{lambda:.2}"), stats.render()]);
    }
    t.print();
    println!("\nexpected: accuracy is flat for moderate λ (the paper reports insensitivity);");
    println!("large λ degrades regression. λ = 0 trains no classifier → no AL signal.");
}
