//! Fig. 12: query optimization with LSS (§6.6) — GHD plan selection
//! costed by the AGM bound vs by the learned sketch, compared on the true
//! plan cost `max_i |R_{τ_i}|`.
//!
//! Run: `cargo run -p alss-bench --bin fig12 --release [datasets...]`

use alss_bench::scenario::{
    bench_model_config, bench_train_config, load_scenario, per_size, selected_datasets,
};
use alss_bench::table::fnum;
use alss_bench::TableWriter;
use alss_core::encode::EncodingKind;
use alss_core::workload::{LabeledQuery, Workload};
use alss_core::{LearnedSketch, SketchConfig};
use alss_datasets::queries::{assign_pattern_labels, unlabeled_patterns};
use alss_ghd::enumerate_ghds;
use alss_ghd::plan::{agm_cost, choose_plan, true_cost, RelationIndex};
use alss_graph::io::to_text;
use alss_graph::labels::LabelStats;
use alss_matching::{count_homomorphisms, Budget, Semantics};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let _telemetry = alss_bench::init_telemetry("fig12");
    for name in selected_datasets(&["yeast", "wordnet", "eu2005"]) {
        let sc = load_scenario(&name, Semantics::Homomorphism);
        let stats = LabelStats::new(&sc.data);
        let mut rng = SmallRng::seed_from_u64(12);

        // training workload: 3- and 4-node patterns with random labels
        // (the paper: 202 3-node + 608 4-node)
        // Few distinct unlabeled 3/4-node *shapes* exist; the paper's 202+608
        // training queries are distinct *labelings*. Draw random labelings
        // of a small shape pool, dedup at the labeled level.
        let mut train_queries = Vec::new();
        let mut seen_train = std::collections::HashSet::new();
        // sample training labels from the empirical label distribution —
        // uniform labels at compressed scale are almost always zero-count,
        // leaving the cost model nothing to learn from
        let node_count = sc.data.num_nodes();
        let random_label = |rng: &mut SmallRng| {
            sc.data
                .label(alss_graph::node_id(rng.gen_range(0..node_count)))
        };
        for (size, want) in [(3usize, per_size() * 2), (4, per_size() * 4)] {
            let shapes = unlabeled_patterns(&sc.data, size, 20, 0x126 + size as u64);
            if shapes.is_empty() {
                continue;
            }
            let mut labeled = 0usize;
            let mut attempts = 0usize;
            while labeled < want && attempts < want * 10 {
                attempts += 1;
                let p = &shapes[rng.gen_range(0..shapes.len())];
                let mut b = alss_graph::GraphBuilder::new(p.num_nodes());
                for v in p.nodes() {
                    let l = random_label(&mut rng);
                    b.set_label(v, l);
                }
                for e in p.edges() {
                    b.add_edge(e.u, e.v);
                }
                let q = b.build();
                if !seen_train.insert(to_text(&q)) {
                    continue;
                }
                if let Ok(c) = count_homomorphisms(&sc.data, &q, &Budget::new(100_000_000)) {
                    train_queries.push(LabeledQuery::new(q, c.max(1)));
                    labeled += 1;
                }
            }
        }
        let train = Workload::from_queries(train_queries);
        if train.len() < 20 {
            alss_telemetry::progress(
                "fig12",
                &format!("{name}: too few labeled training patterns, skipped"),
            );
            continue;
        }
        let cfg = SketchConfig {
            // embedding features fit the random-label cost-model workload
            // far better than frequency features (see DESIGN.md centering
            // note + the Fig 4 encoder comparison)
            encoding: EncodingKind::Embedding,
            hops: 3,
            model: bench_model_config(),
            train: bench_train_config(),
            prone_dim: 32,
            seed: 0x12,
        };
        let (sketch, _) = LearnedSketch::train(&sc.data, &train, &cfg);
        let rel_index = RelationIndex::new(&sc.data);

        // test patterns: 4- and 5-node unlabeled, labels varied by
        // #frequent-labeled nodes
        let mut tested = 0usize;
        let mut lss_wins = 0usize;
        let mut agm_wins = 0usize;
        let mut ties = 0usize;
        let mut log_ratio_sum = 0.0f64; // log10(agm_true / lss_true)
        let mut best_improvement = 0.0f64;
        let mut seen = std::collections::HashSet::new();
        let mut t = TableWriter::new(&[
            "size",
            "freq",
            "true cost (AGM plan)",
            "true cost (LSS plan)",
        ]);

        for size in [4usize, 5] {
            let pats = unlabeled_patterns(&sc.data, size, 6, 0x512 + size as u64);
            for p in pats {
                for freq in 0..=size {
                    let q = assign_pattern_labels(&p, &stats, freq, &mut rng);
                    if !seen.insert(to_text(&q)) {
                        continue;
                    }
                    let decomps = enumerate_ghds(&q, 3);
                    if decomps.len() < 2 {
                        continue;
                    }
                    let agm_pick = choose_plan(&q, &decomps, |bq| agm_cost(&rel_index, bq));
                    let lss_pick = choose_plan(&q, &decomps, |bq| sketch.estimate(bq));
                    let budget = Budget::new(50_000_000);
                    let (Some(ca), Some(cl)) = (
                        true_cost(&sc.data, &q, &decomps[agm_pick.index], &budget),
                        true_cost(&sc.data, &q, &decomps[lss_pick.index], &budget),
                    ) else {
                        continue;
                    };
                    tested += 1;
                    let (ca, cl) = (ca.max(1) as f64, cl.max(1) as f64);
                    match cl.total_cmp(&ca) {
                        std::cmp::Ordering::Less => lss_wins += 1,
                        std::cmp::Ordering::Greater => agm_wins += 1,
                        std::cmp::Ordering::Equal => ties += 1,
                    }
                    let r = (ca / cl).log10();
                    log_ratio_sum += r;
                    if r > best_improvement {
                        best_improvement = r;
                    }
                    if tested <= 24 {
                        t.row(vec![size.to_string(), freq.to_string(), fnum(ca), fnum(cl)]);
                    }
                }
            }
        }
        println!(
            "\n== Fig 12 [{name}]: GHD plan cost, AGM vs LSS ({tested} labeled patterns) ==\n"
        );
        t.print();
        if tested > 0 {
            println!(
                "\nsummary: LSS better {lss_wins}, AGM better {agm_wins}, tie {ties}; \
                 mean log10(AGM/LSS true cost) = {:.2}; best improvement = {:.1} orders",
                log_ratio_sum / tested as f64,
                best_improvement
            );
        }
    }
    println!("\nexpected shape (paper): LSS recommends plans up to 3-4 orders cheaper on");
    println!("yeast/wordnet; AGM competitive only when most labels are frequent (near-unlabeled).");
}
