//! Fig. 11: robustness to workload shifts — LSS (and ALSS with 2 CTC
//! rounds) trained on varying small:large query mixes of the aids pool,
//! evaluated on a fixed test set.
//!
//! Run: `cargo run -p alss-bench --bin fig11 --release`

use alss_bench::scenario::{bench_model_config, bench_train_config, load_scenario};
use alss_bench::TableWriter;
use alss_core::encode::EncodingKind;
use alss_core::train::encode_workload;
use alss_core::workload::{LabeledQuery, Workload};
use alss_core::{
    active_round, LearnedSketch, PoolItem, QErrorStats, SketchConfig, Strategy, TrainConfig,
};
use alss_graph::io::to_text;
use alss_matching::Semantics;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

fn main() {
    let _telemetry = alss_bench::init_telemetry("fig11");
    let sc = load_scenario("aids", Semantics::Homomorphism);
    let sizes = sc.workload.sizes();
    assert!(sizes.len() >= 2, "need multiple query sizes");
    let mid = sizes.len() / 2;
    let small_sizes: Vec<usize> = sizes[..mid].to_vec();
    let is_small = |q: &LabeledQuery| small_sizes.contains(&q.size());

    // fixed test set: 40% of each size bucket; the rest is the train pool
    let mut rng = SmallRng::seed_from_u64(11);
    let (pool_all, test) = sc.workload.stratified_split(0.6, &mut rng);
    let mut small: Vec<LabeledQuery> = pool_all
        .queries
        .iter()
        .filter(|q| is_small(q))
        .cloned()
        .collect();
    let mut large: Vec<LabeledQuery> = pool_all
        .queries
        .iter()
        .filter(|q| !is_small(q))
        .cloned()
        .collect();
    small.shuffle(&mut rng);
    large.shuffle(&mut rng);

    let total = (small.len() + large.len()).min(2 * small.len().min(large.len()));
    let train_total = (total * 2 / 3).max(8);
    println!(
        "== Fig 11 [aids]: robustness to workload shift (train {} / test {}) ==\n",
        train_total,
        test.len()
    );

    let truth: HashMap<String, u64> = pool_all
        .queries
        .iter()
        .map(|q| (to_text(&q.graph), q.count))
        .collect();

    let mut t = TableWriter::new(&["mix s:l", "model", "size", "q-error distribution"]);
    for (s_part, l_part) in [(2usize, 8usize), (4, 6), (5, 5), (6, 4), (8, 2)] {
        let n_small = (train_total * s_part / 10).min(small.len());
        let n_large = (train_total * l_part / 10).min(large.len());
        let mut train_queries: Vec<LabeledQuery> = Vec::new();
        train_queries.extend(small[..n_small].iter().cloned());
        train_queries.extend(large[..n_large].iter().cloned());
        let train = Workload::from_queries(train_queries);
        // remaining pool queries feed the AL rounds
        let pool_rest: Vec<LabeledQuery> = small[n_small..]
            .iter()
            .chain(&large[n_large..])
            .cloned()
            .collect();

        for enc in [
            EncodingKind::Frequency,
            EncodingKind::Embedding,
            EncodingKind::Concatenated,
        ] {
            let cfg = SketchConfig {
                encoding: enc,
                hops: 3,
                model: bench_model_config(),
                train: bench_train_config(),
                prone_dim: 32,
                seed: 0x11,
            };
            let (mut sketch, _) = LearnedSketch::train(&sc.data, &train, &cfg);

            // LSS rows
            let eval = |sk: &LearnedSketch, tag: &str, t: &mut TableWriter| {
                for size in test.sizes() {
                    let pairs: Vec<(f64, f64)> = test
                        .queries
                        .iter()
                        .filter(|q| q.size() == size)
                        .map(|q| (q.count as f64, sk.estimate(&q.graph)))
                        .collect();
                    if let Some(st) = QErrorStats::from_pairs(&pairs) {
                        t.row(vec![
                            format!("{s_part}:{l_part}"),
                            format!("{}{tag}", enc),
                            size.to_string(),
                            st.render(),
                        ]);
                    }
                }
            };
            eval(&sketch, "", &mut t);

            // ALSS: 2 CTC rounds
            let mut items = encode_workload(sketch.encoder(), &train);
            let mut pool: Vec<PoolItem> = pool_rest
                .iter()
                .map(|q| PoolItem {
                    encoded: sketch.encode(&q.graph),
                    graph: q.graph.clone(),
                })
                .collect();
            let budget = (pool.len() / 4).clamp(2, 25);
            let finetune = TrainConfig {
                epochs: (cfg.train.epochs / 2).max(5),
                ..cfg.train
            };
            let mut al_rng = SmallRng::seed_from_u64(0xA1 + s_part as u64);
            for round in 0..2u64 {
                active_round(
                    &mut sketch,
                    &mut items,
                    &mut pool,
                    |g| truth.get(&to_text(g)).copied(),
                    Strategy::CrossTask,
                    budget,
                    &finetune,
                    round,
                    &mut al_rng,
                );
            }
            eval(&sketch, "+AL", &mut t);
        }
    }
    t.print();
    println!("\nexpected shape (paper): q-error fluctuates mainly on small queries and stays");
    println!("within one order (especially LSS-emb); ALSS consistently beats plain LSS.");
}
