//! Ablation: GIN (injective sum aggregation, the paper's choice for its
//! WL-test expressiveness) vs mean aggregation (GCN/GraphSAGE-style).
//!
//! Run: `cargo run -p alss-bench --bin ablation_gnn --release`

use alss_bench::evalkit::train_eval_config;
use alss_bench::scenario::{bench_model_config, bench_train_config, load_scenario};
use alss_bench::TableWriter;
use alss_core::{EncodingKind, SketchConfig};
use alss_matching::Semantics;
use alss_nn::Aggregation;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let _telemetry = alss_bench::init_telemetry("ablation_gnn");
    let mut t = TableWriter::new(&["dataset", "gnn agg", "q-error distribution"]);
    for name in ["aids", "yeast"] {
        let sc = load_scenario(name, Semantics::Homomorphism);
        let mut rng = SmallRng::seed_from_u64(0xAB4);
        let (train, test) = sc.workload.stratified_split(0.8, &mut rng);
        for (label, agg) in [("sum (GIN)", Aggregation::Sum), ("mean", Aggregation::Mean)] {
            let mut model = bench_model_config();
            model.gnn_aggregation = agg;
            let cfg = SketchConfig {
                encoding: EncodingKind::Embedding,
                hops: 3,
                model,
                train: bench_train_config(),
                prone_dim: 32,
                seed: 0xAB4,
            };
            let (stats, _) = train_eval_config(&sc, &train, &test, &cfg);
            t.row(vec![name.to_string(), label.to_string(), stats.render()]);
        }
    }
    println!("== Ablation: GNN neighborhood aggregation ==\n");
    t.print();
    println!("\nexpected: sum (GIN) distinguishes neighbor multiplicities — which carry count");
    println!("signal — and should dominate mean aggregation, per the paper's §4.2 argument.");
}
