//! Fig. 6: q-error bucketed by the *true count* magnitude on the aids
//! query set — WJ looks good on tiny-count queries where underestimation
//! is cheap; LSS stays accurate across the range.
//!
//! Run: `cargo run -p alss-bench --bin fig6 --release`

use alss_bench::evalkit::{run_homomorphism_baselines, train_and_eval_lss, MethodResult};
use alss_bench::scenario::load_scenario;
use alss_bench::TableWriter;
use alss_core::{EncodingKind, QErrorStats};
use alss_matching::Semantics;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bucket_of(truth: f64) -> usize {
    // buckets: [1,1e2), [1e2,1e4), [1e4,1e6), [1e6,inf)
    let l = truth.max(1.0).log10();
    // l/2 ∈ [0, 155) for finite counts, then clamped to the 4 buckets
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let b = (l / 2.0).floor() as usize;
    b.min(3)
}

const BUCKETS: [&str; 4] = ["[1,1e2)", "[1e2,1e4)", "[1e4,1e6)", ">=1e6"];

fn main() {
    let _telemetry = alss_bench::init_telemetry("fig6");
    let sc = load_scenario("aids", Semantics::Homomorphism);
    let mut rng = SmallRng::seed_from_u64(6);
    let (train, test) = sc.workload.stratified_split(0.8, &mut rng);
    println!(
        "== Fig 6 [aids]: q-error by true-count range ({} test queries) ==\n",
        test.len()
    );
    let mut methods: Vec<MethodResult> = vec![
        train_and_eval_lss(&sc, &train, &test, EncodingKind::Frequency, 0x66).result,
        train_and_eval_lss(&sc, &train, &test, EncodingKind::Embedding, 0x66).result,
    ];
    methods.extend(run_homomorphism_baselines(&sc, &test));

    let mut t = TableWriter::new(&["count range", "method", "q-error distribution"]);
    for (b, bname) in BUCKETS.iter().enumerate() {
        for m in &methods {
            let pairs: Vec<(f64, f64)> = m
                .per_query
                .iter()
                .filter(|r| bucket_of(r.truth) == b)
                .map(|r| (r.truth, r.est.max(1.0)))
                .collect();
            if let Some(s) = QErrorStats::from_pairs(&pairs) {
                t.row(vec![bname.to_string(), m.method.clone(), s.render()]);
            }
        }
    }
    t.print();
    println!("\nexpected shape (paper): WJ's q-error is low for c(q) < 1e2 (underestimating to");
    println!("0 is cheap there) and grows with the true count; LSS stays flat across buckets.");
}
