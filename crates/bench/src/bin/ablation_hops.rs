//! Ablation: BFS-tree decomposition depth `l` (the paper fixes `l = 3`;
//! DESIGN.md calls out 1/2/3-hop as a design-choice ablation).
//!
//! Run: `cargo run -p alss-bench --bin ablation_hops --release`

use alss_bench::evalkit::train_eval_config;
use alss_bench::scenario::{bench_model_config, bench_train_config, load_scenario};
use alss_bench::TableWriter;
use alss_core::{EncodingKind, SketchConfig};
use alss_matching::Semantics;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let _telemetry = alss_bench::init_telemetry("ablation_hops");
    let sc = load_scenario("aids", Semantics::Homomorphism);
    let mut rng = SmallRng::seed_from_u64(0xAB1);
    let (train, test) = sc.workload.stratified_split(0.8, &mut rng);
    println!(
        "== Ablation: decomposition depth l (aids, {} test queries) ==\n",
        test.len()
    );
    let mut t = TableWriter::new(&["l", "q-error distribution", "train s"]);
    for hops in [1u32, 2, 3, 4] {
        let cfg = SketchConfig {
            encoding: EncodingKind::Embedding,
            hops,
            model: bench_model_config(),
            train: bench_train_config(),
            prone_dim: 32,
            seed: 0xAB1,
        };
        let (stats, report) = train_eval_config(&sc, &train, &test, &cfg);
        t.row(vec![
            hops.to_string(),
            stats.render(),
            format!("{:.1}", report.duration.as_secs_f64()),
        ]);
    }
    t.print();
    println!("\nexpected: l=3 (the paper's setting) at or near the best accuracy; l=1 loses");
    println!("multi-hop context; larger l grows substructures (and cost) with little gain.");
}
