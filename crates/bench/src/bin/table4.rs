//! Table 4: LSS training time (50-epoch budget) per homomorphism query
//! set, per encoding variant, plus the ProNE embedding pre-training time.
//!
//! Run: `cargo run -p alss-bench --bin table4 --release [datasets...]`

use alss_bench::evalkit::{encodings_for, train_and_eval_lss};
use alss_bench::scenario::{load_scenario, selected_datasets};
use alss_bench::table::fnum;
use alss_bench::TableWriter;
use alss_matching::Semantics;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let _telemetry = alss_bench::init_telemetry("table4");
    println!("== Table 4: training time (s) ==\n");
    let mut t = TableWriter::new(&["Dataset", "LSS-fre", "LSS-emb", "LSS-con", "Embedding"]);
    for name in selected_datasets(&["aids", "yeast", "wordnet", "eu2005"]) {
        let sc = load_scenario(&name, Semantics::Homomorphism);
        if sc.workload.len() < 10 {
            continue;
        }
        let mut rng = SmallRng::seed_from_u64(0x44);
        let (train, test) = sc.workload.stratified_split(0.8, &mut rng);
        let mut cells = vec![name.clone()];
        let mut emb_time = 0.0f64;
        for enc in encodings_for(&name) {
            let eval = train_and_eval_lss(&sc, &train, &test, enc, 0x44);
            cells.push(fnum(eval.report.duration.as_secs_f64()));
            if eval.encoder_secs > emb_time {
                emb_time = eval.encoder_secs;
            }
        }
        while cells.len() < 4 {
            cells.push("-".to_string());
        }
        cells.push(fnum(emb_time));
        t.row(cells);
    }
    t.print();
    println!("\n(training time scales with #queries x epochs, independent of data-graph size;");
    println!("ProNE pre-training is linear in |G_L| — the paper's Table 4 observations)");
}
