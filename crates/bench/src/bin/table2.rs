//! Table 2: statistics of the (synthetic analogues of the) real data
//! graphs — |V|, |E|, |Σ|, |Σ_E|, Ent(Σ).
//!
//! Run: `cargo run -p alss-bench --bin table2 --release`

use alss_bench::table::fnum;
use alss_bench::{load_dataset, TableWriter};
use alss_graph::labels::LabelStats;

fn main() {
    let _telemetry = alss_bench::init_telemetry("table2");
    println!("== Table 2: Real Data Graphs (synthetic analogues) ==\n");
    let mut t = TableWriter::new(&[
        "Dataset",
        "|V|",
        "|E|",
        "|Sigma|",
        "|Sigma_E|",
        "Ent(Sigma)",
    ]);
    for name in ["aids", "yeast", "youtube", "wordnet", "eu2005", "yago"] {
        let g = load_dataset(name);
        let stats = LabelStats::new(&g);
        t.row(vec![
            name.to_string(),
            g.num_nodes().to_string(),
            g.num_edges().to_string(),
            g.num_node_labels().to_string(),
            if g.num_edge_labels() > 0 {
                g.num_edge_labels().to_string()
            } else {
                "-".to_string()
            },
            fnum(stats.entropy()),
        ]);
    }
    t.print();
    println!(
        "\npaper reference: aids 253k/274k/51/0.93  yeast 3.1k/12.5k/71/2.92  \
         youtube 1.13M/2.99M/20/3.21  wordnet 77k/120k/5/0.66  eu2005 863k/16.1M/40/3.68  \
         yago 12.8M/15.8M/188k+91 edge labels"
    );
    println!(
        "(sizes scaled by ALSS_SCALE={}; shapes, |Sigma| and entropy match)",
        alss_bench::scale()
    );
}
