//! Fig. 7: q-error of *subgraph isomorphism* counting on youtube and
//! eu2005 — LSS variants vs the isomorphism-revised WJ and IMPR.
//!
//! Run: `cargo run -p alss-bench --bin fig7 --release [datasets...]`

use alss_bench::evalkit::{
    encodings_for, run_isomorphism_baselines, train_and_eval_lss, MethodResult,
};
use alss_bench::scenario::{load_scenario, selected_datasets};
use alss_bench::TableWriter;
use alss_core::QErrorStats;
use alss_matching::Semantics;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let _telemetry = alss_bench::init_telemetry("fig7");
    for name in selected_datasets(&["youtube", "eu2005"]) {
        let sc = load_scenario(&name, Semantics::Isomorphism);
        if sc.workload.len() < 10 {
            alss_telemetry::progress("fig7", &format!("{name}: workload too small, skipped"));
            continue;
        }
        let mut rng = SmallRng::seed_from_u64(7);
        let (train, test) = sc.workload.stratified_split(0.8, &mut rng);
        println!(
            "\n== Fig 7 [{name}]: q-error (isomorphism), {} train / {} test ==\n",
            train.len(),
            test.len()
        );
        let mut methods: Vec<MethodResult> = Vec::new();
        for enc in encodings_for(&name) {
            methods.push(train_and_eval_lss(&sc, &train, &test, enc, 0x717).result);
        }
        methods.extend(run_isomorphism_baselines(&sc, &test));

        let mut t = TableWriter::new(&["size", "method", "q-error distribution"]);
        for size in test.sizes() {
            for m in &methods {
                let pairs = m.pairs_of_size(size);
                let all_failed = m
                    .per_query
                    .iter()
                    .filter(|r| r.size == size)
                    .all(|r| r.failed);
                let cell = match QErrorStats::from_pairs(&pairs) {
                    _ if all_failed && !pairs.is_empty() => "all queries failed".to_string(),
                    Some(s) => s.render(),
                    None => "n/a".to_string(),
                };
                t.row(vec![size.to_string(), m.method.clone(), cell]);
            }
        }
        t.print();
    }
    println!("\nexpected shape (paper): WJ-iso/IMPR-iso underestimate severely due to sampling");
    println!("failure (all youtube queries of >= 16 nodes fail under WJ); LSS stays accurate.");
}
