//! Ablation: structured self-attention aggregation (the paper's `w(·)`)
//! vs an unweighted sum of substructure representations.
//!
//! Run: `cargo run -p alss-bench --bin ablation_attention --release`

use alss_bench::evalkit::train_eval_config;
use alss_bench::scenario::{bench_model_config, bench_train_config, load_scenario};
use alss_bench::TableWriter;
use alss_core::model::Aggregator;
use alss_core::{EncodingKind, SketchConfig};
use alss_matching::Semantics;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let _telemetry = alss_bench::init_telemetry("ablation_attention");
    let mut t = TableWriter::new(&["dataset", "aggregator", "q-error distribution"]);
    for name in ["aids", "yeast"] {
        let sc = load_scenario(name, Semantics::Homomorphism);
        let mut rng = SmallRng::seed_from_u64(0xAB3);
        let (train, test) = sc.workload.stratified_split(0.8, &mut rng);
        for (label, agg) in [
            ("attention", Aggregator::Attention),
            ("sum-pool", Aggregator::SumPool),
        ] {
            let mut model = bench_model_config();
            model.aggregator = agg;
            let cfg = SketchConfig {
                encoding: EncodingKind::Embedding,
                hops: 3,
                model,
                train: bench_train_config(),
                prone_dim: 32,
                seed: 0xAB3,
            };
            let (stats, _) = train_eval_config(&sc, &train, &test, &cfg);
            t.row(vec![name.to_string(), label.to_string(), stats.render()]);
        }
    }
    println!("== Ablation: substructure aggregation ==\n");
    t.print();
    println!("\nexpected: attention learns query-specific substructure weights and beats the");
    println!("unweighted sum, which treats redundant and informative substructures alike.");
}
