//! Fig. 10: active-learning strategies on the aids test set — final
//! regression loss, average L1 log-loss vs the un-updated base model
//! (ORI), and per-size error after 2 uncertainty-sampling rounds, for
//! RAN / CON / MAR / ENT / CTC / ENS.
//!
//! Run: `cargo run -p alss-bench --bin fig10 --release`

use alss_bench::scenario::{bench_model_config, bench_train_config, load_scenario};
use alss_bench::table::fnum;
use alss_bench::TableWriter;
use alss_core::encode::EncodingKind;
use alss_core::train::{encode_workload, finetune_model, EncodedItem};
use alss_core::workload::Workload;
use alss_core::{
    active_round, LearnedSketch, LssEnsemble, PoolItem, QErrorStats, SketchConfig, Strategy,
    TrainConfig,
};
use alss_graph::io::to_text;
use alss_matching::Semantics;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn reg_loss(pairs: &[(f64, f64)]) -> f64 {
    pairs
        .iter()
        .map(|&(c, e)| {
            let d = c.max(1.0).log10() - e.max(1.0).log10();
            d * d
        })
        .sum::<f64>()
        / pairs.len().max(1) as f64
}

fn eval_sketch(sketch: &LearnedSketch, test: &Workload) -> Vec<(f64, f64, usize)> {
    test.queries
        .iter()
        .map(|q| (q.count as f64, sketch.estimate(&q.graph), q.size()))
        .collect()
}

fn main() {
    let _telemetry = alss_bench::init_telemetry("fig10");
    let sc = load_scenario("aids", Semantics::Homomorphism);
    let mut rng = SmallRng::seed_from_u64(10);
    let parts = sc
        .workload
        .stratified_multi_split(&[0.6, 0.2, 0.2], &mut rng);
    let (train, pool_w, test) = (&parts[0], &parts[1], &parts[2]);
    println!(
        "== Fig 10 [aids]: AL strategies ({} train / {} pool / {} test) ==\n",
        train.len(),
        pool_w.len(),
        test.len()
    );

    // oracle: look up the pool query's precomputed exact count
    let truth: HashMap<String, u64> = pool_w
        .queries
        .iter()
        .map(|q| (to_text(&q.graph), q.count))
        .collect();
    let oracle = |g: &alss_graph::Graph| truth.get(&to_text(g)).copied();

    let cfg = SketchConfig {
        encoding: EncodingKind::Frequency,
        hops: 3,
        model: bench_model_config(),
        train: bench_train_config(),
        prone_dim: 32,
        seed: 0x10,
    };
    let rounds = 2usize;
    let budget = (pool_w.len() / (2 * rounds)).max(2);
    let finetune = TrainConfig {
        epochs: (cfg.train.epochs / 2).max(5),
        ..cfg.train
    };

    // base model (shared starting point for every strategy)
    let (base, _) = LearnedSketch::train(&sc.data, train, &cfg);
    let base_eval = eval_sketch(&base, test);
    let base_pairs: Vec<(f64, f64)> = base_eval.iter().map(|&(c, e, _)| (c, e)).collect();

    let mut summary = TableWriter::new(&["strategy", "test reg-loss", "avg L1 (log10)"]);
    let base_stats = QErrorStats::from_pairs(&base_pairs).expect("non-empty test");
    summary.row(vec![
        "ORI".to_string(),
        fnum(reg_loss(&base_pairs)),
        fnum(base_stats.l1_log),
    ]);

    let mut per_size = TableWriter::new(&["strategy", "size", "q-error distribution"]);
    for (c, e, s) in &base_eval {
        let _ = (c, e, s);
    }
    for size in test.sizes() {
        let pairs: Vec<(f64, f64)> = base_eval
            .iter()
            .filter(|&&(_, _, s)| s == size)
            .map(|&(c, e, _)| (c, e))
            .collect();
        if let Some(st) = QErrorStats::from_pairs(&pairs) {
            per_size.row(vec!["ORI".to_string(), size.to_string(), st.render()]);
        }
    }

    for strategy in Strategy::all() {
        let mut sketch = base.clone();
        let mut items = encode_workload(sketch.encoder(), train);
        let mut pool: Vec<PoolItem> = pool_w
            .queries
            .iter()
            .map(|q| PoolItem {
                encoded: sketch.encode(&q.graph),
                graph: q.graph.clone(),
            })
            .collect();
        let mut rng = SmallRng::seed_from_u64(0x5E1 + strategy as u64);
        for round in 0..rounds {
            active_round(
                &mut sketch,
                &mut items,
                &mut pool,
                oracle,
                strategy,
                budget,
                &finetune,
                round as u64,
                &mut rng,
            );
        }
        let eval = eval_sketch(&sketch, test);
        let pairs: Vec<(f64, f64)> = eval.iter().map(|&(c, e, _)| (c, e)).collect();
        let stats = QErrorStats::from_pairs(&pairs).expect("non-empty");
        summary.row(vec![
            strategy.name().to_string(),
            fnum(reg_loss(&pairs)),
            fnum(stats.l1_log),
        ]);
        for size in test.sizes() {
            let sp: Vec<(f64, f64)> = eval
                .iter()
                .filter(|&&(_, _, s)| s == size)
                .map(|&(c, e, _)| (c, e))
                .collect();
            if let Some(st) = QErrorStats::from_pairs(&sp) {
                per_size.row(vec![
                    strategy.name().to_string(),
                    size.to_string(),
                    st.render(),
                ]);
            }
        }
    }

    // ENS: committee of 5 models on 80% folds of the training data
    {
        let mut members = Vec::new();
        let mut fold_rng = SmallRng::seed_from_u64(0xE45);
        for k in 0..5u64 {
            let (sub, _) = train.stratified_split(0.8, &mut fold_rng);
            let cfg_k = SketchConfig {
                seed: 0x10 + 1 + k,
                ..cfg
            };
            let (s, _) = LearnedSketch::train_with_encoder(
                LearnedSketch::build_encoder(&sc.data, &cfg_k),
                &sub,
                &cfg_k,
            );
            members.push(s);
        }
        let mut items: Vec<Vec<EncodedItem>> = members
            .iter()
            .map(|m| encode_workload(m.encoder(), train))
            .collect();
        let mut pool: Vec<PoolItem> = pool_w
            .queries
            .iter()
            .map(|q| PoolItem {
                encoded: members[0].encode(&q.graph),
                graph: q.graph.clone(),
            })
            .collect();
        let mut rng = SmallRng::seed_from_u64(0xE46);
        for round in 0..rounds {
            let ens = LssEnsemble::new(members.iter().map(|m| m.model().clone()).collect());
            let encoded: Vec<_> = pool.iter().map(|p| p.encoded.clone()).collect();
            let mut sel = ens.select_batch(&encoded, budget, &mut rng);
            sel.sort_unstable_by(|a, b| b.cmp(a));
            for idx in sel {
                let item = pool.swap_remove(idx);
                if let Some(c) = oracle(&item.graph) {
                    for it in items.iter_mut() {
                        it.push((item.encoded.clone(), c));
                    }
                }
            }
            for (m, it) in members.iter_mut().zip(&items) {
                finetune_model(m.model_mut(), it, &finetune, round as u64);
            }
        }
        let ens = LssEnsemble::new(members.iter().map(|m| m.model().clone()).collect());
        let pairs: Vec<(f64, f64)> = test
            .queries
            .iter()
            .map(|q| {
                let eq = members[0].encode(&q.graph);
                (q.count as f64, ens.predict_count(&eq))
            })
            .collect();
        let stats = QErrorStats::from_pairs(&pairs).expect("non-empty");
        summary.row(vec![
            "ENS".to_string(),
            fnum(reg_loss(&pairs)),
            fnum(stats.l1_log),
        ]);
    }

    println!("--- (a)+(b) final test losses ---");
    summary.print();
    println!("\n--- (c) per-size q-error ---");
    per_size.print();
    println!("\nexpected shape (paper): all strategies improve on ORI; ENT/CTC (and costly ENS)");
    println!("beat RAN; CON/MAR lag because adjacent-magnitude posteriors carry little signal.");
}
