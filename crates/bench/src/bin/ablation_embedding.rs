//! Ablation: the pre-trained embedding behind LSS-emb — DeepWalk vs
//! node2vec vs ProNE (the paper tried four methods and chose ProNE for
//! its scalability and stable accuracy; §6.1).
//!
//! Run: `cargo run -p alss-bench --bin ablation_embedding --release`

use alss_bench::scenario::{bench_model_config, bench_train_config, load_scenario};
use alss_bench::table::fnum;
use alss_bench::TableWriter;
use alss_core::{Encoder, EncodingKind, LearnedSketch, QErrorStats, SketchConfig};
use alss_embedding::prone::{prone, ProneConfig};
use alss_embedding::skipgram::SkipGramConfig;
use alss_embedding::{deepwalk, node2vec, DeepWalkConfig, Embedding, Node2VecConfig};
use alss_graph::augmented::label_augmented_graph;
use alss_matching::Semantics;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let _telemetry = alss_bench::init_telemetry("ablation_embedding");
    let sc = load_scenario("yeast", Semantics::Homomorphism);
    let mut rng = SmallRng::seed_from_u64(0xAB5);
    let (train, test) = sc.workload.stratified_split(0.8, &mut rng);
    let aug = label_augmented_graph(&sc.data);
    println!(
        "== Ablation: embedding method behind LSS-emb (yeast, {} test queries) ==\n",
        test.len()
    );

    let dim = 32usize;
    let mut embeddings: Vec<(&str, Embedding, f64)> = Vec::new();
    {
        let t0 = Instant::now();
        let mut r = SmallRng::seed_from_u64(1);
        let e = prone(
            &aug.graph,
            &ProneConfig {
                dim,
                ..Default::default()
            },
            &mut r,
        );
        embeddings.push(("ProNE", e, t0.elapsed().as_secs_f64()));
    }
    {
        let t0 = Instant::now();
        let mut r = SmallRng::seed_from_u64(2);
        let e = deepwalk(
            &aug.graph,
            &DeepWalkConfig {
                walks_per_node: 5,
                walk_length: 20,
                skipgram: SkipGramConfig {
                    dim,
                    epochs: 2,
                    ..Default::default()
                },
            },
            &mut r,
        );
        embeddings.push(("DeepWalk", e, t0.elapsed().as_secs_f64()));
    }
    {
        let t0 = Instant::now();
        let mut r = SmallRng::seed_from_u64(3);
        let e = node2vec(
            &aug.graph,
            &Node2VecConfig {
                p: 1.0,
                q: 0.5,
                walks_per_node: 5,
                walk_length: 20,
                skipgram: SkipGramConfig {
                    dim,
                    epochs: 2,
                    ..Default::default()
                },
            },
            &mut r,
        );
        embeddings.push(("node2vec", e, t0.elapsed().as_secs_f64()));
    }

    let mut t = TableWriter::new(&["embedding", "pretrain s", "q-error distribution"]);
    for (name, emb, secs) in &embeddings {
        let encoder = Encoder::embedding_from(&sc.data, 3, emb, aug.base);
        let cfg = SketchConfig {
            encoding: EncodingKind::Embedding,
            hops: 3,
            model: bench_model_config(),
            train: bench_train_config(),
            prone_dim: dim,
            seed: 0xAB5,
        };
        let (sketch, _) = LearnedSketch::train_with_encoder(encoder, &train, &cfg);
        let pairs: Vec<(f64, f64)> = test
            .queries
            .iter()
            .map(|q| (q.count as f64, sketch.estimate(&q.graph)))
            .collect();
        let stats = QErrorStats::from_pairs(&pairs).expect("non-empty");
        t.row(vec![name.to_string(), fnum(*secs), stats.render()]);
    }
    t.print();
    println!("\nexpected: comparable accuracy across methods with ProNE pre-training fastest —");
    println!("the basis for the paper's choice of ProNE (§6.1).");
}
