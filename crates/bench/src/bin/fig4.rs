//! Fig. 4: q-error of homomorphism counting — the three LSS variants vs
//! the seven G-CARE baselines, per dataset and query size.
//!
//! Run: `cargo run -p alss-bench --bin fig4 --release [datasets...]`
//! (defaults to all five homomorphism datasets).

use alss_bench::evalkit::{
    encodings_for, run_homomorphism_baselines, train_and_eval_lss, MethodResult,
};
use alss_bench::scenario::{load_scenario, selected_datasets};
use alss_bench::TableWriter;
use alss_core::QErrorStats;
use alss_matching::Semantics;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let _telemetry = alss_bench::init_telemetry("fig4");
    for name in selected_datasets(&["aids", "yeast", "wordnet", "eu2005", "yago"]) {
        let sc = load_scenario(&name, Semantics::Homomorphism);
        if sc.workload.len() < 10 {
            alss_telemetry::progress(
                "fig4",
                &format!(
                    "{name}: workload too small ({}), skipped",
                    sc.workload.len()
                ),
            );
            continue;
        }
        let mut rng = SmallRng::seed_from_u64(4);
        let (train, test) = sc.workload.stratified_split(0.8, &mut rng);
        println!(
            "\n== Fig 4 [{name}]: q-error (homomorphism), {} train / {} test ==\n",
            train.len(),
            test.len()
        );

        let mut methods: Vec<MethodResult> = Vec::new();
        for enc in encodings_for(&name) {
            alss_telemetry::progress("fig4", &format!("{name}: training {enc}"));
            let eval = train_and_eval_lss(&sc, &train, &test, enc, 0x515);
            methods.push(eval.result);
        }
        alss_telemetry::progress("fig4", &format!("{name}: running baselines"));
        methods.extend(run_homomorphism_baselines(&sc, &test));

        let mut t = TableWriter::new(&["size", "method", "q-error distribution"]);
        for size in test.sizes() {
            for m in &methods {
                let pairs = m.pairs_of_size(size);
                // the paper omits methods where every query failed
                let all_failed = m
                    .per_query
                    .iter()
                    .filter(|r| r.size == size)
                    .all(|r| r.failed);
                let cell = match QErrorStats::from_pairs(&pairs) {
                    _ if all_failed && !pairs.is_empty() => "all queries failed".to_string(),
                    Some(s) => s.render(),
                    None => "n/a".to_string(),
                };
                t.row(vec![size.to_string(), m.method.clone(), cell]);
            }
        }
        t.print();
    }
    println!("\nexpected shape (paper): LSS medians < 3 across sizes; WJ good on aids 3/6-node,");
    println!("collapsing on larger/complex queries; CSET/SumRDF underestimate; BS overestimates.");
}
