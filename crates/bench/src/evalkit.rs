//! Shared evaluation machinery for the figure binaries: run every
//! baseline and every LSS variant over a test workload, recording
//! estimates, sampling failures, and per-query latency.

use crate::scenario::{bench_model_config, bench_train_config, Scenario};
use alss_core::encode::EncodingKind;
use alss_core::train::encode_workload;
use alss_core::workload::Workload;
use alss_core::{LearnedSketch, SketchConfig, TrainReport};
use alss_estimators::{
    BoundSketch, CardinalityEstimator, CharacteristicSets, CorrelatedSampling, Impr, JSub,
    LabelIndex, SumRdf, WanderJoin,
};
use alss_matching::{Budget, Semantics};
use alss_telemetry::Stopwatch;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One method's result on one test query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Query size (nodes).
    pub size: usize,
    /// True count.
    pub truth: f64,
    /// Estimated count (0 on failure).
    pub est: f64,
    /// Sampling failure flag.
    pub failed: bool,
    /// Estimation latency in microseconds.
    pub micros: f64,
}

/// One method's results over the whole test workload.
#[derive(Clone, Debug)]
pub struct MethodResult {
    /// Display name (WJ, CS, LSS-fre, GFlow, ...).
    pub method: String,
    /// Per-query outcomes.
    pub per_query: Vec<QueryResult>,
}

impl MethodResult {
    /// `(truth, est)` pairs for one query size (est clamped ≥ 1).
    pub fn pairs_of_size(&self, size: usize) -> Vec<(f64, f64)> {
        self.per_query
            .iter()
            .filter(|r| r.size == size)
            .map(|r| (r.truth, r.est.max(1.0)))
            .collect()
    }

    /// All `(truth, est)` pairs.
    pub fn pairs(&self) -> Vec<(f64, f64)> {
        self.per_query
            .iter()
            .map(|r| (r.truth, r.est.max(1.0)))
            .collect()
    }

    /// Failure fraction for one size.
    pub fn failure_rate(&self, size: usize) -> f64 {
        let of_size: Vec<_> = self.per_query.iter().filter(|r| r.size == size).collect();
        if of_size.is_empty() {
            return 0.0;
        }
        of_size.iter().filter(|r| r.failed).count() as f64 / of_size.len() as f64
    }

    /// Mean latency (ms) for one size.
    pub fn mean_ms(&self, size: usize) -> f64 {
        let of_size: Vec<_> = self.per_query.iter().filter(|r| r.size == size).collect();
        if of_size.is_empty() {
            return f64::NAN;
        }
        of_size.iter().map(|r| r.micros).sum::<f64>() / of_size.len() as f64 / 1000.0
    }
}

fn run_estimator(
    est: &dyn CardinalityEstimator,
    test: &Workload,
    size_limit: Option<(usize, usize)>,
    seed: u64,
) -> MethodResult {
    let mut rng = SmallRng::seed_from_u64(seed);
    let per_query = test
        .queries
        .iter()
        .filter(|q| size_limit.is_none_or(|(lo, hi)| (lo..=hi).contains(&q.size())))
        .map(|q| {
            let watch = Stopwatch::start();
            let e = est.estimate(&q.graph, &mut rng);
            if e.failed {
                alss_telemetry::counter("estimator.failures").inc();
            }
            QueryResult {
                size: q.size(),
                truth: q.count as f64,
                est: e.count,
                failed: e.failed,
                micros: watch.record("estimator.query_us"),
            }
        })
        .collect();
    MethodResult {
        method: est.name().to_string(),
        per_query,
    }
}

/// Number of sampling walks, following G-CARE's 3% sampling ratio on
/// `|V|` (floored at 30 so tiny test graphs still draw samples).
pub fn sampling_walks(num_nodes: usize) -> usize {
    (num_nodes * 3 / 100).max(30)
}

/// Run the seven homomorphism baselines of §6.2 on the test workload.
pub fn run_homomorphism_baselines(sc: &Scenario, test: &Workload) -> Vec<MethodResult> {
    let idx = LabelIndex::new(&sc.data);
    let walks = sampling_walks(sc.data.num_nodes());
    let mut out = vec![
        run_estimator(&CharacteristicSets::new(&sc.data), test, None, 11),
        run_estimator(&SumRdf::new(&sc.data), test, None, 12),
    ];
    out.push(run_estimator(
        &Impr::new(&sc.data, walks.min(800), 16),
        test,
        Some((3, 5)),
        13,
    ));
    out.push(run_estimator(
        &CorrelatedSampling::new(&sc.data, 0.3, 17, 50_000_000),
        test,
        None,
        14,
    ));
    out.push(run_estimator(&WanderJoin::new(&idx, walks), test, None, 15));
    out.push(run_estimator(&JSub::new(&idx, walks), test, None, 16));
    out.push(run_estimator(&BoundSketch::new(&sc.data), test, None, 17));
    out
}

/// Run the isomorphism-revised baselines (§6.2: WJ and IMPR).
pub fn run_isomorphism_baselines(sc: &Scenario, test: &Workload) -> Vec<MethodResult> {
    let idx = LabelIndex::new(&sc.data);
    let walks = sampling_walks(sc.data.num_nodes());
    vec![
        run_estimator(&WanderJoin::new_isomorphism(&idx, walks), test, None, 21),
        run_estimator(
            &Impr::new_isomorphism(&sc.data, walks.min(800), 16),
            test,
            Some((3, 5)),
            22,
        ),
    ]
}

/// Time the exact engine (the `GFlow` / `GQL` series of Figs. 8–9).
pub fn run_exact(sc: &Scenario, test: &Workload, budget_per_query: u64) -> MethodResult {
    let name = match sc.semantics {
        Semantics::Homomorphism => "GFlow",
        Semantics::Isomorphism => "GQL",
    };
    let per_query = test
        .queries
        .iter()
        .map(|q| {
            let watch = Stopwatch::start();
            let b = Budget::new(budget_per_query);
            let c = sc.semantics.count(&sc.data, &q.graph, &b).unwrap_or(0);
            QueryResult {
                size: q.size(),
                truth: q.count as f64,
                est: c as f64,
                failed: false,
                micros: watch.record("exact.query_us"),
            }
        })
        .collect();
    MethodResult {
        method: name.to_string(),
        per_query,
    }
}

/// A trained LSS variant's evaluation plus its training metadata.
pub struct LssEval {
    /// Evaluation results (method name `LSS-fre` / `LSS-emb` / `LSS-con`).
    pub result: MethodResult,
    /// Training report.
    pub report: TrainReport,
    /// Encoder build time (embedding pre-training) in seconds.
    pub encoder_secs: f64,
}

/// Train one LSS variant on `train` and evaluate on `test`.
pub fn train_and_eval_lss(
    sc: &Scenario,
    train: &Workload,
    test: &Workload,
    encoding: EncodingKind,
    seed: u64,
) -> LssEval {
    let cfg = SketchConfig {
        encoding,
        hops: 3,
        model: bench_model_config(),
        train: bench_train_config(),
        prone_dim: 32,
        seed,
    };
    let watch = Stopwatch::start();
    let encoder = LearnedSketch::build_encoder(&sc.data, &cfg);
    watch.record("encoder.build_us");
    let encoder_secs = watch.elapsed_secs();
    let (sketch, report) = LearnedSketch::train_with_encoder(encoder, train, &cfg);
    let items = encode_workload(sketch.encoder(), test);
    let per_query = test
        .queries
        .iter()
        .zip(&items)
        .map(|(q, (eq, _))| {
            let watch = Stopwatch::start();
            let est = sketch.model().predict(eq).count();
            QueryResult {
                size: q.size(),
                truth: q.count as f64,
                est,
                failed: false,
                micros: watch.record("lss.predict_us"),
            }
        })
        .collect();
    LssEval {
        result: MethodResult {
            method: encoding.to_string(),
            per_query,
        },
        report,
        encoder_secs,
    }
}

/// Train a sketch with an explicit configuration and summarize test
/// q-error (shared by the ablation binaries).
pub fn train_eval_config(
    sc: &Scenario,
    train: &Workload,
    test: &Workload,
    cfg: &alss_core::SketchConfig,
) -> (alss_core::QErrorStats, TrainReport) {
    let (sketch, report) = alss_core::LearnedSketch::train(&sc.data, train, cfg);
    let pairs: Vec<(f64, f64)> = test
        .queries
        .iter()
        .map(|q| (q.count as f64, sketch.estimate(&q.graph)))
        .collect();
    (
        // analyzer: allow(no-expect) - bench harness entry point; an empty test workload is a caller bug and aborting the run is the right behavior
        alss_core::QErrorStats::from_pairs(&pairs).expect("non-empty test"),
        report,
    )
}

/// Which LSS encodings apply to a dataset (yago-like: embedding only, the
/// frequency encoding being infeasible at `|Σ| ≈ 10^5`, §6.2).
pub fn encodings_for(dataset: &str) -> Vec<EncodingKind> {
    if dataset == "yago" {
        vec![EncodingKind::Embedding]
    } else {
        vec![
            EncodingKind::Frequency,
            EncodingKind::Embedding,
            EncodingKind::Concatenated,
        ]
    }
}
