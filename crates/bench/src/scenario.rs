//! Scenario loading: datasets + workloads with JSON caching.

use alss_core::workload::Workload;
use alss_core::{LssConfig, TrainConfig};
use alss_datasets::queries::WorkloadSpec;
use alss_datasets::{by_name, generate_workload};
use alss_graph::Graph;
use alss_matching::Semantics;
use alss_nn::AdamConfig;
use std::path::PathBuf;

/// Environment-variable dataset scale factor.
pub fn scale() -> f64 {
    std::env::var("ALSS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25)
}

/// Labeled queries per query size.
pub fn per_size() -> usize {
    std::env::var("ALSS_PER_SIZE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(40)
}

/// Training epochs.
pub fn epochs() -> usize {
    std::env::var("ALSS_EPOCHS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60)
}

/// Whether to use the paper-fidelity model configuration.
pub fn full_fidelity() -> bool {
    std::env::var("ALSS_FULL").is_ok_and(|v| v == "1")
}

/// The model configuration used by the bench binaries.
pub fn bench_model_config() -> LssConfig {
    if full_fidelity() {
        LssConfig::default() // 3×64 GIN, 4-head attention, dropout 0.5
    } else {
        LssConfig {
            hidden: 32,
            gnn_layers: 2,
            dropout: 0.1,
            att_hidden: 32,
            att_heads: 2,
            mlp_hidden: 32,
            num_classes: 16,
            lambda: 1.0 / 3.0,
            ..Default::default()
        }
    }
}

/// The training configuration used by the bench binaries.
pub fn bench_train_config() -> TrainConfig {
    TrainConfig {
        epochs: epochs(),
        batch_size: 4,
        adam: AdamConfig {
            lr: 3e-3,
            weight_decay: 1e-5,
            lr_decay: 0.97,
            ..Default::default()
        },
        seed: 42,
        parallelism: alss_core::Parallelism::auto(),
    }
}

/// Query sizes per dataset, mirroring Table 3 (larger sizes are capped at
/// small scale to keep exact ground truth computable).
pub fn query_sizes(dataset: &str, semantics: Semantics) -> Vec<usize> {
    match (dataset, semantics) {
        ("aids", _) => vec![3, 6, 9, 12],
        ("yeast", _) => vec![4, 8, 16, 24],
        ("wordnet", _) => vec![4, 8, 12],
        ("eu2005", _) => vec![4, 8],
        ("yago", _) => vec![3, 6, 9, 12],
        ("youtube", _) => vec![4, 8, 16],
        _ => vec![4, 8],
    }
}

/// A cached dataset + workload pair.
pub struct Scenario {
    /// Dataset name (Table 2 row).
    pub name: String,
    /// The synthetic data graph.
    pub data: Graph,
    /// The labeled query workload (Table 3 row).
    pub workload: Workload,
    /// Counting semantics of the workload.
    pub semantics: Semantics,
}

fn cache_dir() -> PathBuf {
    let p =
        PathBuf::from(std::env::var("ALSS_CACHE_DIR").unwrap_or_else(|_| "bench_data".to_string()));
    std::fs::create_dir_all(&p).ok();
    p
}

/// Generate (or load from cache) a Table 2 data graph.
pub fn load_dataset(name: &str) -> Graph {
    let path = cache_dir().join(format!("{name}_{:.3}_graph.json", scale()));
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(g) = serde_json::from_str::<Graph>(&text) {
            // serde fills the CSR arrays directly; a stale or corrupted
            // cache entry is rebuilt instead of trusted.
            if g.validate().is_ok() {
                return g;
            }
        }
    }
    alss_telemetry::progress(
        "scenario",
        &format!("generating dataset {name} at scale {:.3}", scale()),
    );
    // analyzer: allow(no-panic) - bench CLI surface; an unknown dataset name is a usage error and must abort with the name in the message
    let g = by_name(name, scale(), 0xA155).unwrap_or_else(|| panic!("unknown dataset {name}"));
    if let Ok(text) = serde_json::to_string(&g) {
        std::fs::write(&path, text).ok();
    }
    g
}

/// Generate (or load from cache) the Table 3 workload for a dataset.
pub fn load_workload(name: &str, data: &Graph, semantics: Semantics) -> Workload {
    let sem = match semantics {
        Semantics::Homomorphism => "hom",
        Semantics::Isomorphism => "iso",
    };
    let path = cache_dir().join(format!(
        "{name}_{:.3}_{}_{}_queries.json",
        scale(),
        sem,
        per_size()
    ));
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(w) = serde_json::from_str::<Workload>(&text) {
            return w;
        }
    }
    alss_telemetry::progress(
        "scenario",
        &format!("labeling {name} {sem} workload ({} per size)", per_size()),
    );
    let spec = WorkloadSpec {
        sizes: query_sizes(name, semantics),
        per_size: per_size(),
        semantics,
        budget_per_query: 20_000_000,
        // match Table 3's Cov(Σ): aids 0.03, yago 0.1, the rest fully labeled
        wildcard_prob: match name {
            "aids" => 0.95,
            "yago" => 0.85,
            _ => 0.0,
        },
        // the paper's query sets (SubgraphMatching benchmark) are induced
        // subgraphs; the cycle-closing constraints they carry are what
        // drives baseline sampling failure on complex graphs. aids keeps
        // sparse extraction (its queries are near-trees in the original).
        induced: name != "aids",
        seed: 0xC0DE ^ name.len() as u64,
    };
    let w = generate_workload(data, &spec);
    if let Ok(text) = serde_json::to_string(&w) {
        std::fs::write(&path, text).ok();
    }
    w
}

/// Load a full scenario.
pub fn load_scenario(name: &str, semantics: Semantics) -> Scenario {
    let data = load_dataset(name);
    let workload = load_workload(name, &data, semantics);
    Scenario {
        name: name.to_string(),
        data,
        workload,
        semantics,
    }
}

/// Datasets selected on the command line (defaults to `defaults` if no
/// args are given). The `--telemetry` flag and its value are not dataset
/// names and are skipped.
pub fn selected_datasets(defaults: &[&str]) -> Vec<String> {
    let args = crate::telemetry::strip_run_flags(std::env::args().skip(1).collect());
    if args.is_empty() {
        defaults.iter().map(|s| s.to_string()).collect()
    } else {
        args
    }
}
