//! Telemetry wiring for the figure/table binaries.
//!
//! Every binary calls [`init_telemetry`] first thing in `main` and keeps
//! the returned guard alive for the whole run:
//!
//! ```text
//! ALSS_TELEMETRY=spans cargo run --features telemetry --bin fig4 -- --telemetry out.jsonl
//! ```
//!
//! * `--telemetry <path>` (or `--telemetry=<path>`) installs the JSON-lines
//!   file sink; the recording mask comes from `ALSS_TELEMETRY` and defaults
//!   to everything when the variable is unset.
//! * Without the flag, `ALSS_TELEMETRY` alone installs the pretty stderr
//!   sink (see [`alss_telemetry::init_from_env`]).
//! * When the binary was built without `--features telemetry` the flag is
//!   acknowledged with a warning and ignored — probes are compiled out.
//!
//! On drop the guard emits a final metrics-registry snapshot and flushes,
//! so a JSONL capture always ends with the aggregate counters/histograms.

use alss_telemetry::{Category, JsonLinesSink};
use std::path::Path;
use std::sync::Arc;

/// Keeps the sink installed for the lifetime of `main`; emits the final
/// snapshot and flushes on drop.
pub struct TelemetryGuard {
    active: bool,
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        if self.active {
            alss_telemetry::emit_snapshot();
            alss_telemetry::flush();
        }
    }
}

/// Extract the `--telemetry <path>` / `--telemetry=<path>` flag from the
/// raw argument list, returning the path when present.
pub fn telemetry_path(args: &[String]) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--telemetry" {
            return it.next().cloned();
        }
        if let Some(p) = a.strip_prefix("--telemetry=") {
            return Some(p.to_string());
        }
    }
    None
}

/// Extract the `--threads <n>` / `--threads=<n>` flag from the raw
/// argument list. `Some(0)` (or any unparsable value) is treated as
/// absent by [`init_telemetry`], falling back to auto-detection.
pub fn threads_flag(args: &[String]) -> Option<usize> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            return it.next().and_then(|v| v.trim().parse().ok());
        }
        if let Some(v) = a.strip_prefix("--threads=") {
            return v.trim().parse().ok();
        }
    }
    None
}

/// Drop the harness-level flags (`--telemetry <path>`, `--threads <n>`)
/// from an argument list, so dataset selection sees only dataset names.
pub fn strip_run_flags(args: Vec<String>) -> Vec<String> {
    let mut out = Vec::with_capacity(args.len());
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--telemetry" || a == "--threads" {
            it.next(); // its value
            continue;
        }
        if a.starts_with("--telemetry=") || a.starts_with("--threads=") {
            continue;
        }
        out.push(a);
    }
    out
}

/// Back-compat alias for [`strip_run_flags`].
pub fn strip_telemetry_flag(args: Vec<String>) -> Vec<String> {
    strip_run_flags(args)
}

/// Set up telemetry for a binary named `topic`. Must be called before any
/// instrumented work; keep the returned guard alive until exit.
pub fn init_telemetry(topic: &str) -> TelemetryGuard {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(n) = threads_flag(&args).filter(|&n| n > 0) {
        alss_core::set_global_threads(n);
        alss_telemetry::progress(topic, &format!("threads: {n}"));
    }
    match telemetry_path(&args) {
        Some(path) => {
            if !alss_telemetry::compiled_in() {
                alss_telemetry::progress(
                    topic,
                    "--telemetry ignored: binary built without --features telemetry",
                );
                return TelemetryGuard { active: false };
            }
            match JsonLinesSink::create(Path::new(&path)) {
                Ok(sink) => {
                    let mask = alss_telemetry::mask_from_env().unwrap_or(Category::ALL);
                    alss_telemetry::install(Arc::new(sink), mask);
                    TelemetryGuard { active: true }
                }
                Err(e) => {
                    alss_telemetry::progress(topic, &format!("cannot open {path}: {e}"));
                    TelemetryGuard { active: false }
                }
            }
        }
        None => {
            let mask = alss_telemetry::init_from_env();
            TelemetryGuard { active: mask != 0 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn path_extraction() {
        assert_eq!(
            telemetry_path(&strs(&["aids", "--telemetry", "out.jsonl"])),
            Some("out.jsonl".to_string())
        );
        assert_eq!(
            telemetry_path(&strs(&["--telemetry=t.jsonl", "yeast"])),
            Some("t.jsonl".to_string())
        );
        assert_eq!(telemetry_path(&strs(&["aids", "yeast"])), None);
        assert_eq!(telemetry_path(&strs(&["--telemetry"])), None);
    }

    #[test]
    fn flag_stripping() {
        assert_eq!(
            strip_run_flags(strs(&["aids", "--telemetry", "out.jsonl", "yeast"])),
            strs(&["aids", "yeast"])
        );
        assert_eq!(
            strip_run_flags(strs(&["--telemetry=x", "aids"])),
            strs(&["aids"])
        );
        assert_eq!(strip_run_flags(strs(&["aids"])), strs(&["aids"]));
        assert_eq!(
            strip_run_flags(strs(&["--threads", "4", "aids", "--telemetry=x"])),
            strs(&["aids"])
        );
        assert_eq!(
            strip_run_flags(strs(&["--threads=8", "yeast"])),
            strs(&["yeast"])
        );
    }

    #[test]
    fn threads_extraction() {
        assert_eq!(threads_flag(&strs(&["--threads", "4", "aids"])), Some(4));
        assert_eq!(threads_flag(&strs(&["aids", "--threads=16"])), Some(16));
        assert_eq!(threads_flag(&strs(&["aids"])), None);
        assert_eq!(threads_flag(&strs(&["--threads", "bogus"])), None);
        assert_eq!(threads_flag(&strs(&["--threads"])), None);
    }
}
