//! Capture validation for `--telemetry` JSON-lines files — the library
//! behind the `validate_telemetry` CI gate.
//!
//! Split out of the binary so the flag parsing and the validation rules
//! are unit-testable. The binary maps [`parse_args`] + [`validate_capture`]
//! errors to a non-zero exit.

use serde_json::Value;

/// What to demand from a capture.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidateSpec {
    /// Capture path (first positional argument; `telemetry.jsonl` default).
    pub path: String,
    /// Events that must each appear at least once (exact name match).
    pub require_events: Vec<String>,
    /// Span-path substrings that must each match at least one span.
    pub require_spans: Vec<String>,
}

/// Default span requirements: the instrumented subsystems every figure
/// binary exercises. Serve captures override with `--require-spans`.
pub const DEFAULT_REQUIRED_SPANS: &[&str] = &["decompose", "model.forward", "matching."];

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// Parse one `--flag v1,v2` list. An empty or malformed list is an error:
/// a CI grep that silently requires nothing is worse than a failing one.
fn parse_list(flag: &str, raw: &str) -> Result<Vec<String>, String> {
    let names: Vec<String> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    if names.is_empty() {
        return Err(format!("{flag} given but the list is empty"));
    }
    for n in &names {
        if !valid_name(n) {
            return Err(format!(
                "{flag}: malformed name {n:?} (expected [A-Za-z0-9._-]+)"
            ));
        }
    }
    Ok(names)
}

/// Parse the validator's command line (everything after the program name).
pub fn parse_args(args: &[String]) -> Result<ValidateSpec, String> {
    let mut spec = ValidateSpec {
        path: "telemetry.jsonl".to_string(),
        require_events: Vec::new(),
        require_spans: DEFAULT_REQUIRED_SPANS
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
    };
    let mut positional = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let (flag, value) = if let Some(v) = a.strip_prefix("--require-events=") {
            ("--require-events", Some(v.to_string()))
        } else if a == "--require-events" {
            ("--require-events", it.next().cloned())
        } else if let Some(v) = a.strip_prefix("--require-spans=") {
            ("--require-spans", Some(v.to_string()))
        } else if a == "--require-spans" {
            ("--require-spans", it.next().cloned())
        } else if a.starts_with("--") {
            // Harness-level flags (--telemetry, --threads) are consumed by
            // init_telemetry; skip them and their value here.
            if a == "--telemetry" || a == "--threads" {
                it.next();
            }
            continue;
        } else {
            if positional.is_none() {
                positional = Some(a.clone());
            }
            continue;
        };
        let value = value.ok_or_else(|| format!("{flag} requires a value"))?;
        let list = parse_list(flag, &value)?;
        match flag {
            "--require-events" => spec.require_events = list,
            _ => spec.require_spans = list,
        }
    }
    if let Some(p) = positional {
        spec.path = p;
    }
    Ok(spec)
}

/// Counts reported on success.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CaptureSummary {
    /// Non-empty JSON lines.
    pub lines: usize,
    /// Span records.
    pub spans: usize,
    /// Point events.
    pub events: usize,
    /// Non-zero counters in the final snapshot.
    pub nonzero_counters: usize,
}

/// Validate a capture's text against `spec`. Every line must parse as a
/// JSON object with a known `type` tag; each `spec.require_spans` entry
/// must match (substring) some span path; each `spec.require_events` entry
/// must equal some event name; and the capture must end with a metrics
/// snapshot carrying at least one non-zero counter.
pub fn validate_capture(text: &str, spec: &ValidateSpec) -> Result<CaptureSummary, String> {
    let mut spans: Vec<String> = Vec::new();
    let mut events: Vec<String> = Vec::new();
    let mut last: Option<Value> = None;
    let mut n_lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("line {}: invalid JSON ({e}): {line}", i + 1))?;
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: missing \"type\" tag: {line}", i + 1))?;
        match ty {
            "span" => {
                let path = v
                    .get("path")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {}: span without path: {line}", i + 1))?;
                let us_ok = v
                    .get("us")
                    .and_then(Value::as_f64)
                    .is_some_and(|us| us >= 0.0);
                if !us_ok {
                    return Err(format!(
                        "line {}: span without non-negative \"us\": {line}",
                        i + 1
                    ));
                }
                spans.push(path.to_string());
            }
            "event" => {
                if let Some(name) = v.get("name").and_then(Value::as_str) {
                    events.push(name.to_string());
                }
            }
            "progress" | "snapshot" => {}
            other => return Err(format!("line {}: unknown type {other:?}: {line}", i + 1)),
        }
        n_lines += 1;
        last = Some(v);
    }
    let Some(last) = last else {
        return Err("empty capture".to_string());
    };

    for required in &spec.require_spans {
        if !spans.iter().any(|p| p.contains(required.as_str())) {
            return Err(format!(
                "no span matching {required:?} among {} spans",
                spans.len()
            ));
        }
    }
    for ev in &spec.require_events {
        if !events.iter().any(|e| e == ev) {
            return Err(format!(
                "required event {ev:?} never emitted ({} events captured)",
                events.len()
            ));
        }
    }

    if last.get("type").and_then(Value::as_str) != Some("snapshot") {
        return Err("capture must end with a metrics snapshot".to_string());
    }
    let counters = last
        .get("counters")
        .and_then(Value::as_object)
        .ok_or("snapshot without counters object")?;
    let nonzero = counters
        .iter()
        .filter(|(_, v)| v.as_u64().unwrap_or(0) > 0)
        .count();
    if nonzero == 0 {
        return Err(format!(
            "snapshot has no non-zero counters ({} total)",
            counters.len()
        ));
    }

    Ok(CaptureSummary {
        lines: n_lines,
        spans: spans.len(),
        events: events.len(),
        nonzero_counters: nonzero,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn defaults_without_flags() {
        let spec = parse_args(&args(&["cap.jsonl"])).unwrap();
        assert_eq!(spec.path, "cap.jsonl");
        assert!(spec.require_events.is_empty());
        assert_eq!(spec.require_spans.len(), DEFAULT_REQUIRED_SPANS.len());
    }

    #[test]
    fn require_events_parses_both_forms() {
        let a = parse_args(&args(&["--require-events", "a.b,c_d", "cap"])).unwrap();
        let b = parse_args(&args(&["--require-events=a.b,c_d", "cap"])).unwrap();
        assert_eq!(a.require_events, vec!["a.b", "c_d"]);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_require_events_is_an_error_not_absent() {
        // Regression: an empty list used to behave exactly like omitting
        // the flag, silently disabling the gate the CI job asked for.
        assert!(parse_args(&args(&["--require-events", "", "cap"])).is_err());
        assert!(parse_args(&args(&["--require-events=", "cap"])).is_err());
        assert!(parse_args(&args(&["--require-events", " , ,", "cap"])).is_err());
        assert!(parse_args(&args(&["--require-events"])).is_err());
    }

    #[test]
    fn malformed_event_names_are_rejected() {
        for bad in ["se rve.request", "ev!", "a,b c", "ok,b\tad"] {
            let res = parse_args(&args(&["--require-events", bad, "cap"]));
            assert!(res.is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn require_spans_overrides_defaults() {
        let spec = parse_args(&args(&[
            "--require-spans",
            "serve.request,serve.batch",
            "cap",
        ]))
        .unwrap();
        assert_eq!(spec.require_spans, vec!["serve.request", "serve.batch"]);
    }

    fn spec_for(text_events: &[&str], spans: &[&str]) -> ValidateSpec {
        ValidateSpec {
            path: String::new(),
            require_events: text_events.iter().map(|s| (*s).to_string()).collect(),
            require_spans: spans.iter().map(|s| (*s).to_string()).collect(),
        }
    }

    const GOOD: &str = concat!(
        r#"{"type":"span","path":"serve.request","us":12.5}"#,
        "\n",
        r#"{"type":"event","name":"serve.cache_hit","fields":{}}"#,
        "\n",
        r#"{"type":"snapshot","counters":{"serve.request":3}}"#,
        "\n"
    );

    #[test]
    fn good_capture_passes() {
        let spec = spec_for(&["serve.cache_hit"], &["serve.request"]);
        let sum = validate_capture(GOOD, &spec).unwrap();
        assert_eq!(sum.lines, 3);
        assert_eq!(sum.spans, 1);
        assert_eq!(sum.events, 1);
        assert_eq!(sum.nonzero_counters, 1);
    }

    #[test]
    fn missing_required_event_fails() {
        let spec = spec_for(&["serve.degraded"], &["serve.request"]);
        let err = validate_capture(GOOD, &spec).unwrap_err();
        assert!(err.contains("serve.degraded"), "{err}");
    }

    #[test]
    fn missing_required_span_fails() {
        let spec = spec_for(&[], &["matching."]);
        assert!(validate_capture(GOOD, &spec).is_err());
    }

    #[test]
    fn capture_must_end_with_snapshot() {
        let spec = spec_for(&[], &["serve."]);
        let text = r#"{"type":"span","path":"serve.request","us":1.0}"#;
        let err = validate_capture(text, &spec).unwrap_err();
        assert!(err.contains("snapshot"), "{err}");
    }

    #[test]
    fn all_zero_counters_fail() {
        let spec = spec_for(&[], &["serve."]);
        let text = concat!(
            r#"{"type":"span","path":"serve.request","us":1.0}"#,
            "\n",
            r#"{"type":"snapshot","counters":{"serve.request":0}}"#
        );
        assert!(validate_capture(text, &spec).is_err());
    }

    #[test]
    fn garbage_line_is_reported_with_its_number() {
        let spec = spec_for(&[], &[]);
        let err = validate_capture("{nope\n", &spec).unwrap_err();
        assert!(err.starts_with("line 1"), "{err}");
    }
}
