//! # alss-bench
//!
//! Shared harness for the figure/table reproduction binaries (one binary
//! per table and figure of §6 — see DESIGN.md's experiment index) and the
//! Criterion micro-benchmarks.
//!
//! The harness generates the synthetic Table 2 analogues and Table 3
//! workloads once and caches them as JSON under `bench_data/`, so repeated
//! figure runs skip ground-truth recomputation. Scale and fidelity are
//! controlled by environment variables:
//!
//! * `ALSS_SCALE` — dataset scale factor (default 0.25 of the DESIGN.md
//!   sizes; 1.0 for the full synthetic sizes);
//! * `ALSS_PER_SIZE` — labeled queries per query size (default 25);
//! * `ALSS_EPOCHS` — training epochs (default 40);
//! * `ALSS_FULL=1` — paper-fidelity model (3×64 GIN, 4-head attention)
//!   instead of the fast default (2×32, 2 heads).

// Test modules opt back out of the library panic/numeric policy: a panic
// IS the failure report there, and fixtures are tiny.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub mod evalkit;
pub mod scenario;
pub mod table;
pub mod telemetry;
pub mod validate;

pub use scenario::{
    bench_model_config, bench_train_config, epochs, full_fidelity, load_dataset, load_workload,
    per_size, scale, Scenario,
};
pub use table::TableWriter;
pub use telemetry::{init_telemetry, strip_run_flags, threads_flag, TelemetryGuard};
