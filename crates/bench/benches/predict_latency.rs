//! Criterion: LSS prediction latency vs query size (the learned-sketch
//! series of Figs. 8–9 — prediction cost depends only on the architecture
//! and query size, not on the data graph).

use alss_core::workload::LabeledQuery;
use alss_core::{LearnedSketch, SketchConfig, TrainConfig, Workload};
use alss_datasets::by_name;
use alss_datasets::queries::unlabeled_pool;
use alss_matching::{count_homomorphisms, Budget};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_predict(c: &mut Criterion) {
    let data = by_name("yeast", 0.1, 0).expect("dataset");
    // tiny training pass just to have realistic weights
    let train: Vec<LabeledQuery> = unlabeled_pool(&data, &[3, 4], 10, 0.0, 1)
        .into_iter()
        .filter_map(|g| {
            let cnt = count_homomorphisms(&data, &g, &Budget::new(2_000_000)).ok()?;
            Some(LabeledQuery::new(g, cnt.max(1)))
        })
        .collect();
    let mut cfg = SketchConfig::tiny();
    cfg.train = TrainConfig::quick(5);
    let (sketch, _) = LearnedSketch::train(&data, &Workload::from_queries(train), &cfg);

    let mut group = c.benchmark_group("lss_predict");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for size in [4usize, 8, 16, 32] {
        let Some(q) = unlabeled_pool(&data, &[size], 1, 0.0, 2 + size as u64).pop() else {
            continue;
        };
        let encoded = sketch.encode(&q);
        group.bench_with_input(BenchmarkId::new("encoded", size), &encoded, |b, eq| {
            b.iter(|| black_box(sketch.model().predict(eq).count()))
        });
        group.bench_with_input(BenchmarkId::new("end_to_end", size), &q, |b, q| {
            b.iter(|| black_box(sketch.estimate(q)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_predict);
criterion_main!(benches);
