//! Criterion: node-embedding pre-training throughput (the "Embedding"
//! column of Table 4) — ProNE vs DeepWalk on the label-augmented graph.

use alss_datasets::by_name;
use alss_embedding::prone::{prone, ProneConfig};
use alss_embedding::skipgram::SkipGramConfig;
use alss_embedding::{deepwalk, DeepWalkConfig};
use alss_graph::augmented::label_augmented_graph;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_embeddings(c: &mut Criterion) {
    let data = by_name("yeast", 0.1, 0).expect("dataset");
    let aug = label_augmented_graph(&data);
    let mut group = c.benchmark_group("embedding_pretrain");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(300));

    group.bench_function("prone_dim32", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(0);
            let cfg = ProneConfig {
                dim: 32,
                ..Default::default()
            };
            black_box(prone(&aug.graph, &cfg, &mut rng).len())
        })
    });
    group.bench_function("deepwalk_dim32", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(0);
            let cfg = DeepWalkConfig {
                walks_per_node: 2,
                walk_length: 10,
                skipgram: SkipGramConfig {
                    dim: 32,
                    epochs: 1,
                    ..Default::default()
                },
            };
            black_box(deepwalk(&aug.graph, &cfg, &mut rng).len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_embeddings);
criterion_main!(benches);
