//! Criterion: exact counting latency (the GFlow/GQL series of Figs. 8–9)
//! and the sequential-vs-parallel engine speedup.

use alss_datasets::by_name;
use alss_datasets::queries::unlabeled_pool;
use alss_matching::{
    count_homomorphisms, count_homomorphisms_parallel, count_isomorphisms, Budget,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_exact(c: &mut Criterion) {
    let data = by_name("yeast", 0.1, 0).expect("dataset");
    let queries = unlabeled_pool(&data, &[4, 6], 2, 0.0, 5);
    let mut group = c.benchmark_group("exact_count");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.sample_size(10);
    for q in &queries {
        let n = q.num_nodes();
        group.bench_with_input(BenchmarkId::new("hom_seq", n), q, |b, q| {
            b.iter(|| {
                let budget = Budget::new(100_000_000);
                black_box(count_homomorphisms(&data, q, &budget).unwrap_or(0))
            })
        });
        group.bench_with_input(BenchmarkId::new("hom_par", n), q, |b, q| {
            b.iter(|| {
                let budget = Budget::new(100_000_000);
                black_box(count_homomorphisms_parallel(&data, q, &budget).unwrap_or(0))
            })
        });
        group.bench_with_input(BenchmarkId::new("iso_seq", n), q, |b, q| {
            b.iter(|| {
                let budget = Budget::new(100_000_000);
                black_box(count_isomorphisms(&data, q, &budget).unwrap_or(0))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact);
criterion_main!(benches);
