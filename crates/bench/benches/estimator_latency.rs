//! Criterion: per-query estimation latency of the G-CARE baselines
//! (the baseline series of Fig. 8).

use alss_datasets::by_name;
use alss_datasets::queries::unlabeled_pool;
use alss_estimators::{
    BoundSketch, CardinalityEstimator, CharacteristicSets, CorrelatedSampling, JSub, LabelIndex,
    SumRdf, WanderJoin,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_estimators(c: &mut Criterion) {
    let data = by_name("yeast", 0.1, 0).expect("dataset");
    let idx = LabelIndex::new(&data);
    let cset = CharacteristicSets::new(&data);
    let sumrdf = SumRdf::new(&data);
    let cs = CorrelatedSampling::new(&data, 0.3, 7, 20_000_000);
    let wj = WanderJoin::new(&idx, 500);
    let jsub = JSub::new(&idx, 500);
    let bs = BoundSketch::new(&data);
    let estimators: Vec<&dyn CardinalityEstimator> = vec![&cset, &sumrdf, &cs, &wj, &jsub, &bs];

    let queries = unlabeled_pool(&data, &[4, 8], 2, 0.0, 3);
    let mut group = c.benchmark_group("estimator_latency");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for est in estimators {
        for (i, q) in queries.iter().enumerate() {
            group.bench_with_input(
                BenchmarkId::new(est.name(), format!("{}n_q{}", q.num_nodes(), i)),
                q,
                |b, q| {
                    let mut rng = SmallRng::seed_from_u64(9);
                    b.iter(|| black_box(est.estimate(q, &mut rng).count))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
