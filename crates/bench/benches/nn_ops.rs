//! Criterion: core autograd kernels (matmul forward/backward, GIN
//! aggregation, attention block) at LSS-realistic shapes.

use alss_nn::loss::mse_log_loss;
use alss_nn::{adjacency_from_edges, GinEncoder, Mat, ParamStore, SelfAttention, Tape};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_nn(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(0);
    let mut group = c.benchmark_group("nn_ops");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for n in [64usize, 128] {
        let a = Mat::from_vec(n, n, (0..n * n).map(|_| rng.gen::<f32>()).collect());
        let b = Mat::from_vec(n, n, (0..n * n).map(|_| rng.gen::<f32>()).collect());
        group.bench_with_input(BenchmarkId::new("matmul", n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul(&b)))
        });
    }

    // GIN forward+backward on a 10-node substructure, 64-dim features
    let mut store = ParamStore::new();
    let gin = GinEncoder::new(&mut store, "g", 64, 64, 3, 0, 0.0, &mut rng);
    let edges: Vec<(u32, u32)> = (1..10u32).map(|i| (i - 1, i)).collect();
    let adj = adjacency_from_edges(10, &edges);
    let feats = Mat::from_vec(10, 64, (0..640).map(|_| rng.gen::<f32>()).collect());
    group.bench_function("gin_fwd_bwd_10node_64d", |b| {
        b.iter(|| {
            let mut store = store.clone();
            let mut tape = Tape::new(true);
            let mut r = SmallRng::seed_from_u64(1);
            let x = tape.input(feats.clone());
            let h = gin.encode(&mut tape, &store, x, &adj, None, &mut r);
            let loss = mse_log_loss(&mut tape, h, &[0.5; 1]);
            tape.backward(loss, &mut store);
            black_box(
                store
                    .grad(store.ids().next().expect("store has params"))
                    .norm(),
            )
        })
    });

    // attention aggregation over 12 substructures
    let mut store2 = ParamStore::new();
    let att = SelfAttention::new(&mut store2, "a", 64, 64, 4, &mut rng);
    let h = Mat::from_vec(12, 64, (0..12 * 64).map(|_| rng.gen::<f32>()).collect());
    group.bench_function("attention_12x64", |b| {
        b.iter(|| {
            let mut tape = Tape::new(false);
            let hv = tape.input(h.clone());
            let (eq, _) = att.forward(&mut tape, &store2, hv);
            black_box(tape.value(eq).norm())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_nn);
criterion_main!(benches);
