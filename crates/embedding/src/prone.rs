//! ProNE-style embedding (Zhang et al., IJCAI'19): randomized tSVD
//! factorization followed by spectral propagation.
//!
//! ProNE's two stages are (1) an efficient sparse-matrix factorization
//! producing initial embeddings, and (2) *spectral propagation* — applying
//! a band-pass filter `g(L̃)` of the modulated graph Laplacian, expanded in
//! Chebyshev polynomials with Bessel-function coefficients, to incorporate
//! both local smoothing and global clustering signals.
//!
//! We reproduce both stages from scratch: stage 1 uses
//! [`crate::svd::randomized_svd`] on `Â = D^{-1/2}(A+I)D^{-1/2}` with the
//! embedding `U √Σ`; stage 2 runs the Chebyshev recursion
//! `T_{k+1}(L̃) = 2 L̃ T_k − T_{k−1}` on `L̃ = I − Â − μI` with coefficients
//! `c_k = 2(−1)^k J_k(θ)` (`J_k` = Bessel function of the first kind,
//! computed by its power series), matching ProNE's filter
//! `g(λ) = e^{-0.5[(λ-μ)^2-1]θ}` expansion.

use crate::embedding::Embedding;
use crate::sparse::SparseMatrix;
use crate::svd::randomized_svd;
use alss_graph::Graph;
use rand::Rng;

/// ProNE hyper-parameters (defaults follow the reference implementation).
#[derive(Clone, Copy, Debug)]
pub struct ProneConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Power iterations in the randomized SVD range finder.
    pub power_iters: usize,
    /// Chebyshev expansion order (the paper's implementation uses 10).
    pub order: usize,
    /// Band-pass center `μ`.
    pub mu: f32,
    /// Band-pass width `θ`.
    pub theta: f32,
}

impl Default for ProneConfig {
    fn default() -> Self {
        ProneConfig {
            dim: 64,
            power_iters: 2,
            order: 8,
            mu: 0.2,
            theta: 0.5,
        }
    }
}

/// Bessel function of the first kind `J_k(x)` by power series (adequate
/// for the small `k ≤ 16`, `|x| ≤ 2` regime of ProNE's coefficients).
pub fn bessel_j(k: usize, x: f64) -> f64 {
    let half = x / 2.0;
    let mut term = half.powi(i32::try_from(k).unwrap_or(i32::MAX));
    for m in 1..=k {
        term /= m as f64;
    }
    let mut sum = term;
    for m in 1..30 {
        term *= -(half * half) / (m as f64 * (m + k) as f64);
        sum += term;
        if term.abs() < 1e-16 {
            break;
        }
    }
    sum
}

/// Stage 2: Chebyshev spectral propagation of an embedding table.
pub fn spectral_propagate(
    g: &Graph,
    emb: &Embedding,
    order: usize,
    mu: f32,
    theta: f32,
) -> Embedding {
    let n = g.num_nodes();
    let dim = emb.dim();
    assert_eq!(emb.len(), n, "embedding/graph size mismatch");
    let a_hat = SparseMatrix::normalized_adjacency(g);
    let flat: Vec<f32> = (0..n).flat_map(|v| emb.vector(v).to_vec()).collect();

    // L̃ X = (I − Â − μI) X = (1−μ)X − ÂX
    let apply_l = |x: &[f32]| -> Vec<f32> {
        let ax = a_hat.spmm(x, dim);
        x.iter()
            .zip(&ax)
            .map(|(&xi, &axi)| (1.0 - mu) * xi - axi)
            .collect()
    };

    let mut t_prev = flat.clone(); // T_0 = X
    let mut t_cur = apply_l(&flat); // T_1 = L̃ X
                                    // Chebyshev coefficients are O(1); narrowing to f32 is intentional.
    #[allow(clippy::cast_possible_truncation)]
    let c0 = bessel_j(0, theta as f64) as f32;
    let mut acc: Vec<f32> = t_prev.iter().map(|&x| c0 * x).collect();
    for k in 1..=order {
        #[allow(clippy::cast_possible_truncation)] // same O(1) coefficient narrowing
        let ck = (2.0 * if k % 2 == 0 { 1.0 } else { -1.0 } * bessel_j(k, theta as f64)) as f32;
        for (a, &t) in acc.iter_mut().zip(&t_cur) {
            *a += ck * t;
        }
        if k < order {
            // T_{k+1} = 2 L̃ T_k − T_{k−1}
            let lt = apply_l(&t_cur);
            let t_next: Vec<f32> = lt.iter().zip(&t_prev).map(|(&l, &p)| 2.0 * l - p).collect();
            t_prev = std::mem::replace(&mut t_cur, t_next);
        }
    }

    // Row-normalize for scale stability.
    let mut out = acc;
    for v in 0..n {
        let row = &mut out[v * dim..(v + 1) * dim];
        let norm: f32 = row.iter().map(|&x| x * x).sum::<f32>().sqrt();
        if norm > 1e-12 {
            for x in row.iter_mut() {
                *x /= norm;
            }
        }
    }
    Embedding::new(dim, out)
}

/// Full ProNE pipeline: rSVD factorization + spectral propagation.
pub fn prone<R: Rng>(g: &Graph, cfg: &ProneConfig, rng: &mut R) -> Embedding {
    let n = g.num_nodes();
    assert!(n > 0, "empty graph");
    let dim = cfg.dim.min(n);
    let a_hat = SparseMatrix::normalized_adjacency(g);
    let svd = randomized_svd(&a_hat, dim, cfg.power_iters, rng);
    // E0 = U √Σ
    let mut e0 = vec![0.0f32; n * dim];
    for r in 0..n {
        for c in 0..dim {
            e0[r * dim + c] = svd.u[r * dim + c] * svd.sigma[c].sqrt();
        }
    }
    let initial = Embedding::new(dim, e0);
    spectral_propagate(g, &initial, cfg.order, cfg.mu, cfg.theta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::GraphBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn bessel_values_match_references() {
        // J_0(0.5) ≈ 0.938470, J_1(0.5) ≈ 0.242268, J_2(1.0) ≈ 0.114903
        assert!((bessel_j(0, 0.5) - 0.938470).abs() < 1e-5);
        assert!((bessel_j(1, 0.5) - 0.242268).abs() < 1e-5);
        assert!((bessel_j(2, 1.0) - 0.114903).abs() < 1e-5);
    }

    fn two_communities() -> Graph {
        // two K4s joined by one edge
        let mut b = GraphBuilder::new(8);
        for v in 0..8 {
            b.set_label(v, 0);
        }
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.add_edge(i, j);
                b.add_edge(i + 4, j + 4);
            }
        }
        b.add_edge(3, 4);
        b.build()
    }

    #[test]
    fn prone_separates_communities() {
        let g = two_communities();
        let mut rng = SmallRng::seed_from_u64(1);
        let cfg = ProneConfig {
            dim: 4,
            ..Default::default()
        };
        let emb = prone(&g, &cfg, &mut rng);
        assert_eq!(emb.len(), 8);
        let within = emb.cosine(0, 1);
        let across = emb.cosine(0, 6);
        assert!(
            within > across,
            "within {within} should exceed across {across}"
        );
    }

    #[test]
    fn propagation_preserves_shape_and_finiteness() {
        let g = two_communities();
        let initial = Embedding::new(3, (0..24).map(|i| (i as f32).sin()).collect());
        let out = spectral_propagate(&g, &initial, 8, 0.2, 0.5);
        assert_eq!(out.len(), 8);
        assert_eq!(out.dim(), 3);
        for v in 0..8 {
            assert!(out.vector(v).iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn dim_clamped_to_graph_size() {
        let mut b = GraphBuilder::new(3);
        for v in 0..3 {
            b.set_label(v, 0);
        }
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        let mut rng = SmallRng::seed_from_u64(2);
        let emb = prone(
            &g,
            &ProneConfig {
                dim: 16,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(emb.dim(), 3);
    }
}
