//! Random-walk corpus generation for skip-gram-based embeddings.

use alss_graph::{Graph, NodeId};
use rand::Rng;

/// Generate `walks_per_node` uniform random walks of length `walk_length`
/// from every node (DeepWalk corpus). Walks stop early at sinks.
pub fn uniform_walks<R: Rng>(
    g: &Graph,
    walks_per_node: usize,
    walk_length: usize,
    rng: &mut R,
) -> Vec<Vec<NodeId>> {
    let mut walks = Vec::with_capacity(g.num_nodes() * walks_per_node);
    for _ in 0..walks_per_node {
        for start in g.nodes() {
            let mut walk = Vec::with_capacity(walk_length);
            walk.push(start);
            let mut cur = start;
            for _ in 1..walk_length {
                let nbrs = g.neighbors(cur);
                if nbrs.is_empty() {
                    break;
                }
                cur = nbrs[rng.gen_range(0..nbrs.len())];
                walk.push(cur);
            }
            walks.push(walk);
        }
    }
    walks
}

/// Generate node2vec walks with return parameter `p` and in-out parameter
/// `q` (Grover & Leskovec, KDD'16), using rejection sampling over the
/// unnormalized transition weights:
///
/// * back to the previous node — weight `1/p`;
/// * to a common neighbor of the previous node — weight `1`;
/// * elsewhere — weight `1/q`.
pub fn biased_walks<R: Rng>(
    g: &Graph,
    walks_per_node: usize,
    walk_length: usize,
    p: f32,
    q: f32,
    rng: &mut R,
) -> Vec<Vec<NodeId>> {
    assert!(p > 0.0 && q > 0.0, "node2vec p/q must be positive");
    let w_ret = 1.0 / p;
    let w_out = 1.0 / q;
    let w_max = w_ret.max(1.0).max(w_out);
    let mut walks = Vec::with_capacity(g.num_nodes() * walks_per_node);
    for _ in 0..walks_per_node {
        for start in g.nodes() {
            let mut walk = Vec::with_capacity(walk_length);
            walk.push(start);
            let mut prev: Option<NodeId> = None;
            let mut cur = start;
            for _ in 1..walk_length {
                let nbrs = g.neighbors(cur);
                if nbrs.is_empty() {
                    break;
                }
                let next = match prev {
                    None => nbrs[rng.gen_range(0..nbrs.len())],
                    Some(pv) => {
                        // rejection sampling on the biased weights
                        loop {
                            let cand = nbrs[rng.gen_range(0..nbrs.len())];
                            let w = if cand == pv {
                                w_ret
                            } else if g.has_edge(cand, pv) {
                                1.0
                            } else {
                                w_out
                            };
                            if rng.gen::<f32>() * w_max <= w {
                                break cand;
                            }
                        }
                    }
                };
                prev = Some(cur);
                cur = next;
                walk.push(cur);
            }
            walks.push(walk);
        }
    }
    walks
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::builder::graph_from_edges;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn path() -> Graph {
        graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn walks_follow_edges() {
        let g = path();
        let mut rng = SmallRng::seed_from_u64(0);
        for walk in uniform_walks(&g, 2, 5, &mut rng) {
            for w in walk.windows(2) {
                assert!(g.has_edge(w[0], w[1]), "non-edge step {:?}", w);
            }
        }
    }

    #[test]
    fn corpus_size_and_start_coverage() {
        let g = path();
        let mut rng = SmallRng::seed_from_u64(1);
        let walks = uniform_walks(&g, 3, 4, &mut rng);
        assert_eq!(walks.len(), 3 * 4);
        let starts: std::collections::HashSet<_> = walks.iter().map(|w| w[0]).collect();
        assert_eq!(starts.len(), 4);
    }

    #[test]
    fn biased_walks_follow_edges_too() {
        let g = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]);
        let mut rng = SmallRng::seed_from_u64(2);
        for walk in biased_walks(&g, 2, 6, 0.5, 2.0, &mut rng) {
            for w in walk.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn high_p_discourages_backtracking() {
        // On a path graph, with huge p (tiny return weight), immediate
        // backtracks should be rarer than with tiny p.
        let g = path();
        let count_backtracks = |p: f32, seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let walks = biased_walks(&g, 20, 8, p, 1.0, &mut rng);
            walks
                .iter()
                .flat_map(|w| w.windows(3))
                .filter(|t| t[0] == t[2])
                .count()
        };
        let no_return = count_backtracks(10.0, 3);
        let returny = count_backtracks(0.1, 3);
        assert!(
            no_return < returny,
            "p=10 backtracks {no_return} !< p=0.1 backtracks {returny}"
        );
    }

    #[test]
    fn isolated_node_yields_singleton_walk() {
        let g = graph_from_edges(&[0, 0], &[]);
        let mut rng = SmallRng::seed_from_u64(4);
        for w in uniform_walks(&g, 1, 5, &mut rng) {
            assert_eq!(w.len(), 1);
        }
    }
}
