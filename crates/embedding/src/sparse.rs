//! Minimal sparse linear algebra for spectral embeddings: a CSR matrix
//! with sparse–dense products, plus graph-derived normalized operators.

use alss_graph::Graph;

/// An `n × n` sparse matrix in CSR form.
#[derive(Clone, Debug)]
pub struct SparseMatrix {
    n: usize,
    offsets: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl SparseMatrix {
    /// Build from per-row `(col, value)` lists.
    pub fn from_rows(rows: Vec<Vec<(u32, f32)>>) -> Self {
        let n = rows.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        offsets.push(0);
        for row in rows {
            for (c, v) in row {
                indices.push(c);
                values.push(v);
            }
            offsets.push(indices.len());
        }
        SparseMatrix {
            n,
            offsets,
            indices,
            values,
        }
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Symmetrically normalized adjacency with self loops:
    /// `Â = D^{-1/2} (A + I) D^{-1/2}` (degrees include the self loop).
    /// All eigenvalues lie in `[-1, 1]`; the operator underlying both the
    /// rSVD factorization stage and Chebyshev propagation.
    pub fn normalized_adjacency(g: &Graph) -> Self {
        let n = g.num_nodes();
        let deg: Vec<f32> = (0..n)
            .map(|v| g.degree(alss_graph::node_id(v)) as f32 + 1.0)
            .collect();
        let isq: Vec<f32> = deg.iter().map(|&d| 1.0 / d.sqrt()).collect();
        let rows = (0..n)
            .map(|v| {
                let vid = alss_graph::node_id(v);
                let mut row: Vec<(u32, f32)> = Vec::with_capacity(g.degree(vid) + 1);
                row.push((vid, isq[v] * isq[v]));
                for &u in g.neighbors(vid) {
                    row.push((u, isq[v] * isq[u as usize]));
                }
                row.sort_unstable_by_key(|&(c, _)| c);
                row
            })
            .collect();
        SparseMatrix::from_rows(rows)
    }

    /// `out = self · dense`, where `dense` is row-major `n × k`.
    pub fn spmm(&self, dense: &[f32], k: usize) -> Vec<f32> {
        assert_eq!(dense.len(), self.n * k, "dense operand shape mismatch");
        let mut out = vec![0.0f32; self.n * k];
        for r in 0..self.n {
            let orow = &mut out[r * k..(r + 1) * k];
            for e in self.offsets[r]..self.offsets[r + 1] {
                let c = self.indices[e] as usize;
                let v = self.values[e];
                let drow = &dense[c * k..(c + 1) * k];
                for (o, &d) in orow.iter_mut().zip(drow) {
                    *o += v * d;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::builder::graph_from_edges;

    #[test]
    fn spmm_identity_like() {
        // diagonal matrix doubles each row
        let m = SparseMatrix::from_rows(vec![vec![(0, 2.0)], vec![(1, 2.0)]]);
        let d = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(m.spmm(&d, 2), vec![2.0, 4.0, 6.0, 8.0]);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn normalized_adjacency_rows_sum_bounded() {
        let g = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let m = SparseMatrix::normalized_adjacency(&g);
        assert_eq!(m.dim(), 3);
        // K3 + self loops, all degrees 3: every entry 1/3, rows sum to 1
        let ones = vec![1.0f32; 3];
        let s = m.spmm(&ones, 1);
        for v in s {
            assert!((v - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn spectral_radius_at_most_one() {
        // power iteration on Â should not blow up
        let g = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]);
        let m = SparseMatrix::normalized_adjacency(&g);
        let mut x = vec![1.0f32, -0.5, 0.25, 0.9];
        for _ in 0..50 {
            x = m.spmm(&x, 1);
        }
        assert!(x.iter().all(|v| v.abs() <= 1.5));
    }
}
