//! Randomized truncated SVD of a sparse symmetric operator (Halko,
//! Martinsson & Tropp), built on Gram–Schmidt QR and a Jacobi eigensolver —
//! the factorization stage of ProNE.

use crate::sparse::SparseMatrix;
use rand::Rng;

/// Orthonormalize the `k` columns of a row-major `n × k` matrix in place
/// (modified Gram–Schmidt). Returns false if a column degenerated (rank
/// deficiency), in which case it is replaced by zeros.
pub fn gram_schmidt(y: &mut [f32], n: usize, k: usize) -> bool {
    let mut full_rank = true;
    for j in 0..k {
        // subtract projections on previous columns
        for p in 0..j {
            let dot: f32 = (0..n).map(|r| y[r * k + j] * y[r * k + p]).sum();
            for r in 0..n {
                y[r * k + j] -= dot * y[r * k + p];
            }
        }
        let norm: f32 = (0..n)
            .map(|r| y[r * k + j] * y[r * k + j])
            .sum::<f32>()
            .sqrt();
        if norm < 1e-8 {
            full_rank = false;
            for r in 0..n {
                y[r * k + j] = 0.0;
            }
        } else {
            for r in 0..n {
                y[r * k + j] /= norm;
            }
        }
    }
    full_rank
}

/// Jacobi eigendecomposition of a symmetric `k × k` matrix (row-major).
/// Returns `(eigenvalues, eigenvectors)` with eigenvectors in columns,
/// sorted by descending eigenvalue.
pub fn jacobi_eigen(a: &[f32], k: usize, sweeps: usize) -> (Vec<f32>, Vec<f32>) {
    assert_eq!(a.len(), k * k, "matrix shape");
    let mut m: Vec<f64> = a.iter().map(|&x| x as f64).collect();
    let mut v = vec![0.0f64; k * k];
    for i in 0..k {
        v[i * k + i] = 1.0;
    }
    for _ in 0..sweeps {
        let mut off = 0.0;
        for p in 0..k {
            for q in (p + 1)..k {
                off += m[p * k + q].abs();
            }
        }
        if off < 1e-12 {
            break;
        }
        for p in 0..k {
            for q in (p + 1)..k {
                let apq = m[p * k + q];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = m[p * k + p];
                let aqq = m[q * k + q];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // rotate rows/cols p and q
                for i in 0..k {
                    let aip = m[i * k + p];
                    let aiq = m[i * k + q];
                    m[i * k + p] = c * aip - s * aiq;
                    m[i * k + q] = s * aip + c * aiq;
                }
                for i in 0..k {
                    let api = m[p * k + i];
                    let aqi = m[q * k + i];
                    m[p * k + i] = c * api - s * aqi;
                    m[q * k + i] = s * api + c * aqi;
                }
                for i in 0..k {
                    let vip = v[i * k + p];
                    let viq = v[i * k + q];
                    v[i * k + p] = c * vip - s * viq;
                    v[i * k + q] = s * vip + c * viq;
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&i, &j| {
        m[j * k + j]
            .partial_cmp(&m[i * k + i])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // eigenvalues/eigenvectors of a normalized operator are O(1):
    // narrowing back to the crate's working precision is intentional
    #[allow(clippy::cast_possible_truncation)]
    let vals: Vec<f32> = order.iter().map(|&i| m[i * k + i] as f32).collect();
    let mut vecs = vec![0.0f32; k * k];
    for (newc, &oldc) in order.iter().enumerate() {
        for r in 0..k {
            #[allow(clippy::cast_possible_truncation)] // same O(1) narrowing
            {
                vecs[r * k + newc] = v[r * k + oldc] as f32;
            }
        }
    }
    (vals, vecs)
}

/// Result of [`randomized_svd`]: `A ≈ U diag(σ) Vᵀ` (only `U` and `σ` are
/// materialized — embeddings need `U √σ`).
pub struct TruncatedSvd {
    /// Row-major `n × k` left singular vectors.
    pub u: Vec<f32>,
    /// Singular values, descending.
    pub sigma: Vec<f32>,
    /// Rank requested.
    pub k: usize,
}

/// Randomized truncated SVD of a *symmetric* sparse matrix.
pub fn randomized_svd<R: Rng>(
    a: &SparseMatrix,
    k: usize,
    power_iters: usize,
    rng: &mut R,
) -> TruncatedSvd {
    let n = a.dim();
    assert!(k >= 1 && k <= n, "rank k out of range");
    // Range finder: Y = A Ω, with optional power iterations (A is symmetric).
    let omega: Vec<f32> = (0..n * k).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect();
    let mut y = a.spmm(&omega, k);
    for _ in 0..power_iters {
        gram_schmidt(&mut y, n, k);
        y = a.spmm(&y, k);
    }
    gram_schmidt(&mut y, n, k);
    let q = y; // n × k, orthonormal columns

    // B = Qᵀ A  (symmetric A ⇒ Bᵀ = A Q, n × k).
    let bt = a.spmm(&q, k);
    // M = B Bᵀ = BtᵀBt... careful: Bt = A Q (n × k) = Bᵀ, so
    // M = Bᵀᵀ Bᵀ? We need B Bᵀ (k × k) = (A Q)ᵀ (A Q).
    let mut m = vec![0.0f32; k * k];
    for r in 0..n {
        let row = &bt[r * k..(r + 1) * k];
        for i in 0..k {
            for j in i..k {
                m[i * k + j] += row[i] * row[j];
            }
        }
    }
    for i in 0..k {
        for j in 0..i {
            m[i * k + j] = m[j * k + i];
        }
    }
    let (vals, vecs) = jacobi_eigen(&m, k, 30);
    let sigma: Vec<f32> = vals.iter().map(|&l| l.max(0.0).sqrt()).collect();

    // U = Q · U_B where U_B columns are eigenvectors of B Bᵀ... note
    // B = U_B Σ V_Bᵀ with U_B ∈ ℝ^{k×k} the eigvecs of B Bᵀ = M.
    let mut u = vec![0.0f32; n * k];
    for r in 0..n {
        for c in 0..k {
            let mut s = 0.0;
            for t in 0..k {
                s += q[r * k + t] * vecs[t * k + c];
            }
            u[r * k + c] = s;
        }
    }
    TruncatedSvd { u, sigma, k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn gram_schmidt_orthonormalizes() {
        let n = 4;
        let k = 2;
        let mut y = vec![1.0, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0];
        assert!(gram_schmidt(&mut y, n, k));
        let dot: f32 = (0..n).map(|r| y[r * k] * y[r * k + 1]).sum();
        assert!(dot.abs() < 1e-5);
        let n0: f32 = (0..n).map(|r| y[r * k] * y[r * k]).sum();
        assert!((n0 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn jacobi_diagonalizes_known_matrix() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1
        let (vals, vecs) = jacobi_eigen(&[2.0, 1.0, 1.0, 2.0], 2, 20);
        assert!((vals[0] - 3.0).abs() < 1e-4);
        assert!((vals[1] - 1.0).abs() < 1e-4);
        // eigenvector for λ=3 is (1,1)/√2 up to sign
        let v0 = (vecs[0], vecs[2]);
        assert!((v0.0.abs() - std::f32::consts::FRAC_1_SQRT_2).abs() < 1e-3);
        assert!((v0.0 - v0.1).abs() < 1e-3 || (v0.0 + v0.1).abs() < 1e-3);
    }

    #[test]
    fn rsvd_recovers_dominant_structure() {
        // Â of two disjoint triangles: top singular vectors separate blocks
        use alss_graph::builder::graph_from_edges;
        let g = graph_from_edges(
            &[0, 0, 0, 0, 0, 0],
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        );
        let a = SparseMatrix::normalized_adjacency(&g);
        let mut rng = SmallRng::seed_from_u64(0);
        let svd = randomized_svd(&a, 2, 3, &mut rng);
        // both leading singular values should be ≈ 1 (two components)
        assert!((svd.sigma[0] - 1.0).abs() < 0.05, "{:?}", svd.sigma);
        assert!((svd.sigma[1] - 1.0).abs() < 0.05, "{:?}", svd.sigma);
        // within a component, U rows coincide; across, they differ
        let row = |r: usize| (svd.u[r * 2], svd.u[r * 2 + 1]);
        let d01 = (row(0).0 - row(1).0).abs() + (row(0).1 - row(1).1).abs();
        let d03 = (row(0).0 - row(3).0).abs() + (row(0).1 - row(3).1).abs();
        assert!(d01 < 1e-3, "same-block rows should match: {d01}");
        assert!(d03 > 1e-2, "cross-block rows should differ: {d03}");
    }
}
