//! The trained embedding table.

use serde::{Deserialize, Serialize};

/// A dense `n × dim` node-embedding table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Embedding {
    dim: usize,
    data: Vec<f32>,
}

impl Embedding {
    /// Build from a flat row-major table.
    pub fn new(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "embedding dim must be positive");
        assert_eq!(data.len() % dim, 0, "table length not divisible by dim");
        Embedding { dim, data }
    }

    /// All-zeros table for `n` nodes.
    pub fn zeros(n: usize, dim: usize) -> Self {
        Embedding {
            dim,
            data: vec![0.0; n * dim],
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of embedded nodes.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Vector of node `v`.
    #[inline]
    pub fn vector(&self, v: usize) -> &[f32] {
        &self.data[v * self.dim..(v + 1) * self.dim]
    }

    /// Mutable vector of node `v`.
    #[inline]
    pub fn vector_mut(&mut self, v: usize) -> &mut [f32] {
        &mut self.data[v * self.dim..(v + 1) * self.dim]
    }

    /// Cosine similarity between two nodes' vectors (0 when either is 0).
    pub fn cosine(&self, a: usize, b: usize) -> f32 {
        let (va, vb) = (self.vector(a), self.vector(b));
        let dot: f32 = va.iter().zip(vb).map(|(&x, &y)| x * y).sum();
        let na: f32 = va.iter().map(|&x| x * x).sum::<f32>().sqrt();
        let nb: f32 = vb.iter().map(|&x| x * x).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// Sum of the vectors of `nodes` (used by LSS-emb to encode a query
    /// node as the sum of its labels' embeddings).
    pub fn sum_of(&self, nodes: &[usize]) -> Vec<f32> {
        let mut out = vec![0.0; self.dim];
        for &v in nodes {
            for (o, &x) in out.iter_mut().zip(self.vector(v)) {
                *o += x;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = Embedding::new(2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        assert_eq!(e.len(), 3);
        assert_eq!(e.dim(), 2);
        assert_eq!(e.vector(1), &[0.0, 1.0]);
    }

    #[test]
    fn cosine_similarity() {
        let e = Embedding::new(2, vec![1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 0.0]);
        assert!((e.cosine(0, 2) - 1.0).abs() < 1e-6);
        assert!(e.cosine(0, 1).abs() < 1e-6);
        assert_eq!(e.cosine(0, 3), 0.0);
    }

    #[test]
    fn sum_of_vectors() {
        let e = Embedding::new(2, vec![1.0, 2.0, 10.0, 20.0]);
        assert_eq!(e.sum_of(&[0, 1]), vec![11.0, 22.0]);
        assert_eq!(e.sum_of(&[]), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_table_rejected() {
        let _ = Embedding::new(2, vec![1.0, 2.0, 3.0]);
    }
}
