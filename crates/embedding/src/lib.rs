//! # alss-embedding
//!
//! From-scratch node-embedding pre-training for the LSS embedding-based
//! feature encoding (§4.3). The paper pre-trains node embeddings on the
//! *label-augmented graph* `G_L` with a scalable, task-independent method
//! (it evaluates DeepWalk, node2vec, ProNE and NRP, choosing ProNE); LSS
//! then encodes a query node as the sum of its labels' embeddings.
//!
//! This crate implements three of those methods without external ML
//! dependencies:
//!
//! * [`deepwalk`] — uniform random walks + skip-gram with negative
//!   sampling ([`skipgram`]);
//! * [`node2vec`] — p/q-biased second-order walks over the same skip-gram
//!   trainer;
//! * [`prone`] — a ProNE-style two-stage method: randomized truncated SVD
//!   of the normalized adjacency ([`svd`]) followed by Chebyshev spectral
//!   propagation ([`prone::spectral_propagate`]).
//!
//! NRP is omitted: the paper selects ProNE for LSS-emb, and the other
//! methods exist here to reproduce the "we tried 4 embeddings" comparison
//! (ablation bench `ablation_embedding`).
//!
//! ```
//! use alss_embedding::prone::{prone, ProneConfig};
//! use alss_graph::GraphBuilder;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! // two triangles joined by a bridge
//! let mut b = GraphBuilder::new(6);
//! for v in 0..6 { b.set_label(v, 0); }
//! b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
//! b.add_edge(3, 4).add_edge(4, 5).add_edge(3, 5);
//! b.add_edge(2, 3);
//! let g = b.build();
//!
//! let mut rng = SmallRng::seed_from_u64(0);
//! let emb = prone(&g, &ProneConfig { dim: 4, ..Default::default() }, &mut rng);
//! assert_eq!(emb.len(), 6);
//! assert_eq!(emb.dim(), 4);
//! ```

// Test modules opt back out of the library panic/numeric policy: a panic
// IS the failure report there, and fixtures are tiny.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub mod deepwalk;
pub mod embedding;
pub mod node2vec;
pub mod prone;
pub mod skipgram;
pub mod sparse;
pub mod svd;
pub mod walks;

pub use deepwalk::{deepwalk, DeepWalkConfig};
pub use embedding::Embedding;
pub use node2vec::{node2vec, Node2VecConfig};
pub use prone::{prone, ProneConfig};
