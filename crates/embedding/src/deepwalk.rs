//! DeepWalk (Perozzi et al., KDD'14): uniform random walks + SGNS.

use crate::embedding::Embedding;
use crate::skipgram::{train_skipgram, SkipGramConfig};
use crate::walks::uniform_walks;
use alss_graph::Graph;
use rand::Rng;

/// DeepWalk hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct DeepWalkConfig {
    /// Walks started per node.
    pub walks_per_node: usize,
    /// Steps per walk.
    pub walk_length: usize,
    /// Skip-gram settings.
    pub skipgram: SkipGramConfig,
}

impl Default for DeepWalkConfig {
    fn default() -> Self {
        DeepWalkConfig {
            walks_per_node: 10,
            walk_length: 40,
            skipgram: SkipGramConfig::default(),
        }
    }
}

/// Train DeepWalk embeddings for every node of `g`.
pub fn deepwalk<R: Rng>(g: &Graph, cfg: &DeepWalkConfig, rng: &mut R) -> Embedding {
    let walks = uniform_walks(g, cfg.walks_per_node, cfg.walk_length, rng);
    train_skipgram(g.num_nodes(), &walks, &cfg.skipgram, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::GraphBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Barbell: two K5 cliques joined by one bridge edge.
    fn barbell() -> Graph {
        let mut b = GraphBuilder::new(10);
        for v in 0..10 {
            b.set_label(v, 0);
        }
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                b.add_edge(i, j);
                b.add_edge(i + 5, j + 5);
            }
        }
        b.add_edge(4, 5);
        b.build()
    }

    #[test]
    fn deepwalk_places_cluster_members_nearby() {
        let g = barbell();
        let mut rng = SmallRng::seed_from_u64(9);
        let cfg = DeepWalkConfig {
            walks_per_node: 40,
            walk_length: 12,
            skipgram: SkipGramConfig {
                dim: 16,
                window: 3,
                negatives: 4,
                lr: 0.05,
                epochs: 4,
            },
        };
        let emb = deepwalk(&g, &cfg, &mut rng);
        assert_eq!(emb.len(), 10);
        // Average similarity among non-bridge clique-A pairs vs. across
        // cliques (bridge endpoints 4 and 5 excluded).
        let within_pairs = [(0usize, 1usize), (0, 2), (1, 3), (2, 3)];
        let across_pairs = [(0usize, 6usize), (1, 7), (2, 8), (3, 9)];
        let avg = |pairs: &[(usize, usize)]| {
            pairs.iter().map(|&(a, b)| emb.cosine(a, b)).sum::<f32>() / pairs.len() as f32
        };
        let within = avg(&within_pairs);
        let across = avg(&across_pairs);
        assert!(within > across, "within {within} vs across {across}");
    }
}
