//! Skip-gram with negative sampling (SGNS), hand-rolled SGD.
//!
//! Shared by DeepWalk and node2vec: the walk corpus provides
//! (center, context) pairs within a window; negatives are drawn from the
//! unigram distribution raised to the 3/4 power (word2vec's heuristic).

use crate::embedding::Embedding;
use alss_graph::NodeId;
use rand::Rng;

/// SGNS hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct SkipGramConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Initial learning rate (linearly decayed to 1e-4 · lr).
    pub lr: f32,
    /// Training epochs over the corpus.
    pub epochs: usize,
}

impl Default for SkipGramConfig {
    fn default() -> Self {
        SkipGramConfig {
            dim: 64,
            window: 5,
            negatives: 5,
            lr: 0.025,
            epochs: 2,
        }
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Alias sampler over the ^0.75-smoothed unigram distribution.
struct NegativeTable {
    table: Vec<NodeId>,
}

impl NegativeTable {
    fn new(num_nodes: usize, walks: &[Vec<NodeId>]) -> Self {
        let mut freq = vec![0u64; num_nodes];
        for w in walks {
            for &v in w {
                freq[v as usize] += 1;
            }
        }
        let pow: Vec<f64> = freq.iter().map(|&f| (f as f64).powf(0.75)).collect();
        let total: f64 = pow.iter().sum();
        let size = (num_nodes * 10).clamp(1024, 10_000_000);
        let mut table = Vec::with_capacity(size);
        if total == 0.0 {
            table.push(0);
            return NegativeTable { table };
        }
        for (v, &p) in pow.iter().enumerate() {
            // p/total ∈ [0, 1], so cnt ≤ size: no truncation possible
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let cnt = ((p / total) * size as f64).round() as usize;
            for _ in 0..cnt.max(if p > 0.0 { 1 } else { 0 }) {
                table.push(alss_graph::node_id(v));
            }
        }
        if table.is_empty() {
            table.push(0);
        }
        NegativeTable { table }
    }

    #[inline]
    fn sample<R: Rng>(&self, rng: &mut R) -> NodeId {
        self.table[rng.gen_range(0..self.table.len())]
    }
}

/// Train SGNS embeddings for `num_nodes` nodes from a walk corpus.
pub fn train_skipgram<R: Rng>(
    num_nodes: usize,
    walks: &[Vec<NodeId>],
    cfg: &SkipGramConfig,
    rng: &mut R,
) -> Embedding {
    assert!(num_nodes > 0, "no nodes to embed");
    let dim = cfg.dim;
    // input (center) and output (context) tables
    let scale = 0.5 / dim as f32;
    let mut win: Vec<f32> = (0..num_nodes * dim)
        .map(|_| (rng.gen::<f32>() - 0.5) * scale)
        .collect();
    let mut wout: Vec<f32> = vec![0.0; num_nodes * dim];
    let negs = NegativeTable::new(num_nodes, walks);

    let total_steps = (cfg.epochs * walks.iter().map(|w| w.len()).sum::<usize>()).max(1);
    let mut step = 0usize;
    let mut grad = vec![0.0f32; dim];

    for _ in 0..cfg.epochs {
        for walk in walks {
            for (i, &center) in walk.iter().enumerate() {
                step += 1;
                // Progress is computed in f64 so large step counts (beyond
                // f32's 24-bit mantissa) don't truncate; only the ratio in
                // [0, 1] is narrowed.
                #[allow(clippy::cast_possible_truncation)] // ratio ∈ [0, 1]
                let progress = (step as f64 / total_steps as f64) as f32;
                let lr = cfg.lr * (1.0 - progress).max(1e-4);
                let lo = i.saturating_sub(cfg.window);
                let hi = (i + cfg.window + 1).min(walk.len());
                for &context in &walk[lo..hi] {
                    if context == center {
                        continue;
                    }
                    let c = center as usize * dim;
                    grad.iter_mut().for_each(|g| *g = 0.0);
                    // positive + negatives
                    for k in 0..=cfg.negatives {
                        let (target, label) = if k == 0 {
                            (context as usize, 1.0)
                        } else {
                            (negs.sample(rng) as usize, 0.0)
                        };
                        if k > 0 && target == context as usize {
                            continue;
                        }
                        let t = target * dim;
                        let dot: f32 = win[c..c + dim]
                            .iter()
                            .zip(&wout[t..t + dim])
                            .map(|(&a, &b)| a * b)
                            .sum();
                        let g = (label - sigmoid(dot)) * lr;
                        for d in 0..dim {
                            grad[d] += g * wout[t + d];
                            wout[t + d] += g * win[c + d];
                        }
                    }
                    for d in 0..dim {
                        win[c + d] += grad[d];
                    }
                }
            }
        }
    }
    Embedding::new(dim, win)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Two disjoint cliques: nodes of the same clique should embed closer
    /// than nodes across cliques.
    #[test]
    fn sgns_separates_communities() {
        // corpus: walks that stay within {0,1,2} or {3,4,5}
        let mut rng = SmallRng::seed_from_u64(0);
        let mut walks = Vec::new();
        for _ in 0..200 {
            let base = if rng.gen::<bool>() { 0u32 } else { 3 };
            let walk: Vec<NodeId> = (0..8).map(|_| base + rng.gen_range(0u32..3)).collect();
            walks.push(walk);
        }
        let cfg = SkipGramConfig {
            dim: 16,
            window: 3,
            negatives: 4,
            lr: 0.05,
            epochs: 3,
        };
        let emb = train_skipgram(6, &walks, &cfg, &mut rng);
        let within = emb.cosine(0, 1);
        let across = emb.cosine(0, 4);
        assert!(
            within > across,
            "within-community sim {within} should beat across {across}"
        );
    }

    #[test]
    fn output_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        let walks = vec![vec![0, 1, 0, 1]];
        let emb = train_skipgram(2, &walks, &SkipGramConfig::default(), &mut rng);
        assert_eq!(emb.len(), 2);
        assert_eq!(emb.dim(), 64);
        assert!(emb.vector(0).iter().all(|x| x.is_finite()));
    }

    #[test]
    fn empty_corpus_is_harmless() {
        let mut rng = SmallRng::seed_from_u64(2);
        let emb = train_skipgram(3, &[], &SkipGramConfig::default(), &mut rng);
        assert_eq!(emb.len(), 3);
    }
}
