//! node2vec (Grover & Leskovec, KDD'16): p/q-biased walks + SGNS.

use crate::embedding::Embedding;
use crate::skipgram::{train_skipgram, SkipGramConfig};
use crate::walks::biased_walks;
use alss_graph::Graph;
use rand::Rng;

/// node2vec hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct Node2VecConfig {
    /// Return parameter `p` (large ⇒ avoid revisiting).
    pub p: f32,
    /// In-out parameter `q` (small ⇒ DFS-like exploration).
    pub q: f32,
    /// Walks started per node.
    pub walks_per_node: usize,
    /// Steps per walk.
    pub walk_length: usize,
    /// Skip-gram settings.
    pub skipgram: SkipGramConfig,
}

impl Default for Node2VecConfig {
    fn default() -> Self {
        Node2VecConfig {
            p: 1.0,
            q: 0.5,
            walks_per_node: 10,
            walk_length: 40,
            skipgram: SkipGramConfig::default(),
        }
    }
}

/// Train node2vec embeddings for every node of `g`.
pub fn node2vec<R: Rng>(g: &Graph, cfg: &Node2VecConfig, rng: &mut R) -> Embedding {
    let walks = biased_walks(g, cfg.walks_per_node, cfg.walk_length, cfg.p, cfg.q, rng);
    train_skipgram(g.num_nodes(), &walks, &cfg.skipgram, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::GraphBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn node2vec_runs_and_produces_finite_vectors() {
        let mut b = GraphBuilder::new(8);
        for v in 0..8 {
            b.set_label(v, 0);
        }
        for v in 0..8u32 {
            b.add_edge(v, (v + 1) % 8);
        }
        let g = b.build();
        let mut rng = SmallRng::seed_from_u64(5);
        let cfg = Node2VecConfig {
            walks_per_node: 5,
            walk_length: 8,
            skipgram: SkipGramConfig {
                dim: 8,
                epochs: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let emb = node2vec(&g, &cfg, &mut rng);
        assert_eq!(emb.len(), 8);
        assert_eq!(emb.dim(), 8);
        for v in 0..8 {
            assert!(emb.vector(v).iter().all(|x| x.is_finite()));
        }
    }
}
