//! Property tests for the embedding pipelines: output validity across
//! random graphs, spectral-operator invariants, and walk correctness.

// Test code opts back out of the library panic/numeric policy: a panic IS
// the failure report here, and fixtures are tiny.
#![allow(
    clippy::unwrap_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use alss_embedding::prone::{bessel_j, prone, spectral_propagate, ProneConfig};
use alss_embedding::walks::{biased_walks, uniform_walks};
use alss_embedding::Embedding;
use alss_graph::{Graph, GraphBuilder};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (2usize..=20).prop_flat_map(|n| {
        proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 1..=3 * n).prop_map(
            move |edges| {
                let mut b = GraphBuilder::new(n);
                for v in 0..n as u32 {
                    b.set_label(v, 0);
                }
                for (u, v) in edges {
                    if u != v {
                        b.add_edge(u, v);
                    }
                }
                b.build()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prone_embeddings_are_finite_unit_rows(g in arbitrary_graph(), seed in 0u64..50) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cfg = ProneConfig { dim: 4, ..Default::default() };
        let emb = prone(&g, &cfg, &mut rng);
        prop_assert_eq!(emb.len(), g.num_nodes());
        for v in 0..emb.len() {
            let norm: f32 = emb.vector(v).iter().map(|x| x * x).sum::<f32>().sqrt();
            prop_assert!(norm.is_finite());
            // propagation row-normalizes (or leaves a zero row)
            prop_assert!(norm < 1.0 + 1e-4);
        }
    }

    #[test]
    fn spectral_propagation_preserves_shape(g in arbitrary_graph(), dim in 1usize..5) {
        let n = g.num_nodes();
        let initial = Embedding::new(
            dim,
            (0..n * dim).map(|i| ((i * 37 % 11) as f32 - 5.0) / 5.0).collect(),
        );
        let out = spectral_propagate(&g, &initial, 6, 0.2, 0.5);
        prop_assert_eq!(out.len(), n);
        prop_assert_eq!(out.dim(), dim);
        for v in 0..n {
            prop_assert!(out.vector(v).iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn uniform_walks_only_traverse_edges(g in arbitrary_graph(), seed in 0u64..50) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for walk in uniform_walks(&g, 1, 6, &mut rng) {
            for w in walk.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn biased_walks_only_traverse_edges(g in arbitrary_graph(), seed in 0u64..50) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for walk in biased_walks(&g, 1, 6, 0.5, 2.0, &mut rng) {
            for w in walk.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn bessel_recurrence_holds(k in 1usize..8) {
        // J_{k-1}(x) + J_{k+1}(x) = (2k/x) J_k(x)
        let x = 0.7f64;
        let lhs = bessel_j(k - 1, x) + bessel_j(k + 1, x);
        let rhs = (2.0 * k as f64 / x) * bessel_j(k, x);
        prop_assert!((lhs - rhs).abs() < 1e-10, "{} vs {}", lhs, rhs);
    }
}
