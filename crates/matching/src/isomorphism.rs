//! Exact subgraph-isomorphism counting (§2): injective homomorphisms.

use crate::budget::{Budget, BudgetExceeded};
use crate::engine;
use alss_graph::Graph;

/// Count subgraph isomorphisms of `query` into `data` (injective
/// label/edge-preserving functions). Like the paper — and GraphQL, which it
/// uses for ground truth — we count *embeddings* (functions), not
/// automorphism-deduplicated images.
pub fn count_isomorphisms(
    data: &Graph,
    query: &Graph,
    budget: &Budget,
) -> Result<u64, BudgetExceeded> {
    engine::count(data, query, budget, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_homomorphisms;
    use alss_graph::builder::graph_from_edges;
    use alss_graph::{Graph, GraphBuilder, WILDCARD};

    fn unlimited() -> Budget {
        Budget::unlimited()
    }

    fn triangle() -> Graph {
        graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)])
    }

    /// Complete graph K4, unlabeled-ish (all label 0).
    fn k4() -> Graph {
        graph_from_edges(
            &[0, 0, 0, 0],
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
        )
    }

    #[test]
    fn triangle_embeddings_in_k4() {
        // #injective maps of K3 into K4 = 4 * 3 * 2 = 24
        let q = triangle();
        assert_eq!(count_isomorphisms(&k4(), &q, &unlimited()).unwrap(), 24);
    }

    #[test]
    fn path_embeddings_exclude_folded_maps() {
        let d = triangle();
        let q = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
        // hom = 12 but injective only 6 (paths of length 2 in K3)
        assert_eq!(count_isomorphisms(&d, &q, &unlimited()).unwrap(), 6);
        assert_eq!(count_homomorphisms(&d, &q, &unlimited()).unwrap(), 12);
    }

    #[test]
    fn iso_count_never_exceeds_hom_count() {
        let d = k4();
        for (labels, edges) in [
            (vec![0, 0], vec![(0u32, 1u32)]),
            (vec![0, 0, 0], vec![(0, 1), (1, 2)]),
            (vec![0, 0, 0, 0], vec![(0, 1), (1, 2), (2, 3), (0, 3)]),
        ] {
            let q = graph_from_edges(&labels, &edges);
            let iso = count_isomorphisms(&d, &q, &unlimited()).unwrap();
            let hom = count_homomorphisms(&d, &q, &unlimited()).unwrap();
            assert!(iso <= hom, "iso {iso} > hom {hom}");
        }
    }

    #[test]
    fn square_not_embeddable_in_triangle() {
        let d = triangle();
        let q = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        assert_eq!(count_isomorphisms(&d, &q, &unlimited()).unwrap(), 0);
    }

    #[test]
    fn labeled_star_counts() {
        // data star: center 0 (label 9) with 3 leaves labeled 1,1,2
        let d = graph_from_edges(&[9, 1, 1, 2], &[(0, 1), (0, 2), (0, 3)]);
        // query star: center label 9, two leaves labeled 1 and wildcard
        let q = graph_from_edges(&[9, 1, WILDCARD], &[(0, 1), (0, 2)]);
        // center fixed, leaf1 ∈ {1,2}, leaf2 ∈ remaining {1,2,3}\{leaf1} → 2*2
        assert_eq!(count_isomorphisms(&d, &q, &unlimited()).unwrap(), 4);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let q = triangle();
        let b = Budget::new(1);
        assert_eq!(count_isomorphisms(&k4(), &q, &b), Err(BudgetExceeded));
    }

    #[test]
    fn automorphisms_counted_as_distinct_embeddings() {
        // K3 into K3: 3! embeddings
        let d = triangle();
        let q = triangle();
        assert_eq!(count_isomorphisms(&d, &q, &unlimited()).unwrap(), 6);
    }

    #[test]
    fn edge_labels_respected_injectively() {
        let mut b = GraphBuilder::new(4);
        for v in 0..4 {
            b.set_label(v, 0);
        }
        b.add_labeled_edge(0, 1, 1)
            .add_labeled_edge(1, 2, 1)
            .add_labeled_edge(2, 3, 2);
        let d = b.build();
        let mut qb = GraphBuilder::new(3);
        for v in 0..3 {
            qb.set_label(v, 0);
        }
        qb.add_labeled_edge(0, 1, 1).add_labeled_edge(1, 2, 1);
        let q = qb.build();
        // injective paths using two label-1 edges: 0-1-2 and 2-1-0 → 2
        assert_eq!(count_isomorphisms(&d, &q, &unlimited()).unwrap(), 2);
    }
}
