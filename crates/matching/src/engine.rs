//! Shared backtracking engine behind the homomorphism and isomorphism
//! counters. Kept private; use the `count_*` front doors.

use crate::budget::{Budget, BudgetExceeded};
use crate::candidates::CandidateFilter;
use crate::order::{matching_order, MatchingOrder};
use alss_graph::{label_matches, Graph, NodeId, WILDCARD};

/// Immutable per-count context (shareable across worker threads).
pub(crate) struct Context<'a> {
    pub data: &'a Graph,
    pub query: &'a Graph,
    pub filter: CandidateFilter<'a>,
    pub mo: MatchingOrder,
    pub injective: bool,
}

impl<'a> Context<'a> {
    pub fn new(data: &'a Graph, query: &'a Graph, injective: bool) -> Self {
        let filter = CandidateFilter::new(data);
        let mo = matching_order(query, &filter, injective);
        Context {
            data,
            query,
            filter,
            mo,
            injective,
        }
    }

    /// Candidates of the first query node in the order.
    pub fn roots(&self) -> Vec<NodeId> {
        self.filter
            .candidates(self.query, self.mo.order[0], self.injective)
    }
}

/// Per-search telemetry tallies. Plain local integers: incrementing them
/// is negligible next to the candidate-filter probes in the same loop, so
/// they are counted unconditionally and only flushed to the global metrics
/// registry (a no-op when telemetry is disabled) once per search.
#[derive(Default)]
pub(crate) struct SearchStats {
    /// Backtracking nodes expanded (calls into `extend`/`find`).
    pub nodes_expanded: u64,
    /// Candidates rejected by the anchor edge-label check.
    pub pruned_label: u64,
    /// Candidates rejected by the candidate filter.
    pub pruned_filter: u64,
    /// Candidates rejected by the injectivity (used-node) check.
    pub pruned_injective: u64,
    /// Candidates rejected by a non-anchor backward constraint.
    pub pruned_backward: u64,
}

impl SearchStats {
    /// Add the tallies into the global metrics registry.
    pub fn flush(&self) {
        if !alss_telemetry::enabled(alss_telemetry::Category::Metrics) {
            return;
        }
        alss_telemetry::counter("matching.nodes_expanded").add(self.nodes_expanded);
        alss_telemetry::counter("matching.pruned.label").add(self.pruned_label);
        alss_telemetry::counter("matching.pruned.filter").add(self.pruned_filter);
        alss_telemetry::counter("matching.pruned.injective").add(self.pruned_injective);
        alss_telemetry::counter("matching.pruned.backward").add(self.pruned_backward);
    }
}

/// Mutable per-worker search state.
pub(crate) struct Search<'a, 'c> {
    ctx: &'c Context<'a>,
    /// Image of `mo.order[i]` for positions `< depth`.
    map: Vec<NodeId>,
    /// Telemetry tallies for this worker.
    pub stats: SearchStats,
}

impl<'a, 'c> Search<'a, 'c> {
    pub fn new(ctx: &'c Context<'a>) -> Self {
        Search {
            ctx,
            map: vec![0; ctx.query.num_nodes()],
            stats: SearchStats::default(),
        }
    }

    /// Count all completions with the root pinned to `root`.
    pub fn count_from_root(
        &mut self,
        root: NodeId,
        budget: &Budget,
    ) -> Result<u64, BudgetExceeded> {
        self.map[0] = root;
        self.extend(1, budget)
    }

    /// Early-terminating existence search with the root pinned to `root`.
    pub fn find_from_root(
        &mut self,
        root: NodeId,
        budget: &Budget,
    ) -> Result<bool, BudgetExceeded> {
        self.map[0] = root;
        self.find(1, budget)
    }

    #[inline]
    fn used(&self, depth: usize, dv: NodeId) -> bool {
        self.map[..depth].contains(&dv)
    }

    /// Verify `dv` against all backward constraints of position `pos`
    /// except the anchor position `skip`.
    #[inline]
    fn backward_ok(&self, pos: usize, skip: usize, qv: NodeId, dv: NodeId) -> bool {
        let ctx = self.ctx;
        for &j in &ctx.mo.backward[pos] {
            if j == skip {
                continue;
            }
            let qu = ctx.mo.order[j];
            let du = self.map[j];
            match ctx.data.edge_label(du, dv) {
                Some(dl) => {
                    let Some(ql) = ctx.query.edge_label(qu, qv) else {
                        // A backward neighbor is defined by the presence of
                        // this query edge; treat its absence as a dead end.
                        debug_assert!(false, "backward neighbor implies query edge");
                        return false;
                    };
                    if !label_matches(ql, dl) {
                        return false;
                    }
                }
                None => return false,
            }
        }
        true
    }

    fn extend(&mut self, pos: usize, budget: &Budget) -> Result<u64, BudgetExceeded> {
        let ctx = self.ctx;
        let n = ctx.query.num_nodes();
        if pos == n {
            return Ok(1);
        }
        budget.charge(1)?;
        self.stats.nodes_expanded += 1;
        let qv = ctx.mo.order[pos];
        let bw = &ctx.mo.backward[pos];
        let mut total: u64 = 0;

        if bw.is_empty() {
            // New connected component (rare; queries are usually connected):
            // scan all feasible data nodes.
            budget.charge(ctx.data.num_nodes() as u64)?;
            for dv in ctx.data.nodes() {
                if !ctx.filter.feasible(ctx.query, qv, dv, ctx.injective) {
                    self.stats.pruned_filter += 1;
                    continue;
                }
                if ctx.injective && self.used(pos, dv) {
                    self.stats.pruned_injective += 1;
                    continue;
                }
                self.map[pos] = dv;
                total = total.saturating_add(self.extend(pos + 1, budget)?);
            }
            return Ok(total);
        }

        // Anchor on the backward image with the smallest adjacency. `bw`
        // was checked non-empty above, so the fallbacks are dead code kept
        // only to make the path total.
        let Some(&anchor) = bw.iter().min_by_key(|&&j| ctx.data.degree(self.map[j])) else {
            debug_assert!(false, "non-empty backward set");
            return Ok(0);
        };
        let au = self.map[anchor];
        let Some(ql_anchor) = ctx.query.edge_label(ctx.mo.order[anchor], qv) else {
            debug_assert!(false, "anchor implies query edge");
            return Ok(0);
        };

        let neighbors = ctx.data.neighbors(au);
        budget.charge(neighbors.len() as u64)?;
        let edge_labels = ctx.data.neighbor_edge_labels(au);
        for (i, &dv) in neighbors.iter().enumerate() {
            let dl = edge_labels.map(|l| l[i]).unwrap_or(WILDCARD);
            if !label_matches(ql_anchor, dl) {
                self.stats.pruned_label += 1;
                continue;
            }
            if !ctx.filter.feasible(ctx.query, qv, dv, ctx.injective) {
                self.stats.pruned_filter += 1;
                continue;
            }
            if ctx.injective && self.used(pos, dv) {
                self.stats.pruned_injective += 1;
                continue;
            }
            if !self.backward_ok(pos, anchor, qv, dv) {
                self.stats.pruned_backward += 1;
                continue;
            }
            self.map[pos] = dv;
            total = total.saturating_add(self.extend(pos + 1, budget)?);
        }
        Ok(total)
    }
}

impl<'a, 'c> Search<'a, 'c> {
    /// Existence-only variant of `extend`: returns as soon as one full
    /// mapping is found.
    fn find(&mut self, pos: usize, budget: &Budget) -> Result<bool, BudgetExceeded> {
        let ctx = self.ctx;
        let n = ctx.query.num_nodes();
        if pos == n {
            return Ok(true);
        }
        budget.charge(1)?;
        self.stats.nodes_expanded += 1;
        let qv = ctx.mo.order[pos];
        let bw = &ctx.mo.backward[pos];

        if bw.is_empty() {
            budget.charge(ctx.data.num_nodes() as u64)?;
            for dv in ctx.data.nodes() {
                if !ctx.filter.feasible(ctx.query, qv, dv, ctx.injective) {
                    self.stats.pruned_filter += 1;
                    continue;
                }
                if ctx.injective && self.used(pos, dv) {
                    self.stats.pruned_injective += 1;
                    continue;
                }
                self.map[pos] = dv;
                if self.find(pos + 1, budget)? {
                    return Ok(true);
                }
            }
            return Ok(false);
        }

        // As in `extend`: `bw` is non-empty here, the fallbacks only make
        // the path total.
        let Some(&anchor) = bw.iter().min_by_key(|&&j| ctx.data.degree(self.map[j])) else {
            debug_assert!(false, "non-empty backward set");
            return Ok(false);
        };
        let au = self.map[anchor];
        let Some(ql_anchor) = ctx.query.edge_label(ctx.mo.order[anchor], qv) else {
            debug_assert!(false, "anchor implies query edge");
            return Ok(false);
        };
        let neighbors = ctx.data.neighbors(au);
        budget.charge(neighbors.len() as u64)?;
        let edge_labels = ctx.data.neighbor_edge_labels(au);
        for (i, &dv) in neighbors.iter().enumerate() {
            let dl = edge_labels.map(|l| l[i]).unwrap_or(WILDCARD);
            if !label_matches(ql_anchor, dl) {
                self.stats.pruned_label += 1;
                continue;
            }
            if !ctx.filter.feasible(ctx.query, qv, dv, ctx.injective) {
                self.stats.pruned_filter += 1;
                continue;
            }
            if ctx.injective && self.used(pos, dv) {
                self.stats.pruned_injective += 1;
                continue;
            }
            if !self.backward_ok(pos, anchor, qv, dv) {
                self.stats.pruned_backward += 1;
                continue;
            }
            self.map[pos] = dv;
            if self.find(pos + 1, budget)? {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

/// Record a budget exhaustion in the global metrics registry.
pub(crate) fn note_budget_exhausted<T>(res: &Result<T, BudgetExceeded>) {
    if res.is_err() {
        alss_telemetry::counter("matching.budget_exhausted").inc();
    }
}

/// Sequential counting entry point shared by both semantics.
pub(crate) fn count(
    data: &Graph,
    query: &Graph,
    budget: &Budget,
    injective: bool,
) -> Result<u64, BudgetExceeded> {
    if query.num_nodes() == 0 {
        return Ok(1); // the empty mapping
    }
    let _span = alss_telemetry::Span::enter("matching.count");
    let ctx = Context::new(data, query, injective);
    let roots = ctx.roots();
    let mut search = Search::new(&ctx);
    let res = (|| {
        budget.charge(roots.len() as u64)?;
        let mut total: u64 = 0;
        for r in roots {
            total = total.saturating_add(search.count_from_root(r, budget)?);
        }
        Ok(total)
    })();
    search.stats.flush();
    note_budget_exhausted(&res);
    res
}
