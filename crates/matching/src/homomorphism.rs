//! Exact homomorphism counting (§2): the number of label-preserving,
//! edge-preserving functions `f : V_q → V` (not necessarily injective).

use crate::budget::{Budget, BudgetExceeded};
use crate::engine;
use alss_graph::Graph;

/// Count homomorphisms of `query` into `data`.
///
/// The count equals the number of answer tuples of the self-join SQL
/// formulation the paper discusses in §1: one edge-relation factor per
/// query edge, one label predicate per labeled query node.
pub fn count_homomorphisms(
    data: &Graph,
    query: &Graph,
    budget: &Budget,
) -> Result<u64, BudgetExceeded> {
    engine::count(data, query, budget, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::builder::graph_from_edges;
    use alss_graph::{Graph, GraphBuilder, WILDCARD};

    fn unlimited() -> Budget {
        Budget::unlimited()
    }

    /// Unlabeled triangle data graph.
    fn triangle() -> Graph {
        graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn single_node_query_counts_label_occurrences() {
        let d = graph_from_edges(&[0, 0, 1], &[(0, 1), (1, 2)]);
        let q0 = graph_from_edges(&[0], &[]);
        let q_any = graph_from_edges(&[WILDCARD], &[]);
        assert_eq!(count_homomorphisms(&d, &q0, &unlimited()).unwrap(), 2);
        assert_eq!(count_homomorphisms(&d, &q_any, &unlimited()).unwrap(), 3);
    }

    #[test]
    fn single_edge_query_counts_directed_edge_pairs() {
        // homomorphisms of one edge = 2|E| with matching labels
        let d = triangle();
        let q = graph_from_edges(&[0, 0], &[(0, 1)]);
        assert_eq!(count_homomorphisms(&d, &q, &unlimited()).unwrap(), 6);
    }

    #[test]
    fn triangle_in_triangle() {
        // hom(K3, K3) = 3! = 6 (all permutations; no non-injective ones)
        let d = triangle();
        let q = triangle();
        assert_eq!(count_homomorphisms(&d, &q, &unlimited()).unwrap(), 6);
    }

    #[test]
    fn path2_in_triangle_allows_folding() {
        // hom(P3, K3): center 3 choices × 2 × 2 = 12 (endpoints may coincide)
        let d = triangle();
        let q = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
        assert_eq!(count_homomorphisms(&d, &q, &unlimited()).unwrap(), 12);
    }

    #[test]
    fn labels_restrict_matchings() {
        let d = graph_from_edges(&[0, 1, 0, 1], &[(0, 1), (2, 3), (1, 2)]);
        let q = graph_from_edges(&[0, 1], &[(0, 1)]);
        // ordered pairs (label0, label1) adjacent: (0,1), (2,3), (2,1) → 3
        assert_eq!(count_homomorphisms(&d, &q, &unlimited()).unwrap(), 3);
    }

    #[test]
    fn no_match_gives_zero() {
        let d = triangle();
        let q = graph_from_edges(&[5, 5], &[(0, 1)]);
        assert_eq!(count_homomorphisms(&d, &q, &unlimited()).unwrap(), 0);
    }

    #[test]
    fn square_query_in_triangle_homomorphism_exists() {
        // C4 → K3 has homomorphisms (fold opposite corners)
        let d = triangle();
        let q = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let c = count_homomorphisms(&d, &q, &unlimited()).unwrap();
        assert!(c > 0);
        // closed walks of length 4 in K3 = trace(A^4) = 18
        assert_eq!(c, 18);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let d = triangle();
        let q = triangle();
        let b = Budget::new(2);
        assert_eq!(count_homomorphisms(&d, &q, &b), Err(BudgetExceeded));
    }

    #[test]
    fn edge_labels_enforced() {
        let mut b = GraphBuilder::new(3);
        b.set_label(0, 0).set_label(1, 0).set_label(2, 0);
        b.add_labeled_edge(0, 1, 1).add_labeled_edge(1, 2, 2);
        let d = b.build();

        let mut qb = GraphBuilder::new(2);
        qb.set_label(0, 0).set_label(1, 0);
        qb.add_labeled_edge(0, 1, 1);
        let q = qb.build();
        // only the label-1 edge matches, both directions
        assert_eq!(count_homomorphisms(&d, &q, &unlimited()).unwrap(), 2);

        let mut qb2 = GraphBuilder::new(2);
        qb2.set_label(0, 0).set_label(1, 0);
        qb2.add_edge(0, 1); // wildcard edge label matches both
        let q2 = qb2.build();
        assert_eq!(count_homomorphisms(&d, &q2, &unlimited()).unwrap(), 4);
    }

    #[test]
    fn empty_query_counts_one_empty_mapping() {
        let d = triangle();
        let q = GraphBuilder::new(0).build();
        assert_eq!(count_homomorphisms(&d, &q, &unlimited()).unwrap(), 1);
    }

    #[test]
    fn disconnected_query_multiplies_components() {
        let d = triangle();
        // two disjoint single edges: hom = 6 * 6 = 36
        let q = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (2, 3)]);
        assert_eq!(count_homomorphisms(&d, &q, &unlimited()).unwrap(), 36);
    }
}
