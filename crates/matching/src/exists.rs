//! Early-terminating existence checks: "does at least one matching
//! exist?" — the decision variant of subgraph matching. Useful for
//! filtering workloads (a query extracted from the data graph always has
//! a witness, but relabeled §6.6 patterns may not).

use crate::budget::{Budget, BudgetExceeded};
use crate::engine::{Context, Search};
use alss_graph::Graph;

fn exists(
    data: &Graph,
    query: &Graph,
    budget: &Budget,
    injective: bool,
) -> Result<bool, BudgetExceeded> {
    if query.num_nodes() == 0 {
        return Ok(true);
    }
    let _span = alss_telemetry::Span::enter("matching.exists");
    let ctx = Context::new(data, query, injective);
    let roots = ctx.roots();
    let mut search = Search::new(&ctx);
    let res = (|| {
        budget.charge(roots.len() as u64)?;
        for r in roots {
            if search.find_from_root(r, budget)? {
                return Ok(true);
            }
        }
        Ok(false)
    })();
    search.stats.flush();
    crate::engine::note_budget_exhausted(&res);
    res
}

/// Does `data` contain at least one homomorphic image of `query`?
pub fn homomorphism_exists(
    data: &Graph,
    query: &Graph,
    budget: &Budget,
) -> Result<bool, BudgetExceeded> {
    exists(data, query, budget, false)
}

/// Does `data` contain at least one (injective) embedding of `query`?
pub fn isomorphism_exists(
    data: &Graph,
    query: &Graph,
    budget: &Budget,
) -> Result<bool, BudgetExceeded> {
    exists(data, query, budget, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::builder::graph_from_edges;

    #[test]
    fn existence_matches_counting() {
        let d = graph_from_edges(&[0, 0, 0, 1], &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let tri = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let tri_labeled = graph_from_edges(&[1, 1, 1], &[(0, 1), (1, 2), (0, 2)]);
        let b = Budget::unlimited();
        assert!(homomorphism_exists(&d, &tri, &b).unwrap());
        assert!(isomorphism_exists(&d, &tri, &b).unwrap());
        assert!(!homomorphism_exists(&d, &tri_labeled, &b).unwrap());
        assert!(!isomorphism_exists(&d, &tri_labeled, &b).unwrap());
    }

    #[test]
    fn existence_short_circuits_under_tiny_budget() {
        // counting the matchings of an edge in a large clique is expensive;
        // existence needs only one witness
        let n = 60u32;
        let mut bld = alss_graph::GraphBuilder::new(n as usize);
        for v in 0..n {
            bld.set_label(v, 0);
        }
        for u in 0..n {
            for v in (u + 1)..n {
                bld.add_edge(u, v);
            }
        }
        let d = bld.build();
        let q = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let budget = Budget::new(200);
        assert_eq!(homomorphism_exists(&d, &q, &budget), Ok(true));
        // the counting variant blows the same budget
        assert!(crate::count_homomorphisms(&d, &q, &Budget::new(200)).is_err());
    }

    #[test]
    fn hom_exists_but_iso_does_not() {
        // single edge data; 3-path query folds homomorphically only
        let d = graph_from_edges(&[0, 0], &[(0, 1)]);
        let q = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let b = Budget::unlimited();
        assert!(homomorphism_exists(&d, &q, &b).unwrap());
        assert!(!isomorphism_exists(&d, &q, &b).unwrap());
    }

    #[test]
    fn empty_query_trivially_exists() {
        let d = graph_from_edges(&[0], &[]);
        let q = alss_graph::GraphBuilder::new(0).build();
        assert!(homomorphism_exists(&d, &q, &Budget::unlimited()).unwrap());
    }
}
