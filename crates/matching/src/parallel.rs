//! Rayon-parallel counting: split the search across the root candidates.
//!
//! Used when labeling training workloads with true counts (the paper runs
//! ground-truth computation on 32 CPUs). The expansion [`Budget`] is shared
//! across workers, so the total work bound matches the sequential engine.

use crate::budget::{Budget, BudgetExceeded};
use crate::engine::{Context, Search};
use alss_graph::Graph;
use rayon::prelude::*;

fn count_parallel(
    data: &Graph,
    query: &Graph,
    budget: &Budget,
    injective: bool,
) -> Result<u64, BudgetExceeded> {
    if query.num_nodes() == 0 {
        return Ok(1);
    }
    let _span = alss_telemetry::Span::enter("matching.count_parallel");
    let ctx = Context::new(data, query, injective);
    let roots = ctx.roots();
    let res = budget.charge(roots.len() as u64).and_then(|()| {
        let per_root = alss_telemetry::enabled(alss_telemetry::Category::Metrics);
        roots
            .par_iter()
            .map(|&r| {
                let watch = alss_telemetry::Stopwatch::start();
                let mut search = Search::new(&ctx);
                let n = search.count_from_root(r, budget);
                search.stats.flush();
                if per_root {
                    watch.record("matching.root_us");
                }
                n
            })
            .try_reduce(|| 0u64, |a, b| Ok(a.saturating_add(b)))
    });
    crate::engine::note_budget_exhausted(&res);
    res
}

/// Parallel [`crate::count_homomorphisms`].
pub fn count_homomorphisms_parallel(
    data: &Graph,
    query: &Graph,
    budget: &Budget,
) -> Result<u64, BudgetExceeded> {
    count_parallel(data, query, budget, false)
}

/// Parallel [`crate::count_isomorphisms`].
pub fn count_isomorphisms_parallel(
    data: &Graph,
    query: &Graph,
    budget: &Budget,
) -> Result<u64, BudgetExceeded> {
    count_parallel(data, query, budget, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{count_homomorphisms, count_isomorphisms};
    use alss_graph::builder::graph_from_edges;
    use alss_graph::{Graph, GraphBuilder};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(n: usize, m: usize, labels: u32, seed: u64) -> Graph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 0..n as u32 {
            b.set_label(v, rng.gen_range(0..labels));
        }
        for _ in 0..m {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn parallel_matches_sequential_hom() {
        let d = random_graph(60, 180, 3, 1);
        for seed in 0..5 {
            let q = random_graph(4, 5, 3, 100 + seed);
            if !q.is_connected() {
                continue;
            }
            let seq = count_homomorphisms(&d, &q, &Budget::unlimited()).unwrap();
            let par = count_homomorphisms_parallel(&d, &q, &Budget::unlimited()).unwrap();
            assert_eq!(seq, par, "seed {seed}");
        }
    }

    #[test]
    fn parallel_matches_sequential_iso() {
        let d = random_graph(60, 180, 3, 2);
        for seed in 0..5 {
            let q = random_graph(4, 5, 3, 200 + seed);
            if !q.is_connected() {
                continue;
            }
            let seq = count_isomorphisms(&d, &q, &Budget::unlimited()).unwrap();
            let par = count_isomorphisms_parallel(&d, &q, &Budget::unlimited()).unwrap();
            assert_eq!(seq, par, "seed {seed}");
        }
    }

    #[test]
    fn shared_budget_aborts_parallel_search() {
        let d = random_graph(100, 600, 2, 3);
        let q = random_graph(5, 8, 2, 300);
        let b = Budget::new(10);
        assert_eq!(
            count_homomorphisms_parallel(&d, &q, &b),
            Err(BudgetExceeded)
        );
    }

    #[test]
    fn empty_query_short_circuits() {
        let d = graph_from_edges(&[0], &[]);
        let q = GraphBuilder::new(0).build();
        assert_eq!(
            count_homomorphisms_parallel(&d, &q, &Budget::unlimited()).unwrap(),
            1
        );
    }
}
