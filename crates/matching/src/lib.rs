//! # alss-matching
//!
//! Exact subgraph counting by **homomorphism** and **subgraph isomorphism**
//! over labeled undirected graphs — the ground-truth engine of the ALSS
//! reproduction (standing in for Graphflow / GraphQL in §6.1, and for the
//! `GFlow` / `GQL` series of Figs. 8–9).
//!
//! The engine is a backtracking search in the style of Ullmann's algorithm
//! with the standard modern refinements analyzed in the paper's related
//! work:
//!
//! * label + degree + neighbor-label **candidate filtering**
//!   ([`candidates`]);
//! * a greedy connected **matching order** that starts from the rarest
//!   candidate set ([`order`]);
//! * **budgeted** search — a node-expansion budget models the paper's
//!   "true count computable within 2 hours" workload filter ([`budget`]);
//! * rayon-**parallel** root splitting for workload labeling
//!   ([`parallel`]).
//!
//! Counting is exact: the returned value is the number of homomorphism
//! (resp. subgraph-isomorphism) functions `f : V_q → V` as defined in §2.
//!
//! ```
//! use alss_graph::builder::graph_from_edges;
//! use alss_matching::{count_homomorphisms, count_isomorphisms, Budget};
//!
//! let data = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]); // K3
//! let path = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
//!
//! let b = Budget::unlimited();
//! assert_eq!(count_homomorphisms(&data, &path, &b).unwrap(), 12); // folds allowed
//! assert_eq!(count_isomorphisms(&data, &path, &b).unwrap(), 6);   // injective only
//! ```

// Test modules opt back out of the library panic/numeric policy: a panic
// IS the failure report there, and fixtures are tiny.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub mod budget;
pub mod candidates;
pub(crate) mod engine;
pub mod exists;
pub mod homomorphism;
pub mod isomorphism;
pub mod order;
pub mod parallel;

pub use budget::{Budget, BudgetExceeded};
pub use exists::{homomorphism_exists, isomorphism_exists};
pub use homomorphism::count_homomorphisms;
pub use isomorphism::count_isomorphisms;
pub use parallel::{count_homomorphisms_parallel, count_isomorphisms_parallel};

use alss_graph::Graph;

/// Which matching semantics to count under (§2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Semantics {
    /// Any structure/label-preserving function `f : V_q → V`.
    Homomorphism,
    /// Injective homomorphisms.
    Isomorphism,
}

impl Semantics {
    /// Count matchings of `query` in `data` under these semantics.
    pub fn count(
        self,
        data: &Graph,
        query: &Graph,
        budget: &Budget,
    ) -> Result<u64, BudgetExceeded> {
        match self {
            Semantics::Homomorphism => count_homomorphisms(data, query, budget),
            Semantics::Isomorphism => count_isomorphisms(data, query, budget),
        }
    }

    /// Parallel variant of [`Semantics::count`].
    pub fn count_parallel(
        self,
        data: &Graph,
        query: &Graph,
        budget: &Budget,
    ) -> Result<u64, BudgetExceeded> {
        match self {
            Semantics::Homomorphism => count_homomorphisms_parallel(data, query, budget),
            Semantics::Isomorphism => count_isomorphisms_parallel(data, query, budget),
        }
    }
}

impl std::fmt::Display for Semantics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Semantics::Homomorphism => write!(f, "homomorphism"),
            Semantics::Isomorphism => write!(f, "isomorphism"),
        }
    }
}

#[cfg(test)]
mod semantics_tests {
    use super::*;
    use alss_graph::builder::graph_from_edges;

    #[test]
    fn dispatch_matches_direct_calls() {
        let d = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let q = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let b = Budget::unlimited();
        assert_eq!(
            Semantics::Homomorphism.count(&d, &q, &b).unwrap(),
            count_homomorphisms(&d, &q, &Budget::unlimited()).unwrap()
        );
        assert_eq!(
            Semantics::Isomorphism.count(&d, &q, &b).unwrap(),
            count_isomorphisms(&d, &q, &Budget::unlimited()).unwrap()
        );
        // parallel dispatch agrees too
        assert_eq!(
            Semantics::Homomorphism
                .count_parallel(&d, &q, &Budget::unlimited())
                .unwrap(),
            Semantics::Homomorphism
                .count(&d, &q, &Budget::unlimited())
                .unwrap()
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(Semantics::Homomorphism.to_string(), "homomorphism");
        assert_eq!(Semantics::Isomorphism.to_string(), "isomorphism");
    }

    #[test]
    fn serde_roundtrip() {
        let json = serde_json::to_string(&Semantics::Isomorphism).unwrap();
        let back: Semantics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Semantics::Isomorphism);
    }
}
