//! Matching-order selection.
//!
//! We use the greedy connected ordering common to GraphQL/RI-family
//! matchers: start from the query node with the fewest candidates, then
//! repeatedly append the unmatched node with the most already-ordered
//! neighbors (maximizing pruning), breaking ties by smaller candidate
//! count, then by node id for determinism.

use crate::candidates::CandidateFilter;
use alss_graph::{Graph, NodeId};

/// A matching order over query nodes plus, for each position, the list of
/// earlier positions adjacent in the query (the "backward neighbors" whose
/// images constrain the current node).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatchingOrder {
    /// Query node at each position.
    pub order: Vec<NodeId>,
    /// For each position `i > 0`, positions `j < i` with
    /// `(order[j], order[i]) ∈ E_q`. Empty only for position 0 (or for
    /// disconnected queries, where a new component starts).
    pub backward: Vec<Vec<usize>>,
}

/// Compute a matching order for `q` against the data indexed by `filter`.
pub fn matching_order(q: &Graph, filter: &CandidateFilter<'_>, injective: bool) -> MatchingOrder {
    let n = q.num_nodes();
    assert!(n > 0, "empty query graph");
    let counts: Vec<usize> = q
        .nodes()
        .map(|v| filter.candidate_count(q, v, injective))
        .collect();

    let mut placed = vec![false; n];
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    // `n > 0` is asserted above, so the min exists; the fallback keeps the
    // expression total.
    let start = (0..n)
        .min_by_key(|&v| (counts[v], v))
        .map_or(0, alss_graph::node_id);
    order.push(start);
    placed[start as usize] = true;

    while order.len() < n {
        // connectivity to placed set
        let mut best: Option<(usize, usize, NodeId)> = None; // (-conn, count, id)
        for v in q.nodes() {
            if placed[v as usize] {
                continue;
            }
            let conn = q
                .neighbors(v)
                .iter()
                .filter(|&&u| placed[u as usize])
                .count();
            let key = (usize::MAX - conn, counts[v as usize], v);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        let Some((_, _, v)) = best else {
            // Unreachable while `order.len() < n`: some node is unplaced.
            debug_assert!(false, "some node remains");
            break;
        };
        order.push(v);
        placed[v as usize] = true;
    }

    let pos_of: Vec<usize> = {
        let mut p = vec![0usize; n];
        for (i, &v) in order.iter().enumerate() {
            p[v as usize] = i;
        }
        p
    };
    let backward = order
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let mut b: Vec<usize> = q
                .neighbors(v)
                .iter()
                .map(|&u| pos_of[u as usize])
                .filter(|&j| j < i)
                .collect();
            b.sort_unstable();
            b
        })
        .collect();
    MatchingOrder { order, backward }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::builder::graph_from_edges;

    #[test]
    fn order_is_a_permutation_and_connected() {
        let d = graph_from_edges(&[0, 1, 2, 0, 1, 2], &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let f = CandidateFilter::new(&d);
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let mo = matching_order(&q, &f, false);
        let mut sorted = mo.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
        // every non-first position has at least one backward neighbor
        for i in 1..mo.order.len() {
            assert!(!mo.backward[i].is_empty(), "position {i} disconnected");
        }
        assert!(mo.backward[0].is_empty());
    }

    #[test]
    fn starts_from_rarest_label() {
        // data: many label-0 nodes, one label-1 node
        let d = graph_from_edges(&[0, 0, 0, 0, 1], &[(0, 4), (1, 4), (2, 4), (3, 4)]);
        let f = CandidateFilter::new(&d);
        let q = graph_from_edges(&[0, 1], &[(0, 1)]);
        let mo = matching_order(&q, &f, false);
        assert_eq!(mo.order[0], 1, "should start from the rare label-1 node");
    }

    #[test]
    fn backward_neighbors_reflect_query_edges() {
        let d = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]);
        let f = CandidateFilter::new(&d);
        // triangle query
        let q = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let mo = matching_order(&q, &f, false);
        assert_eq!(mo.backward[1].len(), 1);
        assert_eq!(mo.backward[2].len(), 2); // closes the triangle
    }
}
