//! Search budget: bounds the number of node expansions.
//!
//! The paper keeps only "the queries whose true count can be computed in 2
//! hours" (§6.1). At laptop scale we replace wall-clock with a deterministic
//! node-expansion budget, which filters the same way while keeping workloads
//! reproducible across machines.

use std::sync::atomic::{AtomicU64, Ordering};

/// The search exceeded its expansion budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded;

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exact-count expansion budget exceeded")
    }
}

impl std::error::Error for BudgetExceeded {}

/// A shared, thread-safe expansion budget.
///
/// Each backtracking expansion charges one unit. The budget is shared across
/// rayon workers when counting in parallel, so a parallel count aborts at
/// the same total work as a sequential one (modulo in-flight batches).
#[derive(Debug)]
pub struct Budget {
    remaining: AtomicU64,
    unlimited: bool,
}

impl Budget {
    /// A budget of `n` expansions.
    pub fn new(n: u64) -> Self {
        Budget {
            remaining: AtomicU64::new(n),
            unlimited: false,
        }
    }

    /// No limit (use for small graphs and tests only).
    pub fn unlimited() -> Self {
        Budget {
            remaining: AtomicU64::new(u64::MAX),
            unlimited: true,
        }
    }

    /// Charge `n` expansions; `Err` when exhausted.
    #[inline]
    pub fn charge(&self, n: u64) -> Result<(), BudgetExceeded> {
        if self.unlimited {
            return Ok(());
        }
        // fetch_sub wraps; detect underflow by comparing.
        let prev = self.remaining.fetch_sub(n, Ordering::Relaxed);
        if prev < n {
            // restore to avoid repeated wrap-around weirdness
            self.remaining.store(0, Ordering::Relaxed);
            Err(BudgetExceeded)
        } else {
            Ok(())
        }
    }

    /// Remaining units (diagnostic).
    pub fn remaining(&self) -> u64 {
        if self.unlimited {
            u64::MAX
        } else {
            self.remaining.load(Ordering::Relaxed)
        }
    }
}

impl Default for Budget {
    /// A generous default suitable for the synthetic workloads
    /// (10^8 expansions ≈ a few seconds).
    fn default() -> Self {
        Budget::new(100_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_until_exhausted() {
        let b = Budget::new(3);
        assert!(b.charge(1).is_ok());
        assert!(b.charge(2).is_ok());
        assert_eq!(b.remaining(), 0);
        assert_eq!(b.charge(1), Err(BudgetExceeded));
        // stays exhausted
        assert_eq!(b.charge(1), Err(BudgetExceeded));
    }

    #[test]
    fn unlimited_never_fails() {
        let b = Budget::unlimited();
        for _ in 0..1000 {
            assert!(b.charge(u64::MAX / 2).is_ok());
        }
    }

    #[test]
    fn bulk_overcharge_fails_cleanly() {
        let b = Budget::new(10);
        assert_eq!(b.charge(11), Err(BudgetExceeded));
        assert_eq!(b.remaining(), 0);
    }
}
