//! Candidate filtering (GraphQL-style) for the backtracking engine.

use alss_graph::{Graph, NodeId, WILDCARD};

/// A 64-bit Bloom-style signature of the labels appearing among a node's
/// neighbors: bit `l % 64` is set when some neighbor has label `l`
/// (all labels of a multi-labeled neighbor are included).
///
/// If query node `v` requires neighbor labels `S`, any valid image of `v`
/// must have a signature that is a superset of `sig(S)` — a necessary
/// condition under both homomorphism and isomorphism, so the filter is
/// sound (it can only *fail to prune*, never prune a valid candidate).
#[inline]
fn neighbor_label_signature(g: &Graph, v: NodeId) -> u64 {
    let mut sig = 0u64;
    for &u in g.neighbors(v) {
        for l in g.labels_of(u) {
            sig |= 1u64 << (l % 64);
        }
    }
    sig
}

/// Signature of the labels a *query* node demands of its neighbors: only
/// primary labels (query nodes are single-labeled predicates).
#[inline]
fn required_neighbor_signature(q: &Graph, v: NodeId) -> u64 {
    let mut sig = 0u64;
    for &u in q.neighbors(v) {
        let l = q.label(u);
        if l != WILDCARD {
            sig |= 1u64 << (l % 64);
        }
    }
    sig
}

/// Precomputed per-data-node filter state.
pub struct CandidateFilter<'g> {
    data: &'g Graph,
    data_sigs: Vec<u64>,
}

impl<'g> CandidateFilter<'g> {
    /// Precompute neighbor-label signatures for all data nodes.
    pub fn new(data: &'g Graph) -> Self {
        let data_sigs = data
            .nodes()
            .map(|v| neighbor_label_signature(data, v))
            .collect();
        CandidateFilter { data, data_sigs }
    }

    /// The data graph this filter indexes.
    pub fn data(&self) -> &'g Graph {
        self.data
    }

    /// Is data node `dv` a feasible image of query node `qv`?
    ///
    /// * label match (always required);
    /// * neighbor-label signature superset (required for both semantics —
    ///   every *distinct* required neighbor label must occur among the
    ///   image's neighbors);
    /// * degree dominance (only valid for isomorphism, where distinct query
    ///   neighbors need distinct images).
    #[inline]
    pub fn feasible(&self, q: &Graph, qv: NodeId, dv: NodeId, injective: bool) -> bool {
        if !self.data.node_matches(dv, q.label(qv)) {
            return false;
        }
        if injective && q.degree(qv) > self.data.degree(dv) {
            return false;
        }
        let qsig = required_neighbor_signature(q, qv);
        qsig & !self.data_sigs[dv as usize] == 0
    }

    /// All feasible images of query node `qv` (scans the data graph).
    pub fn candidates(&self, q: &Graph, qv: NodeId, injective: bool) -> Vec<NodeId> {
        self.data
            .nodes()
            .filter(|&dv| self.feasible(q, qv, dv, injective))
            .collect()
    }

    /// Number of feasible images (used by the ordering heuristic without
    /// materializing the candidate vectors).
    pub fn candidate_count(&self, q: &Graph, qv: NodeId, injective: bool) -> usize {
        self.data
            .nodes()
            .filter(|&dv| self.feasible(q, qv, dv, injective))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::builder::graph_from_edges;

    fn data() -> Graph {
        // star: center label 0 with leaves labeled 1,2,3 + isolated-ish pair
        graph_from_edges(&[0, 1, 2, 3, 0, 1], &[(0, 1), (0, 2), (0, 3), (4, 5)])
    }

    #[test]
    fn label_filter() {
        let d = data();
        let f = CandidateFilter::new(&d);
        let q = graph_from_edges(&[1, 0], &[(0, 1)]);
        let c = f.candidates(&q, 0, false);
        assert_eq!(c, vec![1, 5]);
    }

    #[test]
    fn wildcard_query_node_matches_all_labels() {
        let d = data();
        let f = CandidateFilter::new(&d);
        let q = graph_from_edges(&[WILDCARD], &[]);
        assert_eq!(f.candidates(&q, 0, false).len(), 6);
    }

    #[test]
    fn degree_filter_only_for_isomorphism() {
        let d = data();
        let f = CandidateFilter::new(&d);
        // query: node 0 with three wildcard neighbors
        let q = graph_from_edges(
            &[0, WILDCARD, WILDCARD, WILDCARD],
            &[(0, 1), (0, 2), (0, 3)],
        );
        // iso: only the center (degree 3) qualifies
        assert_eq!(f.candidates(&q, 0, true), vec![0]);
        // homo: node 4 (degree 1, label 0) also qualifies — its single
        // neighbor can serve as the image of all three query leaves
        assert_eq!(f.candidates(&q, 0, false), vec![0, 4]);
    }

    #[test]
    fn neighbor_label_signature_prunes() {
        let d = data();
        let f = CandidateFilter::new(&d);
        // query node labeled 0 that must have a neighbor labeled 2
        let q = graph_from_edges(&[0, 2], &[(0, 1)]);
        // node 4 has label 0 but no neighbor labeled 2 → pruned even for homo
        assert_eq!(f.candidates(&q, 0, false), vec![0]);
    }

    #[test]
    fn candidate_count_matches_candidates() {
        let d = data();
        let f = CandidateFilter::new(&d);
        let q = graph_from_edges(&[0, WILDCARD], &[(0, 1)]);
        assert_eq!(
            f.candidate_count(&q, 0, false),
            f.candidates(&q, 0, false).len()
        );
    }
}
