//! Property tests: the backtracking engine against a brute-force
//! reference counter that enumerates *all* `|V|^{|V_q|}` mappings.

// Test code opts back out of the library panic/numeric policy: a panic IS
// the failure report here, and fixtures are tiny.
#![allow(
    clippy::unwrap_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use alss_graph::{label_matches, Graph, GraphBuilder, WILDCARD};
use alss_matching::{count_homomorphisms, count_isomorphisms, Budget};
use proptest::prelude::*;

/// Brute force: try every function `V_q → V`.
fn brute_force_count(data: &Graph, query: &Graph, injective: bool) -> u64 {
    let n = data.num_nodes();
    let k = query.num_nodes();
    if k == 0 {
        return 1;
    }
    let mut count = 0u64;
    let mut map = vec![0usize; k];
    'outer: loop {
        // check current mapping
        let ok = (0..k).all(|qv| label_matches(query.label(qv as u32), data.label(map[qv] as u32)))
            && query.edges().all(|e| {
                match data.edge_label(map[e.u as usize] as u32, map[e.v as usize] as u32) {
                    Some(dl) => label_matches(e.label, dl),
                    None => false,
                }
            })
            && (!injective || {
                let mut seen = std::collections::HashSet::new();
                map.iter().all(|&m| seen.insert(m))
            });
        if ok {
            count += 1;
        }
        // odometer increment
        for digit in map.iter_mut().take(k) {
            *digit += 1;
            if *digit < n {
                continue 'outer;
            }
            *digit = 0;
        }
        break;
    }
    count
}

fn small_graph(max_nodes: usize, labels: u32) -> impl Strategy<Value = Graph> {
    (1usize..=max_nodes).prop_flat_map(move |n| {
        let max_edges = n * n;
        (
            proptest::collection::vec(0u32..labels, n),
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..=max_edges),
        )
            .prop_map(move |(node_labels, edges)| {
                let mut b = GraphBuilder::new(n);
                b.set_labels(&node_labels);
                for (u, v) in edges {
                    if u != v {
                        b.add_edge(u, v);
                    }
                }
                b.build()
            })
    })
}

/// Connected query with 1..=3 nodes (brute force is |V|^3 at most).
fn small_query() -> impl Strategy<Value = Graph> {
    (1usize..=3, proptest::bool::ANY).prop_flat_map(|(k, wild)| {
        proptest::collection::vec(0u32..3, k).prop_map(move |mut labels| {
            if wild && !labels.is_empty() {
                labels[0] = WILDCARD;
            }
            let mut b = GraphBuilder::new(k);
            b.set_labels(&labels);
            for i in 1..k as u32 {
                b.add_edge(i - 1, i);
            }
            if k == 3 {
                b.add_edge(0, 2); // triangle
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn engine_matches_brute_force_homomorphism(
        d in small_graph(6, 3),
        q in small_query(),
    ) {
        let expected = brute_force_count(&d, &q, false);
        let got = count_homomorphisms(&d, &q, &Budget::unlimited()).unwrap();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn engine_matches_brute_force_isomorphism(
        d in small_graph(6, 3),
        q in small_query(),
    ) {
        let expected = brute_force_count(&d, &q, true);
        let got = count_isomorphisms(&d, &q, &Budget::unlimited()).unwrap();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn budget_never_changes_successful_results(
        d in small_graph(6, 3),
        q in small_query(),
        budget in 1u64..2000,
    ) {
        // if the budgeted run completes, it must agree with unlimited
        let unlimited = count_homomorphisms(&d, &q, &Budget::unlimited()).unwrap();
        if let Ok(c) = count_homomorphisms(&d, &q, &Budget::new(budget)) {
            prop_assert_eq!(c, unlimited);
        }
    }
}

#[test]
fn brute_force_reference_sanity() {
    // K3, single-edge query: 6 ordered homomorphisms, 6 injective
    let d = {
        let mut b = GraphBuilder::new(3);
        for v in 0..3 {
            b.set_label(v, 0);
        }
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
        b.build()
    };
    let q = {
        let mut b = GraphBuilder::new(2);
        b.set_label(0, 0).set_label(1, 0);
        b.add_edge(0, 1);
        b.build()
    };
    assert_eq!(brute_force_count(&d, &q, false), 6);
    assert_eq!(brute_force_count(&d, &q, true), 6);
}
