//! Integration tests for the live recording path. Only meaningful with
//! the `telemetry` feature (without it every probe is compiled out), so
//! the whole file is feature-gated; CI runs it via
//! `cargo test -p alss-telemetry --features telemetry`.
#![cfg(feature = "telemetry")]
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use alss_telemetry::test_support::with_capture;
use alss_telemetry::{
    counter, event, histogram, parse_mask, progress, Category, Event, Field, Span, Stopwatch,
};

fn span_events(events: &[Event]) -> Vec<(String, String)> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::Span { name, path, .. } => Some((name.to_string(), path.clone())),
            _ => None,
        })
        .collect()
}

#[test]
fn spans_nest_and_report_their_path() {
    let (_, events) = with_capture(Category::ALL, || {
        let _outer = Span::enter("outer");
        {
            let _inner = Span::enter("inner");
        }
    });
    let spans = span_events(&events);
    // inner closes first and sees the full ancestry
    assert_eq!(spans[0], ("inner".to_string(), "outer/inner".to_string()));
    assert_eq!(spans[1], ("outer".to_string(), "outer".to_string()));
}

#[test]
fn sibling_spans_do_not_inherit_each_other() {
    let (_, events) = with_capture(Category::ALL, || {
        {
            let _a = Span::enter("a");
        }
        {
            let _b = Span::enter("b");
        }
    });
    let spans = span_events(&events);
    assert_eq!(spans[0].1, "a");
    assert_eq!(spans[1].1, "b");
}

#[test]
fn span_stacks_are_thread_isolated() {
    let (_, events) = with_capture(Category::ALL, || {
        let _outer = Span::enter("main-outer");
        std::thread::Builder::new()
            .name("worker".to_string())
            .spawn(|| {
                let _w = Span::enter("worker-span");
            })
            .unwrap()
            .join()
            .unwrap();
    });
    for e in &events {
        if let Event::Span {
            name, path, thread, ..
        } = e
        {
            if *name == "worker-span" {
                // the worker's path must NOT include the main thread's
                // open span
                assert_eq!(path, "worker-span");
                assert_eq!(thread, "worker");
            }
        }
    }
    assert_eq!(span_events(&events).len(), 2);
}

#[test]
fn span_durations_feed_a_histogram() {
    let (_, _) = with_capture(Category::ALL, || {
        let _s = Span::enter("hist-probe");
    });
    let snap = alss_telemetry::snapshot();
    let h = snap.histogram("span.hist-probe_us").expect("histogram");
    assert!(h.count >= 1);
}

#[test]
fn category_filter_masks_spans_but_not_metrics() {
    let (_, events) = with_capture(parse_mask("metrics"), || {
        let _s = Span::enter("filtered-out");
        counter("gated.metric_only").add(2);
    });
    assert!(span_events(&events).is_empty());
    assert_eq!(
        alss_telemetry::snapshot().counter("gated.metric_only"),
        Some(2)
    );
}

#[test]
fn point_events_carry_fields() {
    let (_, events) = with_capture(Category::ALL, || {
        event(
            "train.epoch",
            &[
                ("epoch", Field::U64(1)),
                ("loss", Field::F64(0.25)),
                ("note", Field::from("ok")),
            ],
        );
    });
    let found = events.iter().any(|e| match e {
        Event::Point { name, fields } => {
            *name == "train.epoch"
                && fields
                    .iter()
                    .any(|(k, v)| k == "loss" && *v == Field::F64(0.25))
        }
        _ => false,
    });
    assert!(found, "epoch event not captured: {events:?}");
}

#[test]
fn progress_goes_through_the_sink() {
    let (_, events) = with_capture(0, || {
        // progress is never category-filtered
        progress("test-bin", "phase one done");
    });
    assert!(events.iter().any(|e| matches!(
        e,
        Event::Progress { topic, message }
            if topic == "test-bin" && message == "phase one done"
    )));
}

#[test]
fn stopwatch_records_into_named_histogram() {
    let (_, _) = with_capture(Category::ALL, || {
        let sw = Stopwatch::start();
        let us = sw.record("gated.sw_us");
        assert!(us >= 0.0);
    });
    let snap = alss_telemetry::snapshot();
    assert!(snap.histogram("gated.sw_us").map(|h| h.count) >= Some(1));
}

#[test]
fn histogram_handle_routes_to_registry() {
    let (_, _) = with_capture(Category::ALL, || {
        histogram("gated.route_us").record(7);
    });
    let snap = alss_telemetry::snapshot();
    assert_eq!(snap.histogram("gated.route_us").map(|h| h.max), Some(7));
}
