//! Minimal JSON writing. The crate is deliberately dependency-free, so the
//! sinks render their own JSON instead of pulling in a serializer; the
//! output is standard JSON (escaped strings; non-finite floats as `null`,
//! matching `serde_json`'s lossy behaviour).

/// Append `s` to `out` as a JSON string literal (with quotes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` to `out` as a JSON number (`null` when non-finite).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Incremental JSON object builder.
#[derive(Default)]
pub struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    /// Start an object (`{`).
    pub fn new() -> Self {
        Obj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_str(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, val: &str) -> Self {
        self.key(key);
        write_str(&mut self.buf, val);
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, key: &str, val: u64) -> Self {
        self.key(key);
        self.buf.push_str(&val.to_string());
        self
    }

    /// Add a signed integer field.
    pub fn i64(mut self, key: &str, val: i64) -> Self {
        self.key(key);
        self.buf.push_str(&val.to_string());
        self
    }

    /// Add a float field (`null` when non-finite).
    pub fn f64(mut self, key: &str, val: f64) -> Self {
        self.key(key);
        write_f64(&mut self.buf, val);
        self
    }

    /// Add a field whose value is already-rendered JSON.
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Close the object and return the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_strings() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn builds_objects() {
        let j = Obj::new()
            .str("type", "span")
            .u64("n", 3)
            .i64("g", -4)
            .f64("us", 1.5)
            .raw("inner", "{}")
            .finish();
        assert_eq!(
            j,
            "{\"type\":\"span\",\"n\":3,\"g\":-4,\"us\":1.5,\"inner\":{}}"
        );
    }

    #[test]
    fn non_finite_floats_are_null() {
        let j = Obj::new()
            .f64("x", f64::NAN)
            .f64("y", f64::INFINITY)
            .finish();
        assert_eq!(j, "{\"x\":null,\"y\":null}");
    }

    #[test]
    fn empty_object() {
        assert_eq!(Obj::new().finish(), "{}");
    }
}
