//! RAII span scopes with per-thread span stacks, and the [`Stopwatch`]
//! interval timer.

use crate::sink::Event;
use crate::Category;
use std::cell::RefCell;
use std::time::{Duration, Instant};

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Snapshot of this thread's open-span names (outermost first). Exposed
/// for tests and diagnostics.
pub fn current_stack() -> Vec<&'static str> {
    SPAN_STACK.with(|s| s.borrow().clone())
}

/// A timed scope. Construct with [`Span::enter`]; the span measures until
/// it is dropped, then emits an [`Event::Span`] carrying its `/`-joined
/// ancestry and duration, and records the duration into the
/// `span.<name>_us` histogram.
///
/// When span recording is disabled the constructor returns an inert value
/// and the whole probe costs one branch.
#[must_use = "a span measures until dropped; binding it to `_` drops immediately"]
pub struct Span {
    active: Option<(Instant, &'static str)>,
}

impl Span {
    /// Open a span named `name` on this thread.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        if !crate::enabled(Category::Spans) {
            return Span { active: None };
        }
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
        Span {
            active: Some((Instant::now(), name)),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((start, name)) = self.active.take() else {
            return;
        };
        let micros = start.elapsed().as_secs_f64() * 1e6;
        let path = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        crate::histogram(&format!("span.{name}_us")).record(duration_to_micros(start.elapsed()));
        crate::emit(&Event::Span {
            name,
            path,
            micros,
            thread: thread_name(),
        });
    }
}

fn thread_name() -> String {
    std::thread::current()
        .name()
        .unwrap_or("unnamed")
        .to_string()
}

/// Saturating whole-microsecond conversion for histogram recording.
#[inline]
pub fn duration_to_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// A monotonic interval timer. Unlike [`Span`] it always measures (so
/// callers can keep using the elapsed time for their own results) and
/// only the optional [`Stopwatch::record`] call touches telemetry.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    #[inline]
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed wall-clock time.
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed microseconds as a float (the unit the eval kit reports).
    #[inline]
    pub fn elapsed_micros(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e6
    }

    /// Elapsed seconds as a float.
    #[inline]
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Record the elapsed time into histogram `name` (microseconds) and
    /// return it as float microseconds.
    #[inline]
    pub fn record(&self, name: &str) -> f64 {
        let d = self.start.elapsed();
        crate::histogram(name).record(duration_to_micros(d));
        d.as_secs_f64() * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_span_leaves_stack_alone() {
        // Recording is disabled by default (no mask set), so entering a
        // span must not touch the thread-local stack.
        let before = current_stack();
        {
            let _s = Span::enter("probe");
            assert_eq!(current_stack(), before);
        }
        assert_eq!(current_stack(), before);
    }

    #[test]
    fn stopwatch_measures_without_telemetry() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed_micros() >= 2_000.0);
        assert!(sw.elapsed_secs() > 0.0);
        // record() is a histogram no-op when disabled but still returns
        // the measurement
        assert!(sw.record("test.sw_us") >= 2_000.0);
    }

    #[test]
    fn micros_conversion_saturates() {
        assert_eq!(duration_to_micros(Duration::from_micros(5)), 5);
        assert_eq!(duration_to_micros(Duration::MAX), u64::MAX);
    }
}
