//! Event types and the pluggable [`Sink`] trait, with three shipped
//! implementations: JSON-lines file, pretty stderr, and test capture.

use crate::json::Obj;
use crate::lock_unpoisoned;
use crate::registry::Snapshot;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One typed value in a point event.
#[derive(Clone, Debug, PartialEq)]
pub enum Field {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
}

impl From<u64> for Field {
    fn from(v: u64) -> Self {
        Field::U64(v)
    }
}

impl From<usize> for Field {
    fn from(v: usize) -> Self {
        Field::U64(v as u64)
    }
}

impl From<i64> for Field {
    fn from(v: i64) -> Self {
        Field::I64(v)
    }
}

impl From<f64> for Field {
    fn from(v: f64) -> Self {
        Field::F64(v)
    }
}

impl From<f32> for Field {
    fn from(v: f32) -> Self {
        Field::F64(f64::from(v))
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Self {
        Field::Str(v.to_string())
    }
}

/// One telemetry record.
#[derive(Clone, Debug)]
pub enum Event {
    /// A completed span scope.
    Span {
        /// Span name (the innermost scope).
        name: &'static str,
        /// `/`-joined path of enclosing spans on this thread, ending in
        /// `name`.
        path: String,
        /// Wall-clock duration in microseconds.
        micros: f64,
        /// Name of the recording thread.
        thread: String,
    },
    /// A structured point event (e.g. one per training epoch).
    Point {
        /// Event name.
        name: &'static str,
        /// Ordered field list.
        fields: Vec<(String, Field)>,
    },
    /// A human-facing progress line (always emitted, never filtered).
    Progress {
        /// Reporting component (usually the binary name).
        topic: String,
        /// The message.
        message: String,
    },
    /// A metrics-registry snapshot.
    Snapshot(Snapshot),
}

impl Event {
    /// Render as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            Event::Span {
                name,
                path,
                micros,
                thread,
            } => Obj::new()
                .str("type", "span")
                .str("name", name)
                .str("path", path)
                .str("thread", thread)
                .f64("us", *micros)
                .finish(),
            Event::Point { name, fields } => {
                let mut f = Obj::new();
                for (k, v) in fields {
                    f = match v {
                        Field::U64(x) => f.u64(k, *x),
                        Field::I64(x) => f.i64(k, *x),
                        Field::F64(x) => f.f64(k, *x),
                        Field::Str(x) => f.str(k, x),
                    };
                }
                Obj::new()
                    .str("type", "event")
                    .str("name", name)
                    .raw("fields", &f.finish())
                    .finish()
            }
            Event::Progress { topic, message } => Obj::new()
                .str("type", "progress")
                .str("topic", topic)
                .str("message", message)
                .finish(),
            Event::Snapshot(snap) => snap.to_json(),
        }
    }

    /// The standard single-line stderr rendering of this event.
    pub fn progress_line(&self) -> String {
        match self {
            Event::Span {
                path,
                micros,
                thread,
                ..
            } => format!("[alss:span] {path} {micros:.1}us ({thread})"),
            Event::Point { name, fields } => {
                let mut line = format!("[alss:{name}]");
                for (k, v) in fields {
                    match v {
                        Field::U64(x) => line.push_str(&format!(" {k}={x}")),
                        Field::I64(x) => line.push_str(&format!(" {k}={x}")),
                        Field::F64(x) => line.push_str(&format!(" {k}={x:.6}")),
                        Field::Str(x) => line.push_str(&format!(" {k}={x}")),
                    }
                }
                line
            }
            Event::Progress { topic, message } => format!("[alss:{topic}] {message}"),
            Event::Snapshot(snap) => {
                format!(
                    "[alss:snapshot] {} counters, {} gauges, {} histograms",
                    snap.counters.len(),
                    snap.gauges.len(),
                    snap.histograms.len()
                )
            }
        }
    }
}

/// Where completed events go. Implementations must be cheap and must
/// never panic: telemetry may not take the instrumented program down.
pub trait Sink {
    /// Consume one event.
    fn emit(&self, event: &Event);

    /// Flush buffered output (called on uninstall and by guards).
    fn flush(&self) {}

    /// `true` when this sink already prints [`Event::Progress`] lines to
    /// stderr, so [`crate::progress`] should not echo them again.
    fn prints_progress(&self) -> bool {
        false
    }
}

/// JSON-lines file sink: one JSON object per line, with a monotone `seq`
/// field stamped on every line.
pub struct JsonLinesSink {
    out: Mutex<BufWriter<File>>,
    seq: AtomicU64,
}

impl JsonLinesSink {
    /// Create (truncate) the output file.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let f = File::create(path)?;
        Ok(JsonLinesSink {
            out: Mutex::new(BufWriter::new(f)),
            seq: AtomicU64::new(0),
        })
    }
}

impl Sink for JsonLinesSink {
    fn emit(&self, event: &Event) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut json = event.to_json();
        // splice the seq in before the closing brace
        json.pop();
        let line = if json.len() > 1 {
            format!("{json},\"seq\":{seq}}}")
        } else {
            format!("{json}\"seq\":{seq}}}")
        };
        let mut w = lock_unpoisoned(&self.out);
        // I/O errors are swallowed by design: a full disk must not abort
        // the instrumented run.
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = lock_unpoisoned(&self.out).flush();
    }
}

/// Pretty stderr sink: renders every event with [`Event::progress_line`].
pub struct StderrSink;

impl Sink for StderrSink {
    fn emit(&self, event: &Event) {
        // analyzer: allow(no-println) - this sink IS the sanctioned stderr
        // reporting path the no-println rule points library code at
        eprintln!("{}", event.progress_line());
    }

    fn prints_progress(&self) -> bool {
        true
    }
}

/// Test sink: buffers every event for later assertions.
#[derive(Default)]
pub struct CaptureSink {
    events: Mutex<Vec<Event>>,
}

impl CaptureSink {
    /// An empty capture buffer.
    pub fn new() -> Self {
        CaptureSink::default()
    }

    /// Copy of everything captured so far.
    pub fn events(&self) -> Vec<Event> {
        lock_unpoisoned(&self.events).clone()
    }

    /// Drain the buffer.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut lock_unpoisoned(&self.events))
    }
}

impl Sink for CaptureSink {
    fn emit(&self, event: &Event) {
        lock_unpoisoned(&self.events).push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_event_json_shape() {
        let e = Event::Span {
            name: "decompose",
            path: "encode/decompose".to_string(),
            micros: 12.5,
            thread: "main".to_string(),
        };
        assert_eq!(
            e.to_json(),
            "{\"type\":\"span\",\"name\":\"decompose\",\"path\":\"encode/decompose\",\
             \"thread\":\"main\",\"us\":12.5}"
        );
    }

    #[test]
    fn point_event_json_shape() {
        let e = Event::Point {
            name: "train.epoch",
            fields: vec![
                ("epoch".to_string(), Field::U64(3)),
                ("loss".to_string(), Field::F64(0.5)),
            ],
        };
        assert_eq!(
            e.to_json(),
            "{\"type\":\"event\",\"name\":\"train.epoch\",\
             \"fields\":{\"epoch\":3,\"loss\":0.5}}"
        );
    }

    #[test]
    fn progress_line_format() {
        let e = Event::Progress {
            topic: "fig4".to_string(),
            message: "done".to_string(),
        };
        assert_eq!(e.progress_line(), "[alss:fig4] done");
        assert_eq!(
            e.to_json(),
            "{\"type\":\"progress\",\"topic\":\"fig4\",\"message\":\"done\"}"
        );
    }

    #[test]
    fn capture_sink_buffers_and_drains() {
        let s = CaptureSink::new();
        s.emit(&Event::Progress {
            topic: "t".to_string(),
            message: "m".to_string(),
        });
        assert_eq!(s.events().len(), 1);
        assert_eq!(s.take().len(), 1);
        assert!(s.events().is_empty());
    }

    #[test]
    fn jsonl_sink_stamps_seq() {
        let dir = std::env::temp_dir().join("alss-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seq.jsonl");
        let sink = JsonLinesSink::create(&path).unwrap();
        sink.emit(&Event::Progress {
            topic: "a".to_string(),
            message: "b".to_string(),
        });
        sink.emit(&Event::Snapshot(Snapshot::default()));
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].ends_with(",\"seq\":0}"), "{}", lines[0]);
        assert!(lines[1].ends_with(",\"seq\":1}"), "{}", lines[1]);
        std::fs::remove_file(&path).ok();
    }
}
