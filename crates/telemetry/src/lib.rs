//! # alss-telemetry
//!
//! Zero-dependency structured tracing, metrics, and profiling hooks for the
//! ALSS workspace. Three layers:
//!
//! 1. **Tracing core** ([`span`]) — RAII [`Span`] scopes with per-thread
//!    span stacks and monotonic timing, plus a [`Stopwatch`] for explicit
//!    interval measurement. Completed spans are routed to a pluggable
//!    [`Sink`]: a JSON-lines file sink, a pretty stderr sink, and a
//!    test-capturing sink ship in [`sink`].
//! 2. **Metrics registry** ([`registry`]) — named [`Counter`]s, [`Gauge`]s,
//!    and log-scale [`LogHistogram`]s (p50/p95/p99/max). [`snapshot`]
//!    freezes the registry into a [`Snapshot`] that serializes to the same
//!    JSON-lines schema the sinks write.
//! 3. **Probes** — the instrumented crates (`alss-graph`, `alss-core`,
//!    `alss-matching`, `alss-estimators`, `alss-bench`) call [`Span::enter`],
//!    [`counter`], [`event`], … directly; every probe is free when disabled.
//!
//! ## Gating
//!
//! Recording is **double-gated**:
//!
//! * at **compile time** by the `telemetry` cargo feature — with it off,
//!   [`enabled`] is a constant `false` and the optimizer removes every
//!   probe body, so the hot paths cost nothing;
//! * at **run time** by the `ALSS_TELEMETRY` environment filter — a
//!   comma-separated subset of `spans`, `metrics`, `events` (or `all` /
//!   `off`), parsed once into a bitmask checked with one relaxed atomic
//!   load per probe.
//!
//! [`progress`] is the one exception: it replaces the ad-hoc
//! `println!`-style progress reporting of the bench binaries and therefore
//! always prints (to the installed sink when one accepts it, else to
//! stderr in the same `[alss:<topic>] <message>` format).
//!
//! ## JSON-lines schema
//!
//! Every emitted line is one JSON object tagged by `"type"`:
//!
//! ```json
//! {"type":"span","name":"decompose","path":"encode.query/decompose","thread":"main","us":12.5}
//! {"type":"event","name":"train.epoch","fields":{"epoch":1,"loss":0.52,"grad_norm":1.8,"lr":0.003}}
//! {"type":"progress","topic":"fig4","message":"aids: 80 train / 20 test"}
//! {"type":"snapshot","counters":{"matching.nodes_expanded":10234},"gauges":{},"histograms":{"matching.root_us":{"count":96,"sum":5120,"mean":53.3,"p50":48,"p95":96,"p99":96,"max":101}}}
//! ```

// Test modules opt back out of the library panic/numeric policy: a panic
// IS the failure report there, and fixtures are tiny.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub mod json;
pub mod registry;
pub mod sink;
pub mod span;

pub use registry::{Counter, Gauge, Histogram, HistogramSummary, LogHistogram, Snapshot};
pub use sink::{CaptureSink, Event, Field, JsonLinesSink, Sink, StderrSink};
pub use span::{Span, Stopwatch};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Categories of recorded data; bits of the runtime enable mask.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Category {
    /// RAII span scopes (timing tree).
    Spans,
    /// Counters, gauges, histograms.
    Metrics,
    /// Structured point events (e.g. one per training epoch).
    Events,
}

impl Category {
    /// This category's bit in the enable mask.
    pub const fn bit(self) -> u8 {
        match self {
            Category::Spans => 1,
            Category::Metrics => 2,
            Category::Events => 4,
        }
    }

    /// Mask with every category enabled.
    pub const ALL: u8 = 7;
}

static MASK: AtomicU8 = AtomicU8::new(0);
#[allow(clippy::type_complexity)]
static SINK: RwLock<Option<Arc<dyn Sink + Send + Sync>>> = RwLock::new(None);

/// Is recording for `cat` enabled? Constant `false` without the
/// `telemetry` feature; one relaxed atomic load with it.
#[inline(always)]
pub fn enabled(cat: Category) -> bool {
    #[cfg(feature = "telemetry")]
    {
        MASK.load(Ordering::Relaxed) & cat.bit() != 0
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = cat;
        false
    }
}

/// `true` when the crate was built with the `telemetry` feature (i.e.
/// recording *can* be enabled at runtime).
pub const fn compiled_in() -> bool {
    cfg!(feature = "telemetry")
}

/// Install a sink and set the runtime enable mask. Replaces any previous
/// sink (which is flushed first).
pub fn install(sink: Arc<dyn Sink + Send + Sync>, mask: u8) {
    if let Ok(mut s) = SINK.write() {
        if let Some(prev) = s.take() {
            prev.flush();
        }
        *s = Some(sink);
    }
    MASK.store(mask & Category::ALL, Ordering::Relaxed);
}

/// Disable recording and drop the sink (flushing it).
pub fn uninstall() {
    MASK.store(0, Ordering::Relaxed);
    if let Ok(mut s) = SINK.write() {
        if let Some(prev) = s.take() {
            prev.flush();
        }
    }
}

/// Parse the `ALSS_TELEMETRY` environment filter. `None` when unset;
/// `Some(mask)` otherwise (`off`/`0` give 0; `all`/`1`/`on` give
/// [`Category::ALL`]; otherwise a comma-separated subset of
/// `spans`,`metrics`,`events`).
pub fn mask_from_env() -> Option<u8> {
    let raw = std::env::var("ALSS_TELEMETRY").ok()?;
    Some(parse_mask(&raw))
}

/// Parse a filter string (see [`mask_from_env`]).
pub fn parse_mask(raw: &str) -> u8 {
    let raw = raw.trim();
    match raw {
        "" | "0" | "off" | "none" => return 0,
        "1" | "all" | "on" => return Category::ALL,
        _ => {}
    }
    let mut mask = 0;
    for tok in raw.split(',') {
        mask |= match tok.trim() {
            "spans" | "span" => Category::Spans.bit(),
            "metrics" | "metric" => Category::Metrics.bit(),
            "events" | "event" => Category::Events.bit(),
            _ => 0,
        };
    }
    mask
}

/// Install the pretty stderr sink with the mask from `ALSS_TELEMETRY`,
/// if the variable is set and non-zero. Returns the active mask.
pub fn init_from_env() -> u8 {
    let mask = mask_from_env().unwrap_or(0);
    if mask != 0 {
        install(Arc::new(StderrSink), mask);
    }
    mask
}

/// Route one event to the installed sink (no-op without one).
pub fn emit(event: &Event) {
    if let Ok(guard) = SINK.read() {
        if let Some(sink) = guard.as_ref() {
            sink.emit(event);
        }
    }
}

/// Flush the installed sink.
pub fn flush() {
    if let Ok(guard) = SINK.read() {
        if let Some(sink) = guard.as_ref() {
            sink.flush();
        }
    }
}

/// Counter handle for `name` (no-op when metrics are disabled).
#[inline]
pub fn counter(name: &str) -> Counter {
    if !enabled(Category::Metrics) {
        return Counter::noop();
    }
    registry::global().counter(name)
}

/// Gauge handle for `name` (no-op when metrics are disabled).
#[inline]
pub fn gauge(name: &str) -> Gauge {
    if !enabled(Category::Metrics) {
        return Gauge::noop();
    }
    registry::global().gauge(name)
}

/// Histogram handle for `name` (no-op when metrics are disabled).
#[inline]
pub fn histogram(name: &str) -> Histogram {
    if !enabled(Category::Metrics) {
        return Histogram::noop();
    }
    registry::global().histogram(name)
}

/// Emit a structured point event. The field list is only materialized
/// when events are enabled, so pass-through cost is one branch.
#[inline]
pub fn event(name: &'static str, fields: &[(&str, Field)]) {
    if !enabled(Category::Events) {
        return;
    }
    emit(&Event::Point {
        name,
        fields: fields
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect(),
    });
}

/// Freeze the metrics registry into a snapshot (empty when metrics were
/// never enabled).
pub fn snapshot() -> Snapshot {
    registry::global().snapshot()
}

/// Emit the current registry snapshot as an event through the sink.
pub fn emit_snapshot() {
    emit(&Event::Snapshot(snapshot()));
}

/// Progress reporting: the consistent replacement for ad-hoc `println!`
/// progress lines in the binaries. Always visible — goes to the installed
/// sink when one is present, and to stderr in the standard
/// `[alss:<topic>] <message>` format otherwise (or when the sink asks for
/// an echo, as the JSON-lines sink does).
pub fn progress(topic: &str, message: &str) {
    let ev = Event::Progress {
        topic: topic.to_string(),
        message: message.to_string(),
    };
    let mut echoed = false;
    if let Ok(guard) = SINK.read() {
        if let Some(sink) = guard.as_ref() {
            sink.emit(&ev);
            echoed = sink.prints_progress();
        }
    }
    if !echoed {
        // analyzer: allow(no-println) - this is the telemetry stderr escape
        // hatch itself: progress must stay visible with no sink installed
        eprintln!("{}", ev.progress_line());
    }
}

/// Lock a mutex, recovering the guard from a poisoned lock (telemetry
/// must never abort the instrumented program).
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Support for integration tests that need the *global* sink: installs a
/// capture sink for the duration of a closure, serialized process-wide so
/// concurrently running tests do not steal each other's events.
///
/// Only compiled with the `telemetry` feature (without it nothing is ever
/// recorded, so there is nothing to capture).
#[cfg(feature = "telemetry")]
pub mod test_support {
    use super::*;

    static TEST_GUARD: Mutex<()> = Mutex::new(());

    /// Run `f` with a fresh [`CaptureSink`] installed under `mask`, and
    /// return its result plus everything captured. Note the metrics
    /// registry is process-global and is *not* reset — assert on deltas
    /// or on uniquely named instruments.
    pub fn with_capture<R>(mask: u8, f: impl FnOnce() -> R) -> (R, Vec<Event>) {
        let _serialized = lock_unpoisoned(&TEST_GUARD);
        let sink = Arc::new(CaptureSink::new());
        install(sink.clone(), mask);
        let result = f();
        let events = sink.take();
        uninstall();
        (result, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_parsing() {
        assert_eq!(parse_mask("off"), 0);
        assert_eq!(parse_mask("0"), 0);
        assert_eq!(parse_mask(""), 0);
        assert_eq!(parse_mask("all"), Category::ALL);
        assert_eq!(parse_mask("1"), Category::ALL);
        assert_eq!(parse_mask("spans"), Category::Spans.bit());
        assert_eq!(
            parse_mask("spans,metrics"),
            Category::Spans.bit() | Category::Metrics.bit()
        );
        assert_eq!(parse_mask(" events , spans "), 5);
        assert_eq!(parse_mask("bogus"), 0);
    }

    #[test]
    fn disabled_handles_are_noops() {
        // With no mask set (and regardless of the feature), handles are
        // inert and never touch the registry.
        let c = Counter::noop();
        c.add(5);
        c.inc();
        let g = Gauge::noop();
        g.set(3);
        let h = Histogram::noop();
        h.record(10);
    }

    #[test]
    fn compiled_in_matches_feature() {
        assert_eq!(compiled_in(), cfg!(feature = "telemetry"));
    }
}
