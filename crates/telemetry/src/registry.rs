//! Metrics registry: named counters, gauges, and log-scale histograms,
//! with a serializable point-in-time [`Snapshot`].

use crate::json::Obj;
use crate::lock_unpoisoned;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A log₂-bucketed histogram of `u64` samples (typically microseconds).
///
/// Bucket `0` holds the value `0`; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)` (the last bucket absorbs everything above `2^62`).
/// Quantiles are answered with the geometric bucket midpoint, clamped to
/// the exact observed maximum — a ≤ 2× relative error by construction,
/// which is what latency percentiles need at zero coordination cost
/// (recording is three relaxed atomic ops).
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a sample.
#[inline]
fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(63)
}

/// Representative value reported for a bucket: its arithmetic midpoint.
fn bucket_mid(i: usize) -> u64 {
    match i {
        0 => 0,
        1 => 1,
        _ => {
            let lo = 1u64 << (i - 1);
            let hi = lo.saturating_mul(2).saturating_sub(1);
            lo + (hi - lo) / 2
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample (exact).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The `pct`-th percentile (`pct` in `1..=100`), approximated by the
    /// bucket midpoint and clamped to the observed maximum. 0 when empty.
    pub fn percentile(&self, pct: u64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        if pct >= 100 {
            return self.max();
        }
        // ceil(n * pct / 100), clamped into [1, n]: the rank of the sample
        // that `pct` percent of samples are ≤.
        let rank = (n.saturating_mul(pct).div_ceil(100)).clamp(1, n);
        // A quantile landing in the highest occupied bucket reports the
        // exact observed maximum instead of the bucket midpoint.
        let top = self
            .buckets
            .iter()
            .rposition(|b| b.load(Ordering::Relaxed) > 0);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(b.load(Ordering::Relaxed));
            if seen >= rank {
                if Some(i) == top {
                    return self.max();
                }
                return bucket_mid(i).min(self.max());
            }
        }
        self.max()
    }

    /// Summarize into a serializable record.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            mean: self.mean(),
            p50: self.percentile(50),
            p95: self.percentile(95),
            p99: self.percentile(99),
            max: self.max(),
        }
    }
}

/// Point-in-time summary of one histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Mean sample.
    pub mean: f64,
    /// Median (log-bucket approximation).
    pub p50: u64,
    /// 95th percentile (log-bucket approximation).
    pub p95: u64,
    /// 99th percentile (log-bucket approximation).
    pub p99: u64,
    /// Maximum (exact).
    pub max: u64,
}

impl HistogramSummary {
    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        Obj::new()
            .u64("count", self.count)
            .u64("sum", self.sum)
            .f64("mean", self.mean)
            .u64("p50", self.p50)
            .u64("p95", self.p95)
            .u64("p99", self.p99)
            .u64("max", self.max)
            .finish()
    }
}

/// Monotonic counter handle. Inert when obtained while metrics are
/// disabled.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// An inert handle.
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
}

/// Last-write-wins gauge handle.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// An inert handle.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Adjust the gauge by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(delta, Ordering::Relaxed);
        }
    }
}

/// Histogram handle.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<LogHistogram>>);

impl Histogram {
    /// An inert handle.
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }
}

/// The global named-instrument registry.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<LogHistogram>>>,
}

impl Registry {
    /// Counter handle for `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = lock_unpoisoned(&self.counters);
        Counter(Some(Arc::clone(map.entry(name.to_string()).or_default())))
    }

    /// Gauge handle for `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = lock_unpoisoned(&self.gauges);
        Gauge(Some(Arc::clone(map.entry(name.to_string()).or_default())))
    }

    /// Histogram handle for `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = lock_unpoisoned(&self.histograms);
        Histogram(Some(Arc::clone(map.entry(name.to_string()).or_default())))
    }

    /// Freeze every instrument into a sorted snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let counters = lock_unpoisoned(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = lock_unpoisoned(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = lock_unpoisoned(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.summary()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Point-in-time copy of the whole registry (name-sorted).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl Snapshot {
    /// Render the snapshot body (without the `"type"` tag) as JSON.
    pub fn to_json(&self) -> String {
        let mut counters = Obj::new();
        for (k, v) in &self.counters {
            counters = counters.u64(k, *v);
        }
        let mut gauges = Obj::new();
        for (k, v) in &self.gauges {
            gauges = gauges.i64(k, *v);
        }
        let mut hists = Obj::new();
        for (k, v) in &self.histograms {
            hists = hists.raw(k, &v.to_json());
        }
        Obj::new()
            .str("type", "snapshot")
            .raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .raw("histograms", &hists.finish())
            .finish()
    }

    /// Value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Summary of a histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_sample_percentiles() {
        let h = LogHistogram::new();
        h.record(100);
        for pct in [1, 50, 95, 99, 100] {
            // clamped to the exact max
            assert_eq!(h.percentile(pct), 100, "pct {pct}");
        }
        assert_eq!(h.max(), 100);
        assert_eq!(h.sum(), 100);
    }

    #[test]
    fn uniform_samples_land_in_log_bounds() {
        let h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // the true p50 is 500 → bucket [256, 511], midpoint ~383
        let p50 = h.percentile(50);
        assert!((256..=511).contains(&p50), "p50 = {p50}");
        // the true p95 is 950 → bucket [512, 1023]
        let p95 = h.percentile(95);
        assert!((512..=1000).contains(&p95), "p95 = {p95}");
        // max is exact, and p100 equals it
        assert_eq!(h.max(), 1000);
        assert_eq!(h.percentile(100), 1000);
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_monotone() {
        let h = LogHistogram::new();
        for v in [1u64, 5, 9, 40, 80, 200, 1_000, 50_000, 1_000_000] {
            h.record(v);
        }
        let mut last = 0;
        for pct in [1, 10, 25, 50, 75, 90, 95, 99, 100] {
            let p = h.percentile(pct);
            assert!(p >= last, "pct {pct}: {p} < {last}");
            last = p;
        }
        assert!(last <= h.max());
    }

    #[test]
    fn zeros_only_histogram() {
        let h = LogHistogram::new();
        for _ in 0..10 {
            h.record(0);
        }
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.percentile(99), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn summary_matches_accessors() {
        let h = LogHistogram::new();
        h.record(10);
        h.record(20);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 30);
        assert_eq!(s.max, 20);
        assert_eq!(s.p50, h.percentile(50));
        assert!((s.mean - 15.0).abs() < 1e-9);
    }

    #[test]
    fn registry_reuses_instruments_by_name() {
        let r = Registry::default();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.add(3);
        let snap = r.snapshot();
        assert_eq!(snap.counter("x"), Some(5));
        assert_eq!(snap.counter("y"), None);
    }

    #[test]
    fn snapshot_renders_json() {
        let r = Registry::default();
        r.counter("c").add(7);
        r.gauge("g").set(-2);
        r.histogram("h").record(4);
        let j = r.snapshot().to_json();
        assert!(j.starts_with("{\"type\":\"snapshot\""), "{j}");
        assert!(j.contains("\"c\":7"), "{j}");
        assert!(j.contains("\"g\":-2"), "{j}");
        assert!(j.contains("\"count\":1"), "{j}");
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let r = Registry::default();
        r.counter("zeta").inc();
        r.counter("alpha").inc();
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
