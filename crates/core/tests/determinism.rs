//! Determinism of the data-parallel training/inference stack: every entry
//! point that fans out over worker threads must produce bit-identical
//! results at any thread count, including 1. Gradients are reduced in
//! batch-position order and dropout streams are keyed by `(seed, epoch,
//! item)`, so the floating-point computation is schedule-independent; this
//! suite is the executable statement of that contract.

use alss_core::train::{
    encode_workload_with, eval_loss_with, evaluate_with, seeded_rng, train_model, TrainConfig,
};
use alss_core::{
    select_batch_with, Encoder, LabeledQuery, LssConfig, LssEnsemble, LssModel, Parallelism,
    Strategy, Workload,
};
use alss_graph::builder::graph_from_edges;
use alss_graph::Graph;
use alss_nn::AdamConfig;

fn data_graph() -> Graph {
    graph_from_edges(&[0, 0, 1, 1, 2], &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
}

fn workload() -> Workload {
    let mut qs = Vec::new();
    for (labels, edges, count) in [
        (vec![0u32, 0], vec![(0u32, 1u32)], 10u64),
        (vec![0, 1], vec![(0, 1)], 100),
        (vec![1, 1], vec![(0, 1)], 40),
        (vec![0, 0, 1], vec![(0, 1), (1, 2)], 1_000),
        (vec![0, 1, 2], vec![(0, 1), (1, 2)], 5_000),
        (vec![1, 1, 2], vec![(0, 1), (1, 2)], 2_000),
        (vec![0, 0, 1, 2], vec![(0, 1), (1, 2), (2, 3)], 50_000),
        (vec![0, 1, 1, 2], vec![(0, 1), (1, 2), (2, 3)], 20_000),
        (vec![2, 1, 0], vec![(0, 1), (1, 2)], 700),
        (vec![2, 2], vec![(0, 1)], 5),
    ] {
        qs.push(LabeledQuery::new(graph_from_edges(&labels, &edges), count));
    }
    Workload::from_queries(qs)
}

/// Dropout > 0 so the per-item RNG streams are actually exercised — a
/// schedule-dependent dropout draw is exactly the bug class this guards.
fn dropout_config() -> LssConfig {
    LssConfig {
        dropout: 0.3,
        ..LssConfig::tiny()
    }
}

fn train_config(threads: usize) -> TrainConfig {
    TrainConfig {
        epochs: 6,
        batch_size: 4,
        adam: AdamConfig {
            lr: 5e-3,
            weight_decay: 1e-5,
            lr_decay: 0.98,
            ..Default::default()
        },
        seed: 7,
        parallelism: Parallelism::fixed(threads),
    }
}

fn trained_at(threads: usize) -> (LssModel, Vec<f64>) {
    let enc = Encoder::frequency(&data_graph(), 3);
    let mut rng = seeded_rng(11);
    let mut model = LssModel::new(dropout_config(), enc.node_dim(), enc.edge_dim(), &mut rng);
    let items = encode_workload_with(&enc, &workload(), Parallelism::fixed(threads));
    let report = train_model(&mut model, &items, &train_config(threads));
    (model, report.epoch_losses)
}

fn param_bits(model: &LssModel) -> Vec<u32> {
    let store = model.store();
    store
        .ids()
        .flat_map(|id| store.value(id).data().iter().map(|x| x.to_bits()))
        .collect()
}

#[test]
fn training_is_bit_identical_across_thread_counts() {
    let (serial_model, serial_losses) = trained_at(1);
    let serial_bits = param_bits(&serial_model);
    for threads in [2, 4] {
        let (model, losses) = trained_at(threads);
        let loss_bits: Vec<u64> = losses.iter().map(|l| l.to_bits()).collect();
        let serial_loss_bits: Vec<u64> = serial_losses.iter().map(|l| l.to_bits()).collect();
        assert_eq!(
            loss_bits, serial_loss_bits,
            "epoch losses diverge at threads={threads}"
        );
        assert_eq!(
            param_bits(&model),
            serial_bits,
            "final parameters diverge at threads={threads}"
        );
    }
}

#[test]
fn evaluate_and_eval_loss_match_serial() {
    let (model, _) = trained_at(1);
    let enc = Encoder::frequency(&data_graph(), 3);
    let items = encode_workload_with(&enc, &workload(), Parallelism::serial());
    let serial_eval = evaluate_with(&model, &items, Parallelism::serial());
    let serial_loss = eval_loss_with(&model, &items, Parallelism::serial());
    for threads in [2, 4] {
        let par = Parallelism::fixed(threads);
        let eval = evaluate_with(&model, &items, par);
        assert_eq!(eval.len(), serial_eval.len());
        for (i, (a, b)) in serial_eval.iter().zip(&eval).enumerate() {
            assert_eq!(a.0.to_bits(), b.0.to_bits(), "item {i} true count");
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "item {i} estimate");
        }
        assert_eq!(
            eval_loss_with(&model, &items, par).to_bits(),
            serial_loss.to_bits(),
            "eval_loss diverges at threads={threads}"
        );
    }
}

#[test]
fn encode_workload_is_order_stable() {
    let enc = Encoder::frequency(&data_graph(), 3);
    let w = workload();
    let serial = encode_workload_with(&enc, &w, Parallelism::serial());
    let parallel = encode_workload_with(&enc, &w, Parallelism::fixed(4));
    assert_eq!(serial.len(), parallel.len());
    // EncodedQuery carries no PartialEq; compare every feature matrix,
    // adjacency list, and edge-sum block bitwise.
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(a.1, b.1, "item {i} count");
        assert_eq!(a.0.subs.len(), b.0.subs.len(), "item {i} substructures");
        for (j, (sa, sb)) in a.0.subs.iter().zip(&b.0.subs).enumerate() {
            let bits = |m: &alss_nn::Mat| m.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(&sa.features),
                bits(&sb.features),
                "item {i} sub {j} features"
            );
            assert_eq!(*sa.adj, *sb.adj, "item {i} sub {j} adjacency");
            assert_eq!(
                sa.edge_sums.as_ref().map(&bits),
                sb.edge_sums.as_ref().map(&bits),
                "item {i} sub {j} edge sums"
            );
        }
    }
}

#[test]
fn select_batch_matches_serial_for_fixed_rng() {
    let (model, _) = trained_at(1);
    let enc = Encoder::frequency(&data_graph(), 3);
    let pool: Vec<_> = workload()
        .queries
        .iter()
        .map(|q| enc.encode_query(&q.graph))
        .collect();
    for strategy in Strategy::all() {
        let mut rng_a = seeded_rng(21);
        let mut rng_b = seeded_rng(21);
        let serial = select_batch_with(
            &model,
            &pool,
            strategy,
            4,
            &mut rng_a,
            Parallelism::serial(),
        );
        let parallel = select_batch_with(
            &model,
            &pool,
            strategy,
            4,
            &mut rng_b,
            Parallelism::fixed(4),
        );
        assert_eq!(serial, parallel, "strategy {}", strategy.name());
    }
}

#[test]
fn ensemble_select_batch_matches_serial() {
    let enc = Encoder::frequency(&data_graph(), 3);
    let models: Vec<LssModel> = (0..2)
        .map(|s| {
            let mut rng = seeded_rng(30 + s);
            LssModel::new(LssConfig::tiny(), enc.node_dim(), enc.edge_dim(), &mut rng)
        })
        .collect();
    let ens = LssEnsemble::new(models);
    let pool: Vec<_> = workload()
        .queries
        .iter()
        .map(|q| enc.encode_query(&q.graph))
        .collect();
    let mut rng_a = seeded_rng(40);
    let mut rng_b = seeded_rng(40);
    let serial = ens.select_batch_with(&pool, 3, &mut rng_a, Parallelism::serial());
    let parallel = ens.select_batch_with(&pool, 3, &mut rng_b, Parallelism::fixed(4));
    assert_eq!(serial, parallel);
}
