//! Integration test: training emits one well-formed `train.epoch` telemetry
//! event per epoch through an installed capturing sink.
//!
//! Compiled only with the `telemetry` feature (which forwards to
//! `alss-telemetry/telemetry`); without it the probes are constant no-ops
//! and there is nothing to observe.
#![cfg(feature = "telemetry")]

use alss_core::train::{encode_workload, finetune_model, seeded_rng, train_model, TrainConfig};
use alss_core::{Encoder, LabeledQuery, LssConfig, LssModel, Workload};
use alss_graph::builder::graph_from_edges;
use alss_telemetry::test_support::with_capture;
use alss_telemetry::{Category, Event, Field};

fn tiny_setup() -> (LssModel, Vec<(alss_core::EncodedQuery, u64)>) {
    let data = graph_from_edges(&[0, 0, 1, 1, 2], &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
    let enc = Encoder::frequency(&data, 3);
    let mut rng = seeded_rng(7);
    let model = LssModel::new(LssConfig::tiny(), enc.node_dim(), enc.edge_dim(), &mut rng);
    let queries = vec![
        LabeledQuery::new(graph_from_edges(&[0, 1], &[(0, 1)]), 100),
        LabeledQuery::new(graph_from_edges(&[0, 0, 1], &[(0, 1), (1, 2)]), 1_000),
        LabeledQuery::new(graph_from_edges(&[1, 1, 2], &[(0, 1), (1, 2)]), 2_000),
    ];
    let items = encode_workload(&enc, &Workload::from_queries(queries));
    (model, items)
}

fn field_f64(fields: &[(String, Field)], key: &str) -> f64 {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, Field::F64(v))) => *v,
        other => panic!("field {key}: expected F64, got {other:?}"),
    }
}

fn field_u64(fields: &[(String, Field)], key: &str) -> u64 {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, Field::U64(v))) => *v,
        other => panic!("field {key}: expected U64, got {other:?}"),
    }
}

#[test]
fn train_emits_one_epoch_event_per_epoch() {
    let epochs = 4;
    let (mut model, items) = tiny_setup();
    let cfg = TrainConfig::quick(epochs);
    let (report, events) = with_capture(Category::ALL, || train_model(&mut model, &items, &cfg));
    assert_eq!(report.epoch_losses.len(), epochs);

    let epoch_events: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::Point { name, fields } if *name == "train.epoch" => Some(fields),
            _ => None,
        })
        .collect();
    assert_eq!(
        epoch_events.len(),
        epochs,
        "one train.epoch event per epoch"
    );

    for (i, fields) in epoch_events.iter().enumerate() {
        assert_eq!(field_u64(fields, "epoch"), i as u64, "epochs in order");
        let loss = field_f64(fields, "loss");
        assert!(loss.is_finite() && loss >= 0.0, "loss well-formed: {loss}");
        let grad_norm = field_f64(fields, "grad_norm");
        assert!(
            grad_norm.is_finite() && grad_norm > 0.0,
            "grad norm well-formed: {grad_norm}"
        );
        let lr = field_f64(fields, "lr");
        assert!(lr.is_finite() && lr > 0.0, "lr well-formed: {lr}");
        // Events must mirror the report the caller gets back.
        assert!(
            (loss - report.epoch_losses[i]).abs() < 1e-12,
            "event loss matches report"
        );
    }

    // The enclosing span is emitted once the function returns.
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::Span { name, .. } if *name == "train")),
        "train span emitted"
    );
}

#[test]
fn train_emits_parallel_speedup_event_per_epoch() {
    let epochs = 3;
    let (mut model, items) = tiny_setup();
    let mut cfg = TrainConfig::quick(epochs);
    cfg.parallelism = alss_core::Parallelism::fixed(2);
    let (_report, events) = with_capture(Category::ALL, || train_model(&mut model, &items, &cfg));

    let speedup_events: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::Point { name, fields } if *name == "train.parallel_speedup" => Some(fields),
            _ => None,
        })
        .collect();
    assert_eq!(
        speedup_events.len(),
        epochs,
        "one train.parallel_speedup event per epoch"
    );
    for (i, fields) in speedup_events.iter().enumerate() {
        assert_eq!(field_u64(fields, "epoch"), i as u64, "epochs in order");
        assert_eq!(field_u64(fields, "threads"), 2);
        let speedup = field_f64(fields, "speedup");
        assert!(speedup.is_finite() && speedup > 0.0, "speedup: {speedup}");
        let items_us = field_f64(fields, "items_us");
        let wall_us = field_f64(fields, "wall_us");
        assert!(items_us > 0.0 && wall_us > 0.0, "timings recorded");
    }
}

#[test]
fn finetune_emits_epoch_events_under_finetune_span() {
    let (mut model, items) = tiny_setup();
    let cfg = TrainConfig::quick(2);
    let (_report, events) = with_capture(Category::ALL, || {
        finetune_model(&mut model, &items, &cfg, 11)
    });

    let n_epoch_events = events
        .iter()
        .filter(|e| matches!(e, Event::Point { name, .. } if *name == "train.epoch"))
        .count();
    assert_eq!(n_epoch_events, 2);
    // The train span nests under finetune: its path reflects the stack.
    assert!(events.iter().any(
        |e| matches!(e, Event::Span { name, path, .. } if *name == "train" && path == "finetune/train")
    ));
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::Span { name, .. } if *name == "finetune")));
}
