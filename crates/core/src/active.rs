//! The active learner AL (§5): pool-based uncertainty sampling driven by
//! the auxiliary magnitude classifier, plus the passive (random) and
//! model-ensemble baselines of §6.4.

use crate::encode::EncodedQuery;
use crate::model::{LssModel, Prediction};
use crate::parallel::{par_map, Parallelism};
use crate::train::weighted_sample_without_replacement;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Uncertainty / selection strategies compared in Fig. 10.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// RAN — uniform random selection (passive learning).
    Random,
    /// CON — classification confidence: `1 − max_i p(y_i|q)`.
    Confidence,
    /// MAR — margin between the top-two classes.
    ///
    /// The paper's text defines `φ_MAR = p(ŷ₁) − p(ŷ₂)` yet samples
    /// *proportionally to uncertainty*; we use the standard margin
    /// uncertainty `1 − (p(ŷ₁) − p(ŷ₂))` (small margin ⇒ uncertain),
    /// consistent with the paper's observation that MAR underperforms.
    Margin,
    /// ENT — entropy of the class posterior.
    Entropy,
    /// CTC — cross-task consistency: `|ŷ₁ − log10 c_Θ(q)|²`.
    CrossTask,
}

impl Strategy {
    /// Display name matching Fig. 10.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Random => "RAN",
            Strategy::Confidence => "CON",
            Strategy::Margin => "MAR",
            Strategy::Entropy => "ENT",
            Strategy::CrossTask => "CTC",
        }
    }

    /// All strategies, in the paper's presentation order.
    pub fn all() -> [Strategy; 5] {
        [
            Strategy::Random,
            Strategy::Confidence,
            Strategy::Margin,
            Strategy::Entropy,
            Strategy::CrossTask,
        ]
    }
}

/// The uncertainty score `φ(q; Θ)` of a prediction under a strategy
/// (higher ⇒ more informative). [`Strategy::Random`] scores 1 for all.
///
/// A degenerate prediction — empty posterior, non-finite class
/// probability, or (for [`Strategy::CrossTask`]) non-finite regression
/// output — scores 0 rather than poisoning the sampling weights with
/// NaN/±inf (an empty posterior previously made Confidence fold to
/// `1 − (−inf) = +inf` and Margin panic on `top_two`).
pub fn uncertainty(strategy: Strategy, pred: &Prediction) -> f64 {
    if matches!(strategy, Strategy::Random) {
        return 1.0;
    }
    let posterior_ok =
        !pred.class_probs.is_empty() && pred.class_probs.iter().all(|p| p.is_finite());
    let degenerate = match strategy {
        Strategy::CrossTask => !posterior_ok || !pred.log10_count.is_finite(),
        _ => !posterior_ok,
    };
    if degenerate {
        alss_telemetry::counter("active.degenerate_predictions").inc();
        return 0.0;
    }
    match strategy {
        Strategy::Random => 1.0,
        Strategy::Confidence => {
            let pmax = pred
                .class_probs
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            1.0 - pmax
        }
        Strategy::Margin => {
            let (y1, y2) = pred.top_two();
            1.0 - (pred.class_probs[y1] - pred.class_probs[y2])
        }
        Strategy::Entropy => -pred
            .class_probs
            .iter()
            .filter(|&&p| p > 1e-12)
            .map(|&p| p * p.ln())
            .sum::<f64>(),
        Strategy::CrossTask => {
            let y1 = pred.top_class() as f64;
            (y1 - pred.log10_count).powi(2)
        }
    }
}

/// Select a batch of `budget` pool indices by normalized-uncertainty
/// weighted sampling (§5 steps ①–②). Pool scoring fans out over the
/// auto-detected thread count; see [`select_batch_with`] to pin it.
pub fn select_batch<R: Rng>(
    model: &LssModel,
    pool: &[EncodedQuery],
    strategy: Strategy,
    budget: usize,
    rng: &mut R,
) -> Vec<usize> {
    select_batch_with(model, pool, strategy, budget, rng, Parallelism::auto())
}

/// [`select_batch`] with an explicit thread count. Scoring is pure per
/// item and weights come back in pool order, so for a fixed `rng` state
/// the selection is identical at any thread count.
pub fn select_batch_with<R: Rng>(
    model: &LssModel,
    pool: &[EncodedQuery],
    strategy: Strategy,
    budget: usize,
    rng: &mut R,
    par: Parallelism,
) -> Vec<usize> {
    let weights = par_map(par, pool, |_, eq| uncertainty(strategy, &model.predict(eq)));
    weighted_sample_without_replacement(&weights, budget, rng)
}

/// Model-ensemble baseline (ENS, §6.4): a committee of independently
/// initialized/trained LSS models. Prediction is the geometric mean of the
/// member counts; uncertainty is the variance of the members' log10
/// predictions.
pub struct LssEnsemble {
    /// Committee members.
    pub models: Vec<LssModel>,
}

impl LssEnsemble {
    /// Wrap trained members.
    pub fn new(models: Vec<LssModel>) -> Self {
        assert!(!models.is_empty(), "empty ensemble");
        LssEnsemble { models }
    }

    /// Geometric-mean count prediction.
    pub fn predict_count(&self, eq: &EncodedQuery) -> f64 {
        let mean_log: f64 = self
            .models
            .iter()
            .map(|m| m.predict(eq).log10_count)
            .sum::<f64>()
            / self.models.len() as f64;
        10f64.powf(mean_log).max(1.0)
    }

    /// Committee disagreement: variance of the members' log10 predictions.
    pub fn uncertainty(&self, eq: &EncodedQuery) -> f64 {
        let preds: Vec<f64> = self
            .models
            .iter()
            .map(|m| m.predict(eq).log10_count)
            .collect();
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        preds.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / preds.len() as f64
    }

    /// Select a batch by committee-variance weighted sampling. Pool
    /// scoring fans out over the auto-detected thread count.
    pub fn select_batch<R: Rng>(
        &self,
        pool: &[EncodedQuery],
        budget: usize,
        rng: &mut R,
    ) -> Vec<usize> {
        self.select_batch_with(pool, budget, rng, Parallelism::auto())
    }

    /// [`LssEnsemble::select_batch`] with an explicit thread count; for a
    /// fixed `rng` state the selection is identical at any thread count.
    pub fn select_batch_with<R: Rng>(
        &self,
        pool: &[EncodedQuery],
        budget: usize,
        rng: &mut R,
        par: Parallelism,
    ) -> Vec<usize> {
        let weights = par_map(par, pool, |_, eq| self.uncertainty(eq));
        weighted_sample_without_replacement(&weights, budget, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(probs: Vec<f64>, log10: f64) -> Prediction {
        Prediction {
            log10_count: log10,
            class_probs: probs,
        }
    }

    #[test]
    fn confidence_prefers_flat_posteriors() {
        let confident = pred(vec![0.9, 0.05, 0.05], 0.0);
        let unsure = pred(vec![0.4, 0.35, 0.25], 0.0);
        assert!(
            uncertainty(Strategy::Confidence, &unsure)
                > uncertainty(Strategy::Confidence, &confident)
        );
    }

    #[test]
    fn margin_prefers_close_top_two() {
        let clear = pred(vec![0.8, 0.1, 0.1], 0.0);
        let tight = pred(vec![0.45, 0.44, 0.11], 0.0);
        assert!(uncertainty(Strategy::Margin, &tight) > uncertainty(Strategy::Margin, &clear));
    }

    #[test]
    fn entropy_maximal_on_uniform() {
        let uniform = pred(vec![1.0 / 3.0; 3], 0.0);
        let peaked = pred(vec![0.98, 0.01, 0.01], 0.0);
        let eu = uncertainty(Strategy::Entropy, &uniform);
        assert!((eu - (3.0f64).ln()).abs() < 1e-9);
        assert!(eu > uncertainty(Strategy::Entropy, &peaked));
    }

    #[test]
    fn cross_task_measures_head_disagreement() {
        // classifier says magnitude 5, regressor says 5.0 → consistent
        let consistent = pred(vec![0., 0., 0., 0., 0., 1.0], 5.0);
        // classifier says 5, regressor says 2.0 → inconsistent
        let inconsistent = pred(vec![0., 0., 0., 0., 0., 1.0], 2.0);
        assert_eq!(uncertainty(Strategy::CrossTask, &consistent), 0.0);
        assert!((uncertainty(Strategy::CrossTask, &inconsistent) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn random_is_flat() {
        let a = pred(vec![0.9, 0.1], 0.0);
        let b = pred(vec![0.5, 0.5], 3.0);
        assert_eq!(
            uncertainty(Strategy::Random, &a),
            uncertainty(Strategy::Random, &b)
        );
    }

    #[test]
    fn ensemble_geometric_mean_and_variance() {
        use crate::encode::Encoder;
        use crate::model::{LssConfig, LssModel};
        use alss_graph::builder::graph_from_edges;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        let data = graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let enc = Encoder::frequency(&data, 2);
        let models: Vec<LssModel> = (0..3)
            .map(|s| {
                let mut rng = SmallRng::seed_from_u64(s);
                LssModel::new(LssConfig::tiny(), enc.node_dim(), enc.edge_dim(), &mut rng)
            })
            .collect();
        let ens = LssEnsemble::new(models);
        let q = graph_from_edges(&[0, 1], &[(0, 1)]);
        let eq = enc.encode_query(&q);
        let c = ens.predict_count(&eq);
        assert!(c.is_finite() && c >= 1.0);
        // geometric mean in log space: must lie within the member range
        let members: Vec<f64> = ens
            .models
            .iter()
            .map(|m| m.predict(&eq).log10_count)
            .collect();
        let lo = members.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = members.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean_log = c.log10();
        assert!(mean_log >= lo - 1e-9 && mean_log <= hi + 1e-9);
        // variance is non-negative and zero for a single-model committee
        assert!(ens.uncertainty(&eq) >= 0.0);
        let solo = LssEnsemble::new(vec![ens.models[0].clone()]);
        assert_eq!(solo.uncertainty(&eq), 0.0);
    }

    #[test]
    fn ensemble_selects_from_pool() {
        use crate::encode::Encoder;
        use crate::model::{LssConfig, LssModel};
        use alss_graph::builder::graph_from_edges;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        let data = graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let enc = Encoder::frequency(&data, 2);
        let models: Vec<LssModel> = (0..2)
            .map(|s| {
                let mut rng = SmallRng::seed_from_u64(10 + s);
                LssModel::new(LssConfig::tiny(), enc.node_dim(), enc.edge_dim(), &mut rng)
            })
            .collect();
        let ens = LssEnsemble::new(models);
        let pool: Vec<_> = [
            graph_from_edges(&[0, 1], &[(0, 1)]),
            graph_from_edges(&[1, 0, 0], &[(0, 1), (1, 2)]),
            graph_from_edges(&[0, 0], &[(0, 1)]),
        ]
        .iter()
        .map(|g| enc.encode_query(g))
        .collect();
        let mut rng = SmallRng::seed_from_u64(3);
        let sel = ens.select_batch(&pool, 2, &mut rng);
        assert_eq!(sel.len(), 2);
        assert_ne!(sel[0], sel[1]);
        assert!(sel.iter().all(|&i| i < 3));
    }

    #[test]
    fn strategy_names_match_paper() {
        let names: Vec<_> = Strategy::all().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["RAN", "CON", "MAR", "ENT", "CTC"]);
    }

    #[test]
    fn empty_posterior_scores_zero_not_inf() {
        // Regression: an empty posterior made Confidence fold to
        // 1 − (−inf) = +inf and Margin panic inside top_two.
        let empty = pred(vec![], 2.0);
        for s in [
            Strategy::Confidence,
            Strategy::Margin,
            Strategy::Entropy,
            Strategy::CrossTask,
        ] {
            assert_eq!(uncertainty(s, &empty), 0.0, "{}", s.name());
        }
        assert_eq!(uncertainty(Strategy::Random, &empty), 1.0);
    }

    #[test]
    fn non_finite_posterior_scores_zero() {
        let nan = pred(vec![0.5, f64::NAN, 0.5], 2.0);
        let inf = pred(vec![f64::INFINITY, 0.0], 2.0);
        for s in [
            Strategy::Confidence,
            Strategy::Margin,
            Strategy::Entropy,
            Strategy::CrossTask,
        ] {
            assert_eq!(uncertainty(s, &nan), 0.0, "{} on NaN", s.name());
            assert_eq!(uncertainty(s, &inf), 0.0, "{} on inf", s.name());
        }
    }

    #[test]
    fn cross_task_guards_non_finite_regression_output() {
        let bad_reg = pred(vec![0.2, 0.8], f64::INFINITY);
        assert_eq!(uncertainty(Strategy::CrossTask, &bad_reg), 0.0);
        // the classifier-only strategies still score a healthy posterior
        assert!(uncertainty(Strategy::Confidence, &bad_reg) > 0.0);
    }
}
