//! The public facade: a trained **learned sketch** (encoder + model) with
//! one-call construction from a data graph and workload, plus the full
//! active-learning loop of §5 (ALSS = LSS + AL).

use crate::active::{select_batch, Strategy};
use crate::encode::{EncodedQuery, Encoder, EncodingKind};
use crate::model::{LssConfig, LssModel, Prediction};
use crate::train::{
    encode_workload, finetune_model, train_model, EncodedItem, TrainConfig, TrainReport,
};
use crate::workload::Workload;
use alss_embedding::prone::ProneConfig;
use alss_graph::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// End-to-end configuration for building a sketch.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SketchConfig {
    /// Node-encoding variant (LSS-fre / LSS-emb / LSS-con).
    pub encoding: EncodingKind,
    /// BFS-tree decomposition depth (paper: 3).
    pub hops: u32,
    /// Model architecture.
    pub model: LssConfig,
    /// Training schedule.
    pub train: TrainConfig,
    /// ProNE pre-training settings (embedding encodings only).
    pub prone_dim: usize,
    /// Seed for initialization and pre-training.
    pub seed: u64,
}

impl Default for SketchConfig {
    fn default() -> Self {
        SketchConfig {
            encoding: EncodingKind::Embedding,
            hops: 3,
            model: LssConfig::default(),
            train: TrainConfig::default(),
            prone_dim: 64,
            seed: 42,
        }
    }
}

impl SketchConfig {
    /// Small/fast settings for tests and examples.
    pub fn tiny() -> Self {
        SketchConfig {
            encoding: EncodingKind::Frequency,
            hops: 3,
            model: LssConfig::tiny(),
            train: TrainConfig::quick(30),
            prone_dim: 16,
            seed: 7,
        }
    }
}

/// A trained learned sketch: everything needed to answer
/// `estimate(query) → count`.
#[derive(Clone, Serialize, Deserialize)]
pub struct LearnedSketch {
    encoder: Encoder,
    model: LssModel,
}

impl LearnedSketch {
    /// Reassemble a sketch from a pre-built encoder and model (e.g. after
    /// deserializing the parts separately).
    pub fn from_parts(encoder: Encoder, model: LssModel) -> Self {
        LearnedSketch { encoder, model }
    }

    /// Serialize the whole sketch (encoder statistics, pre-trained label
    /// embedding, and model weights) to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserialize a sketch saved with [`LearnedSketch::to_json`].
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        serde_json::from_str(json)
    }

    /// Persist the sketch to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let json = self
            .to_json()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Load a sketch persisted with [`LearnedSketch::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Build the encoder for a data graph per the configuration.
    pub fn build_encoder(data: &Graph, cfg: &SketchConfig) -> Encoder {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let prone = ProneConfig {
            dim: cfg.prone_dim,
            ..Default::default()
        };
        match cfg.encoding {
            EncodingKind::Frequency => Encoder::frequency(data, cfg.hops),
            EncodingKind::Embedding => Encoder::embedding(data, cfg.hops, &prone, &mut rng),
            EncodingKind::Concatenated => Encoder::concatenated(data, cfg.hops, &prone, &mut rng),
        }
    }

    /// Train a sketch offline on a labeled workload (Fig. 1's left side).
    pub fn train(data: &Graph, workload: &Workload, cfg: &SketchConfig) -> (Self, TrainReport) {
        let encoder = Self::build_encoder(data, cfg);
        Self::train_with_encoder(encoder, workload, cfg)
    }

    /// Train with a pre-built encoder (lets callers share one embedding
    /// pre-training across several models, as the ensemble baseline does).
    pub fn train_with_encoder(
        encoder: Encoder,
        workload: &Workload,
        cfg: &SketchConfig,
    ) -> (Self, TrainReport) {
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5EED);
        let mut model = LssModel::new(cfg.model, encoder.node_dim(), encoder.edge_dim(), &mut rng);
        let items = encode_workload(&encoder, workload);
        let report = train_model(&mut model, &items, &cfg.train);
        (LearnedSketch { encoder, model }, report)
    }

    /// The feature encoder.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// The underlying model.
    pub fn model(&self) -> &LssModel {
        &self.model
    }

    /// Mutable model access (active learning).
    pub fn model_mut(&mut self) -> &mut LssModel {
        &mut self.model
    }

    /// Encode a query for repeated prediction.
    pub fn encode(&self, q: &Graph) -> EncodedQuery {
        self.encoder.encode_query(q)
    }

    /// Full prediction (count + magnitude posterior).
    pub fn predict(&self, q: &Graph) -> Prediction {
        self.model.predict(&self.encode(q))
    }

    /// Estimated count `ĉ(q)` in linear scale (≥ 1).
    pub fn estimate(&self, q: &Graph) -> f64 {
        self.predict(q).count()
    }
}

/// One unlabeled pool item of the active learner.
pub struct PoolItem {
    /// The raw query graph (handed to the labeling oracle).
    pub graph: Graph,
    /// Its cached encoding.
    pub encoded: EncodedQuery,
}

/// Outcome of one AL round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActiveRoundReport {
    /// Queries selected and labeled this round.
    pub labeled: usize,
    /// Queries the oracle could not label (budget) — dropped from the pool.
    pub dropped: usize,
    /// Fine-tuning report.
    pub train: TrainReport,
}

/// Run one uncertainty-sampling round (§5 steps ①–④): score the pool,
/// sample `budget` queries, label them with `oracle`, move them into
/// `train_items`, and fine-tune the model on the enlarged training set.
#[allow(clippy::too_many_arguments)] // the §5 loop genuinely has this arity
pub fn active_round<R: Rng>(
    sketch: &mut LearnedSketch,
    train_items: &mut Vec<EncodedItem>,
    pool: &mut Vec<PoolItem>,
    mut oracle: impl FnMut(&Graph) -> Option<u64>,
    strategy: Strategy,
    budget: usize,
    finetune: &TrainConfig,
    round: u64,
    rng: &mut R,
) -> ActiveRoundReport {
    let encoded: Vec<EncodedQuery> = pool.iter().map(|p| p.encoded.clone()).collect();
    let mut selected = select_batch(&sketch.model, &encoded, strategy, budget, rng);
    selected.sort_unstable_by(|a, b| b.cmp(a)); // remove from the back
    let mut labeled = 0usize;
    let mut dropped = 0usize;
    for idx in selected {
        let item = pool.swap_remove(idx);
        match oracle(&item.graph) {
            Some(count) => {
                train_items.push((item.encoded, count));
                labeled += 1;
            }
            None => {
                dropped += 1;
            }
        }
    }
    let train = finetune_model(&mut sketch.model, train_items, finetune, round);
    ActiveRoundReport {
        labeled,
        dropped,
        train,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::LabeledQuery;
    use alss_graph::builder::graph_from_edges;
    use alss_matching::{count_homomorphisms, Budget};

    fn data_graph() -> Graph {
        graph_from_edges(
            &[0, 0, 1, 1, 2, 2],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 3)],
        )
    }

    fn real_workload(data: &Graph) -> Workload {
        // label real path/triangle queries with exact counts
        let mut qs = Vec::new();
        type Shape = (Vec<u32>, Vec<(u32, u32)>);
        let shapes: Vec<Shape> = vec![
            (vec![0, 0], vec![(0, 1)]),
            (vec![0, 1], vec![(0, 1)]),
            (vec![1, 1], vec![(0, 1)]),
            (vec![1, 2], vec![(0, 1)]),
            (vec![2, 2], vec![(0, 1)]),
            (vec![0, 1, 2], vec![(0, 1), (1, 2)]),
            (vec![0, 0, 1], vec![(0, 1), (1, 2)]),
            (vec![1, 1, 2], vec![(0, 1), (1, 2)]),
            (vec![0, 1, 1], vec![(0, 1), (1, 2)]),
            (vec![2, 0, 1], vec![(0, 1), (1, 2)]),
        ];
        for (labels, edges) in shapes {
            let g = graph_from_edges(&labels, &edges);
            let c = count_homomorphisms(data, &g, &Budget::unlimited()).unwrap();
            qs.push(LabeledQuery::new(g, c.max(1)));
        }
        Workload::from_queries(qs)
    }

    #[test]
    fn sketch_trains_and_estimates() {
        let d = data_graph();
        let w = real_workload(&d);
        let cfg = SketchConfig::tiny();
        let (sketch, report) = LearnedSketch::train(&d, &w, &cfg);
        assert_eq!(report.num_queries, w.len());
        // loss decreased over training
        assert!(report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap());
        // estimates are finite, ≥ 1
        for q in &w.queries {
            let e = sketch.estimate(&q.graph);
            assert!(e.is_finite() && e >= 1.0);
        }
    }

    #[test]
    fn active_round_grows_training_set() {
        let d = data_graph();
        let w = real_workload(&d);
        let cfg = SketchConfig::tiny();
        let (mut sketch, _) = LearnedSketch::train(&d, &w, &cfg);
        let mut items = encode_workload(sketch.encoder(), &w);
        let pool_queries = vec![
            graph_from_edges(&[0, 2], &[(0, 1)]),
            graph_from_edges(&[2, 1, 0], &[(0, 1), (1, 2)]),
            graph_from_edges(&[1, 1, 1], &[(0, 1), (1, 2)]),
        ];
        let mut pool: Vec<PoolItem> = pool_queries
            .into_iter()
            .map(|g| PoolItem {
                encoded: sketch.encode(&g),
                graph: g,
            })
            .collect();
        let before = items.len();
        let mut rng = SmallRng::seed_from_u64(5);
        let report = active_round(
            &mut sketch,
            &mut items,
            &mut pool,
            |g| count_homomorphisms(&d, g, &Budget::unlimited()).ok(),
            Strategy::CrossTask,
            2,
            &TrainConfig::quick(5),
            0,
            &mut rng,
        );
        assert_eq!(report.labeled, 2);
        assert_eq!(items.len(), before + 2);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn sketch_json_roundtrip_preserves_predictions() {
        let d = data_graph();
        let w = real_workload(&d);
        let (sketch, _) = LearnedSketch::train(&d, &w, &SketchConfig::tiny());
        let json = sketch.to_json().expect("serialize");
        let back = LearnedSketch::from_json(&json).expect("deserialize");
        for q in &w.queries {
            let a = sketch.predict(&q.graph);
            let b = back.predict(&q.graph);
            assert_eq!(a.log10_count, b.log10_count);
            assert_eq!(a.class_probs, b.class_probs);
        }
    }

    #[test]
    fn sketch_file_save_load() {
        let d = data_graph();
        let w = real_workload(&d);
        let (sketch, _) = LearnedSketch::train(&d, &w, &SketchConfig::tiny());
        let path = std::env::temp_dir().join("alss_sketch_test.json");
        sketch.save(&path).expect("save");
        let back = LearnedSketch::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        let q = &w.queries[0].graph;
        assert_eq!(sketch.estimate(q), back.estimate(q));
    }

    #[test]
    fn oracle_budget_failures_are_dropped() {
        let d = data_graph();
        let w = real_workload(&d);
        let cfg = SketchConfig::tiny();
        let (mut sketch, _) = LearnedSketch::train(&d, &w, &cfg);
        let mut items = encode_workload(sketch.encoder(), &w);
        let g = graph_from_edges(&[0, 1], &[(0, 1)]);
        let mut pool = vec![PoolItem {
            encoded: sketch.encode(&g),
            graph: g,
        }];
        let mut rng = SmallRng::seed_from_u64(6);
        let report = active_round(
            &mut sketch,
            &mut items,
            &mut pool,
            |_| None, // oracle always times out
            Strategy::Entropy,
            1,
            &TrainConfig::quick(2),
            1,
            &mut rng,
        );
        assert_eq!(report.labeled, 0);
        assert_eq!(report.dropped, 1);
        assert!(pool.is_empty());
    }
}
