//! # alss-core
//!
//! The primary contribution of *A Learned Sketch for Subgraph Counting*
//! (Zhao et al., SIGMOD 2021), implemented from scratch in Rust: **LSS**, a
//! neural-network regression sketch for subgraph counting over large
//! labeled graphs, and **AL**, its specialized active learner (together:
//! **ALSS**).
//!
//! Pipeline (Fig. 2 / Algorithm 1):
//!
//! 1. [`alss_graph::decompose`] a query into per-node 3-hop BFS-tree
//!    substructures;
//! 2. [`encode`] each substructure — frequency-based, pre-trained-embedding
//!    (ProNE on the label-augmented graph), or concatenated features, with
//!    the Eq. (4) edge-label extension;
//! 3. a GIN encoder produces per-substructure representations
//!    (`σ(·)` of Eq. 2), structured self-attention learns query-specific
//!    weights (`w(·)`), and a multi-task MLP emits `log10 c_Θ(q)` plus a
//!    count-magnitude posterior (`φ(·)` + §5's auxiliary classifier) —
//!    [`model`];
//! 4. training minimizes Eq. (6) = (1−λ)·MSE-log + λ·cross-entropy with
//!    Adam — [`train`];
//! 5. the active learner scores unlabeled test queries with
//!    CON/MAR/ENT/CTC uncertainty and fine-tunes on the selected batch —
//!    [`active`], [`sketch::active_round`].
//!
//! The one-call facade is [`sketch::LearnedSketch`]; accuracy metrics
//! (q-error, Eq. 1) live in [`metrics`].

// Test modules opt back out of the library panic/numeric policy: a panic
// IS the failure report there, and fixtures are tiny.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub mod active;
pub mod encode;
pub mod metrics;
pub mod model;
pub mod parallel;
pub mod sketch;
pub mod train;
pub mod workload;

pub use active::{select_batch, select_batch_with, uncertainty, LssEnsemble, Strategy};
pub use encode::{EncodedQuery, Encoder, EncodingKind};
pub use metrics::{l1_log_error, q_error, QErrorStats};
pub use model::{LssConfig, LssModel, Prediction};
pub use parallel::{par_map, set_global_threads, Parallelism};
pub use sketch::{active_round, ActiveRoundReport, LearnedSketch, PoolItem, SketchConfig};
pub use train::{
    encode_workload, encode_workload_with, evaluate, evaluate_with, train_model, TrainConfig,
    TrainReport,
};
pub use workload::{LabeledQuery, Workload};
