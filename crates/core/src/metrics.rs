//! Evaluation metrics: q-error (Eq. 1) and its distribution statistics,
//! plus the L1 log loss used in Fig. 10.

use serde::{Deserialize, Serialize};

/// q-error (Eq. 1): `max(c/ĉ, ĉ/c)` with both counts clamped to ≥ 1.
/// A non-finite input (NaN or ±inf from a diverged model) maps to
/// `+inf` — the worst possible error — instead of silently propagating
/// NaN through downstream aggregates.
pub fn q_error(true_count: f64, est_count: f64) -> f64 {
    if !true_count.is_finite() || !est_count.is_finite() {
        return f64::INFINITY;
    }
    let c = true_count.max(1.0);
    let e = est_count.max(1.0);
    (c / e).max(e / c)
}

/// `|log10 c − log10 ĉ|`, the per-query L1 loss of Fig. 10(b).
pub fn l1_log_error(true_count: f64, est_count: f64) -> f64 {
    (true_count.max(1.0).log10() - est_count.max(1.0).log10()).abs()
}

/// Distribution summary of q-errors over a query set, matching the
/// box-plot statistics of Figs. 4/6/7/11.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QErrorStats {
    /// Number of queries aggregated.
    pub count: usize,
    /// Minimum q-error.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum q-error.
    pub max: f64,
    /// Geometric mean (the quantity Eq. 3 minimizes).
    pub geo_mean: f64,
    /// Mean of `|log10 c − log10 ĉ|`.
    pub l1_log: f64,
}

impl QErrorStats {
    /// Summarize `(true, estimated)` count pairs. Returns `None` for an
    /// empty input.
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Option<Self> {
        if pairs.is_empty() {
            return None;
        }
        let mut qs: Vec<f64> = pairs.iter().map(|&(c, e)| q_error(c, e)).collect();
        // total_cmp: a NaN-tolerant total order. The old
        // `partial_cmp(..).unwrap_or(Equal)` left NaNs wherever they fell,
        // quietly corrupting every quantile; q_error no longer produces
        // NaN, but the sort must not rely on that.
        qs.sort_by(f64::total_cmp);
        let pct = |p: f64| -> f64 {
            // quantile position: p ∈ [0, 1] keeps the product within 0..len.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let idx = (p * (qs.len() - 1) as f64).round() as usize;
            qs[idx]
        };
        let geo = (qs.iter().map(|q| q.ln()).sum::<f64>() / qs.len() as f64).exp();
        let l1 = pairs.iter().map(|&(c, e)| l1_log_error(c, e)).sum::<f64>() / pairs.len() as f64;
        Some(QErrorStats {
            count: qs.len(),
            min: qs[0],
            p25: pct(0.25),
            median: pct(0.5),
            p75: pct(0.75),
            p95: pct(0.95),
            max: qs[qs.len() - 1],
            geo_mean: geo,
            l1_log: l1,
        })
    }

    /// One-line rendering used by the bench binaries.
    pub fn render(&self) -> String {
        format!(
            "n={:<4} min={:<8.2} p25={:<8.2} med={:<8.2} p75={:<8.2} p95={:<10.2} max={:<12.2} gmean={:<8.2}",
            self.count, self.min, self.p25, self.median, self.p75, self.p95, self.max, self.geo_mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_symmetry_and_floor() {
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(10.0, 100.0), 10.0);
        assert_eq!(q_error(5.0, 5.0), 1.0);
        // clamping: estimate 0 treated as 1
        assert_eq!(q_error(50.0, 0.0), 50.0);
        assert_eq!(q_error(0.0, 0.0), 1.0);
    }

    #[test]
    fn l1_log_error_is_log_scale() {
        assert!((l1_log_error(1000.0, 10.0) - 2.0).abs() < 1e-12);
        assert_eq!(l1_log_error(7.0, 7.0), 0.0);
    }

    #[test]
    fn stats_quantiles_ordered() {
        let pairs: Vec<(f64, f64)> = (1..=100)
            .map(|i| (100.0, 100.0 * i as f64 / 10.0))
            .collect();
        let s = QErrorStats::from_pairs(&pairs).unwrap();
        assert_eq!(s.count, 100);
        assert!(s.min <= s.p25 && s.p25 <= s.median);
        assert!(s.median <= s.p75 && s.p75 <= s.p95 && s.p95 <= s.max);
        assert!(s.geo_mean >= 1.0);
    }

    #[test]
    fn empty_input_is_none() {
        assert!(QErrorStats::from_pairs(&[]).is_none());
    }

    #[test]
    fn non_finite_estimates_map_to_infinite_q_error() {
        assert_eq!(q_error(100.0, f64::NAN), f64::INFINITY);
        assert_eq!(q_error(100.0, f64::INFINITY), f64::INFINITY);
        assert_eq!(q_error(f64::NAN, 100.0), f64::INFINITY);
        assert_eq!(q_error(f64::NEG_INFINITY, 100.0), f64::INFINITY);
    }

    #[test]
    fn stats_survive_non_finite_estimates() {
        // A diverged estimate must land at the top of the distribution,
        // not scramble the sort (the old partial_cmp fallback let a NaN
        // freeze wherever it fell).
        let pairs = vec![(10.0, 10.0), (10.0, f64::NAN), (10.0, 20.0)];
        let s = QErrorStats::from_pairs(&pairs).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.max, f64::INFINITY);
        assert!(s.min <= s.p25 && s.p25 <= s.median && s.median <= s.p75);
    }

    #[test]
    fn perfect_estimates_have_unit_stats() {
        let pairs = vec![(10.0, 10.0); 5];
        let s = QErrorStats::from_pairs(&pairs).unwrap();
        assert_eq!(s.median, 1.0);
        assert_eq!(s.max, 1.0);
        assert!((s.geo_mean - 1.0).abs() < 1e-12);
        assert_eq!(s.l1_log, 0.0);
    }
}
