//! Training loop for LSS (§6.1): Adam with weight decay and per-epoch LR
//! decay, mini-batch gradient accumulation, MSE-log + cross-entropy
//! multi-task loss.

use crate::encode::{EncodedQuery, Encoder};
use crate::model::LssModel;
use crate::workload::Workload;
use alss_nn::{Adam, AdamConfig, Tape};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Training hyper-parameters (§6.1: lr ∈ [1e-4, 1e-3], 50–150 epochs,
/// batch ∈ {1,2,4,8}, L2 ∈ [1e-5, 1e-3]).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size (gradients accumulated, one Adam step per batch).
    pub batch_size: usize,
    /// Optimizer settings.
    pub adam: AdamConfig,
    /// RNG seed for shuffling and dropout.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 50,
            batch_size: 4,
            adam: AdamConfig::default(),
            seed: 42,
        }
    }
}

impl TrainConfig {
    /// A quick configuration for tests.
    pub fn quick(epochs: usize) -> Self {
        TrainConfig {
            epochs,
            batch_size: 4,
            adam: AdamConfig {
                lr: 5e-3,
                weight_decay: 1e-5,
                lr_decay: 0.98,
                ..Default::default()
            },
            seed: 7,
        }
    }
}

/// Result of a training run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean multi-task loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Wall-clock training duration.
    pub duration: Duration,
    /// Number of labeled queries trained on.
    pub num_queries: usize,
}

/// A labeled, encoded training item.
pub type EncodedItem = (EncodedQuery, u64);

/// Encode a workload once (the encoding is deterministic, so the trainer
/// caches it across epochs).
pub fn encode_workload(encoder: &Encoder, workload: &Workload) -> Vec<EncodedItem> {
    workload
        .queries
        .iter()
        .map(|q| (encoder.encode_query(&q.graph), q.count))
        .collect()
}

/// Train `model` on pre-encoded items.
///
/// When telemetry events are enabled, every epoch emits a `train.epoch`
/// event carrying the mean multi-task loss, the mean pre-step gradient
/// norm, and the current learning rate; the gradient-norm computation is
/// skipped entirely otherwise.
pub fn train_model(model: &mut LssModel, items: &[EncodedItem], cfg: &TrainConfig) -> TrainReport {
    assert!(!items.is_empty(), "empty training set");
    assert!(cfg.batch_size >= 1, "batch size must be ≥ 1");
    let _span = alss_telemetry::Span::enter("train");
    let telemetry_on = alss_telemetry::enabled(alss_telemetry::Category::Events);
    let start = Instant::now();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut adam = Adam::new(cfg.adam, model.store());
    let mut order: Vec<usize> = (0..items.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    for epoch in 0..cfg.epochs {
        let epoch_watch = alss_telemetry::Stopwatch::start();
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut grad_norm_sum = 0.0f64;
        let mut num_batches = 0u64;
        for batch in order.chunks(cfg.batch_size) {
            model.store_mut().zero_grads();
            let scale = 1.0 / batch.len() as f32;
            for &i in batch {
                let (eq, count) = &items[i];
                let mut tape = Tape::new(true);
                let l = model.loss(&mut tape, eq, *count, &mut rng);
                let scaled = tape.scale(l, scale);
                epoch_loss += tape.value(l).scalar() as f64;
                tape.backward(scaled, model.store_mut());
            }
            if telemetry_on {
                grad_norm_sum += f64::from(model.store().grad_norm());
            }
            num_batches += 1;
            adam.step(model.store_mut());
        }
        let lr = adam.lr();
        adam.decay_lr();
        let mean_loss = epoch_loss / items.len() as f64;
        epoch_losses.push(mean_loss);
        if telemetry_on {
            epoch_watch.record("train.epoch_us");
            alss_telemetry::counter("train.epochs").inc();
            alss_telemetry::counter("train.batches").add(num_batches);
            alss_telemetry::event(
                "train.epoch",
                &[
                    ("epoch", alss_telemetry::Field::from(epoch)),
                    ("loss", alss_telemetry::Field::F64(mean_loss)),
                    (
                        "grad_norm",
                        alss_telemetry::Field::F64(grad_norm_sum / num_batches.max(1) as f64),
                    ),
                    ("lr", alss_telemetry::Field::from(lr)),
                ],
            );
        }
    }
    TrainReport {
        epoch_losses,
        duration: start.elapsed(),
        num_queries: items.len(),
    }
}

/// Continue training an existing model (used by the active learner's
/// incremental updates, §5 step ④).
pub fn finetune_model(
    model: &mut LssModel,
    items: &[EncodedItem],
    cfg: &TrainConfig,
    seed_offset: u64,
) -> TrainReport {
    let _span = alss_telemetry::Span::enter("finetune");
    alss_telemetry::counter("train.finetunes").inc();
    let mut cfg = *cfg;
    cfg.seed = cfg.seed.wrapping_add(seed_offset);
    train_model(model, items, &cfg)
}

/// Evaluate: `(true, estimated)` count pairs over encoded items.
pub fn evaluate(model: &LssModel, items: &[EncodedItem]) -> Vec<(f64, f64)> {
    items
        .iter()
        .map(|(eq, c)| (*c as f64, model.predict(eq).count()))
        .collect()
}

/// Mean multi-task loss of `model` on `items` (eval mode).
pub fn eval_loss(model: &LssModel, items: &[EncodedItem]) -> f64 {
    let mut rng = SmallRng::seed_from_u64(0);
    let total: f64 = items
        .iter()
        .map(|(eq, c)| {
            let mut tape = Tape::new(false);
            let l = model.loss(&mut tape, eq, *c, &mut rng);
            tape.value(l).scalar() as f64
        })
        .sum();
    total / items.len().max(1) as f64
}

/// Deterministically seeded helper used across benches/tests.
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Re-export the magnitude-class helper at the crate's training surface.
pub fn magnitude_of(count: u64, num_classes: usize) -> usize {
    alss_nn::loss::magnitude_class(count as f64, num_classes)
}

/// Draw `k` distinct indices weighted by `weights` (weighted sampling
/// without replacement; uniform fallback when all weights are ~0). Shared
/// by the active learner and benches.
pub fn weighted_sample_without_replacement<R: Rng>(
    weights: &[f64],
    k: usize,
    rng: &mut R,
) -> Vec<usize> {
    let n = weights.len();
    let k = k.min(n);
    let mut picked = vec![false; n];
    let mut out = Vec::with_capacity(k);
    let mut w: Vec<f64> = weights.iter().map(|&x| x.max(0.0)).collect();
    for _ in 0..k {
        let total: f64 = w
            .iter()
            .enumerate()
            .filter(|(i, _)| !picked[*i])
            .map(|(_, &x)| x)
            .sum();
        let choice = if total <= 1e-12 {
            // uniform among remaining
            let remaining: Vec<usize> = (0..n).filter(|&i| !picked[i]).collect();
            remaining[rng.gen_range(0..remaining.len())]
        } else {
            let mut t = rng.gen::<f64>() * total;
            let mut sel = None;
            for i in 0..n {
                if picked[i] {
                    continue;
                }
                t -= w[i];
                if t <= 0.0 {
                    sel = Some(i);
                    break;
                }
            }
            // Float round-off can leave `t` barely positive after the last
            // unpicked item; fall back to the highest unpicked index.
            match sel.or_else(|| (0..n).rfind(|&i| !picked[i])) {
                Some(i) => i,
                None => {
                    // Unreachable: `k <= n` bounds the loop, so an unpicked
                    // item always remains.
                    debug_assert!(false, "items remain");
                    break;
                }
            }
        };
        picked[choice] = true;
        w[choice] = 0.0;
        out.push(choice);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LssConfig;
    use crate::workload::LabeledQuery;
    use alss_graph::builder::graph_from_edges;
    use alss_graph::Graph;

    fn data_graph() -> Graph {
        graph_from_edges(&[0, 0, 1, 1, 2], &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
    }

    fn toy_workload() -> Workload {
        // paths of different lengths with hand-assigned counts spanning
        // magnitudes so there is signal to fit
        let mut qs = Vec::new();
        for (labels, edges, count) in [
            (vec![0u32, 0], vec![(0u32, 1u32)], 10u64),
            (vec![0, 1], vec![(0, 1)], 100),
            (vec![1, 1], vec![(0, 1)], 40),
            (vec![0, 0, 1], vec![(0, 1), (1, 2)], 1_000),
            (vec![0, 1, 2], vec![(0, 1), (1, 2)], 5_000),
            (vec![1, 1, 2], vec![(0, 1), (1, 2)], 2_000),
            (vec![0, 0, 1, 2], vec![(0, 1), (1, 2), (2, 3)], 50_000),
            (vec![0, 1, 1, 2], vec![(0, 1), (1, 2), (2, 3)], 20_000),
        ] {
            qs.push(LabeledQuery::new(graph_from_edges(&labels, &edges), count));
        }
        Workload::from_queries(qs)
    }

    #[test]
    fn training_reduces_loss() {
        let enc = Encoder::frequency(&data_graph(), 3);
        let mut rng = seeded_rng(0);
        let mut model = LssModel::new(LssConfig::tiny(), enc.node_dim(), enc.edge_dim(), &mut rng);
        let items = encode_workload(&enc, &toy_workload());
        let before = eval_loss(&model, &items);
        let report = train_model(&mut model, &items, &TrainConfig::quick(40));
        let after = eval_loss(&model, &items);
        assert_eq!(report.epoch_losses.len(), 40);
        assert!(
            after < before * 0.5,
            "loss should at least halve: {before} -> {after}"
        );
    }

    #[test]
    fn trained_model_orders_magnitudes() {
        let enc = Encoder::frequency(&data_graph(), 3);
        let mut rng = seeded_rng(1);
        let mut model = LssModel::new(LssConfig::tiny(), enc.node_dim(), enc.edge_dim(), &mut rng);
        let items = encode_workload(&enc, &toy_workload());
        train_model(&mut model, &items, &TrainConfig::quick(60));
        // the 2-node label (0,0) query (count 10) must predict far below the
        // 4-node (count 50k) query
        let small = model.predict(&items[0].0).count();
        let large = model.predict(&items[6].0).count();
        assert!(
            large > small * 10.0,
            "magnitudes should separate: {small} vs {large}"
        );
    }

    #[test]
    fn weighted_sampling_prefers_heavy_items() {
        let mut rng = seeded_rng(2);
        let weights = [0.0, 0.0, 100.0, 0.1];
        let mut hits = 0;
        for _ in 0..50 {
            let picked = weighted_sample_without_replacement(&weights, 1, &mut rng);
            if picked[0] == 2 {
                hits += 1;
            }
        }
        assert!(hits > 45, "heavy item picked {hits}/50 times");
    }

    #[test]
    fn weighted_sampling_without_replacement_is_distinct() {
        let mut rng = seeded_rng(3);
        let weights = [1.0, 2.0, 3.0, 4.0, 5.0];
        let picked = weighted_sample_without_replacement(&weights, 5, &mut rng);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        let mut rng = seeded_rng(4);
        let weights = [0.0; 4];
        let picked = weighted_sample_without_replacement(&weights, 2, &mut rng);
        assert_eq!(picked.len(), 2);
        assert_ne!(picked[0], picked[1]);
    }
}
