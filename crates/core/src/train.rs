//! Training loop for LSS (§6.1): Adam with weight decay and per-epoch LR
//! decay, mini-batch gradient accumulation, MSE-log + cross-entropy
//! multi-task loss.
//!
//! Training is **data-parallel and deterministic**: within each
//! mini-batch the per-item forward+backward passes fan out over worker
//! threads, each accumulating into its own [`GradShard`]; shards are
//! merged into the [`alss_nn::ParamStore`] in batch-position order and
//! every item's dropout stream is derived from `(seed, epoch, item)`
//! rather than a shared sequential RNG. The floating-point operations —
//! and therefore losses and final weights — are bit-identical for any
//! [`Parallelism`] thread count, including 1.

use crate::encode::{EncodedQuery, Encoder};
use crate::model::LssModel;
use crate::parallel::{par_map, Parallelism};
use crate::workload::Workload;
use alss_nn::{Adam, AdamConfig, GradShard, Tape};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Training hyper-parameters (§6.1: lr ∈ [1e-4, 1e-3], 50–150 epochs,
/// batch ∈ {1,2,4,8}, L2 ∈ [1e-5, 1e-3]).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size (gradients accumulated, one Adam step per batch).
    pub batch_size: usize,
    /// Optimizer settings.
    pub adam: AdamConfig,
    /// RNG seed for shuffling and dropout.
    pub seed: u64,
    /// Worker threads for the in-batch fan-out (results are independent
    /// of this; it only affects wall-clock).
    #[serde(default)]
    pub parallelism: Parallelism,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 50,
            batch_size: 4,
            adam: AdamConfig::default(),
            seed: 42,
            parallelism: Parallelism::auto(),
        }
    }
}

impl TrainConfig {
    /// A quick configuration for tests.
    pub fn quick(epochs: usize) -> Self {
        TrainConfig {
            epochs,
            batch_size: 4,
            adam: AdamConfig {
                lr: 5e-3,
                weight_decay: 1e-5,
                lr_decay: 0.98,
                ..Default::default()
            },
            seed: 7,
            parallelism: Parallelism::auto(),
        }
    }
}

/// Result of a training run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean multi-task loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Wall-clock training duration.
    pub duration: Duration,
    /// Number of labeled queries trained on.
    pub num_queries: usize,
}

/// A labeled, encoded training item.
pub type EncodedItem = (EncodedQuery, u64);

/// Encode a workload once (the encoding is deterministic, so the trainer
/// caches it across epochs). Fans out over the auto-detected thread
/// count; see [`encode_workload_with`] to pin it.
pub fn encode_workload(encoder: &Encoder, workload: &Workload) -> Vec<EncodedItem> {
    encode_workload_with(encoder, workload, Parallelism::auto())
}

/// [`encode_workload`] with an explicit thread count. Output is
/// position-stable and independent of `par`.
pub fn encode_workload_with(
    encoder: &Encoder,
    workload: &Workload,
    par: Parallelism,
) -> Vec<EncodedItem> {
    par_map(par, &workload.queries, |_, q| {
        (encoder.encode_query(&q.graph), q.count)
    })
}

/// SplitMix64 finalizer: decorrelates structured `(seed, epoch, item)`
/// triples into independent dropout streams.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The per-item training RNG. Keyed by the item's dataset index (not its
/// batch position or worker thread), so the stochastic forward pass is a
/// pure function of `(cfg.seed, epoch, item)` — the keystone of the
/// thread-count-independence guarantee.
fn item_rng(seed: u64, epoch: u64, item: u64) -> SmallRng {
    let mixed = splitmix64(splitmix64(seed ^ epoch.wrapping_mul(0xA076_1D64_78BD_642F)) ^ item);
    SmallRng::seed_from_u64(mixed)
}

/// Per-item outcome of a batch fan-out.
struct ItemOutcome {
    /// Unscaled multi-task loss value.
    loss: f64,
    /// Forward+backward wall time (0 when telemetry timing is off).
    micros: f64,
}

/// Run one mini-batch's forward+backward passes, one [`GradShard`] per
/// batch position, fanning positions out over `workers` threads in
/// contiguous chunks (the first chunk runs on the calling thread).
/// Outcomes come back in batch-position order.
#[allow(clippy::too_many_arguments)] // private batch kernel; the arity is the loop state
fn run_batch(
    model: &LssModel,
    items: &[EncodedItem],
    batch: &[usize],
    shards: &mut [GradShard],
    scale: f32,
    seed: u64,
    epoch: u64,
    workers: usize,
    timing_on: bool,
) -> Vec<ItemOutcome> {
    let run_one = |&i: &usize, shard: &mut GradShard| -> ItemOutcome {
        let watch = timing_on.then(alss_telemetry::Stopwatch::start);
        let (eq, count) = &items[i];
        let mut rng = item_rng(seed, epoch, i as u64);
        let mut tape = Tape::new(true);
        let l = model.loss(&mut tape, eq, *count, &mut rng);
        let scaled = tape.scale(l, scale);
        let loss = tape.value(l).scalar() as f64;
        tape.backward(scaled, shard);
        ItemOutcome {
            loss,
            micros: watch.map_or(0.0, |w| w.record("train.batch_item_us")),
        }
    };

    let n = batch.len();
    let workers = workers.min(n).max(1);
    if workers <= 1 {
        return batch
            .iter()
            .zip(shards.iter_mut())
            .map(|(i, shard)| run_one(i, shard))
            .collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<ItemOutcome> = Vec::with_capacity(n);
    let (head_idx, tail_idx) = batch.split_at(chunk);
    let (head_shards, tail_shards) = shards[..n].split_at_mut(chunk);
    std::thread::scope(|s| {
        let run_one = &run_one;
        let handles: Vec<_> = tail_idx
            .chunks(chunk)
            .zip(tail_shards.chunks_mut(chunk))
            .map(|(idx, sh)| {
                s.spawn(move || {
                    idx.iter()
                        .zip(sh.iter_mut())
                        .map(|(i, shard)| run_one(i, shard))
                        .collect::<Vec<ItemOutcome>>()
                })
            })
            .collect();
        out.extend(
            head_idx
                .iter()
                .zip(head_shards.iter_mut())
                .map(|(i, shard)| run_one(i, shard)),
        );
        for h in handles {
            match h.join() {
                Ok(v) => out.extend(v),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    out
}

/// Train `model` on pre-encoded items.
///
/// Within each mini-batch the per-item passes run data-parallel per
/// `cfg.parallelism` (see the module docs for the determinism contract).
///
/// When telemetry events are enabled, every epoch emits a `train.epoch`
/// event carrying the mean multi-task loss, the mean pre-step gradient
/// norm, and the current learning rate, plus a `train.parallel_speedup`
/// event relating summed per-item time to epoch wall time; per-item
/// forward+backward durations feed the `train.batch_item_us` histogram.
/// All of that is skipped entirely otherwise.
pub fn train_model(model: &mut LssModel, items: &[EncodedItem], cfg: &TrainConfig) -> TrainReport {
    assert!(!items.is_empty(), "empty training set");
    assert!(cfg.batch_size >= 1, "batch size must be ≥ 1");
    let _span = alss_telemetry::Span::enter("train");
    let telemetry_on = alss_telemetry::enabled(alss_telemetry::Category::Events);
    let timing_on = telemetry_on || alss_telemetry::enabled(alss_telemetry::Category::Metrics);
    let start = Instant::now();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut adam = Adam::new(cfg.adam, model.store());
    let mut order: Vec<usize> = (0..items.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let workers = cfg.parallelism.effective();
    let mut shards = model.store().grad_shards(cfg.batch_size.min(items.len()));

    for epoch in 0..cfg.epochs {
        let epoch_watch = alss_telemetry::Stopwatch::start();
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut item_us_sum = 0.0f64;
        let mut grad_norm_sum = 0.0f64;
        let mut num_batches = 0u64;
        for batch in order.chunks(cfg.batch_size) {
            for shard in &mut shards[..batch.len()] {
                shard.zero();
            }
            let scale = 1.0 / batch.len() as f32;
            let outcomes = run_batch(
                model,
                items,
                batch,
                &mut shards,
                scale,
                cfg.seed,
                epoch as u64,
                workers,
                timing_on,
            );
            model.store_mut().zero_grads();
            model.store_mut().merge_grads(&shards[..batch.len()]);
            // Reduce in batch-position order: keeps the f64 sum identical
            // to the single-threaded pass.
            for o in &outcomes {
                epoch_loss += o.loss;
                item_us_sum += o.micros;
            }
            if telemetry_on {
                grad_norm_sum += f64::from(model.store().grad_norm());
            }
            num_batches += 1;
            adam.step(model.store_mut());
        }
        let lr = adam.lr();
        adam.decay_lr();
        let mean_loss = epoch_loss / items.len() as f64;
        epoch_losses.push(mean_loss);
        if telemetry_on {
            let wall_us = epoch_watch.record("train.epoch_us");
            alss_telemetry::counter("train.epochs").inc();
            alss_telemetry::counter("train.batches").add(num_batches);
            alss_telemetry::event(
                "train.epoch",
                &[
                    ("epoch", alss_telemetry::Field::from(epoch)),
                    ("loss", alss_telemetry::Field::F64(mean_loss)),
                    (
                        "grad_norm",
                        alss_telemetry::Field::F64(grad_norm_sum / num_batches.max(1) as f64),
                    ),
                    ("lr", alss_telemetry::Field::from(lr)),
                ],
            );
            alss_telemetry::event(
                "train.parallel_speedup",
                &[
                    ("epoch", alss_telemetry::Field::from(epoch)),
                    ("threads", alss_telemetry::Field::from(workers)),
                    (
                        "speedup",
                        alss_telemetry::Field::F64(if wall_us > 0.0 {
                            item_us_sum / wall_us
                        } else {
                            1.0
                        }),
                    ),
                    ("items_us", alss_telemetry::Field::F64(item_us_sum)),
                    ("wall_us", alss_telemetry::Field::F64(wall_us)),
                ],
            );
        }
    }
    TrainReport {
        epoch_losses,
        duration: start.elapsed(),
        num_queries: items.len(),
    }
}

/// Continue training an existing model (used by the active learner's
/// incremental updates, §5 step ④).
pub fn finetune_model(
    model: &mut LssModel,
    items: &[EncodedItem],
    cfg: &TrainConfig,
    seed_offset: u64,
) -> TrainReport {
    let _span = alss_telemetry::Span::enter("finetune");
    alss_telemetry::counter("train.finetunes").inc();
    let mut cfg = *cfg;
    cfg.seed = cfg.seed.wrapping_add(seed_offset);
    train_model(model, items, &cfg)
}

/// Evaluate: `(true, estimated)` count pairs over encoded items. Fans
/// out over the auto-detected thread count (prediction is pure per item,
/// so the output is independent of it).
pub fn evaluate(model: &LssModel, items: &[EncodedItem]) -> Vec<(f64, f64)> {
    evaluate_with(model, items, Parallelism::auto())
}

/// [`evaluate`] with an explicit thread count.
pub fn evaluate_with(model: &LssModel, items: &[EncodedItem], par: Parallelism) -> Vec<(f64, f64)> {
    par_map(par, items, |_, (eq, c)| {
        (*c as f64, model.predict(eq).count())
    })
}

/// Mean multi-task loss of `model` on `items` (eval mode). Fans out over
/// the auto-detected thread count.
pub fn eval_loss(model: &LssModel, items: &[EncodedItem]) -> f64 {
    eval_loss_with(model, items, Parallelism::auto())
}

/// [`eval_loss`] with an explicit thread count. Per-item losses are
/// summed in item order, so the result is bit-identical for any `par`.
pub fn eval_loss_with(model: &LssModel, items: &[EncodedItem], par: Parallelism) -> f64 {
    let losses = par_map(par, items, |_, (eq, c)| {
        // Eval tapes never sample (dropout is inert), so a fixed-seed
        // throwaway RNG keeps the loss a pure function of the item.
        let mut rng = SmallRng::seed_from_u64(0);
        let mut tape = Tape::new(false);
        let l = model.loss(&mut tape, eq, *c, &mut rng);
        tape.value(l).scalar() as f64
    });
    losses.iter().sum::<f64>() / items.len().max(1) as f64
}

/// Deterministically seeded helper used across benches/tests.
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Re-export the magnitude-class helper at the crate's training surface.
pub fn magnitude_of(count: u64, num_classes: usize) -> usize {
    alss_nn::loss::magnitude_class(count as f64, num_classes)
}

/// Fenwick (binary-indexed) tree over per-item weights: prefix sums and
/// point updates in O(log n), so k weighted draws cost O(n + k log n)
/// instead of the O(n·k) of re-summing the pool on every draw.
struct FenwickTree {
    /// 1-based tree; `tree[i]` owns the range `(i - lowbit(i), i]`.
    tree: Vec<f64>,
}

impl FenwickTree {
    /// Build from raw weights in O(n).
    fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        let mut tree = vec![0.0f64; n + 1];
        for (i, &w) in weights.iter().enumerate() {
            let i = i + 1;
            tree[i] += w;
            let parent = i + (i & i.wrapping_neg());
            if parent <= n {
                let carried = tree[i];
                tree[parent] += carried;
            }
        }
        FenwickTree { tree }
    }

    /// Add `delta` to item `i` (0-based).
    fn add(&mut self, i: usize, delta: f64) {
        let n = self.tree.len() - 1;
        let mut i = i + 1;
        while i <= n {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Weight currently stored at item `i` (0-based): prefix(i+1) − prefix(i).
    fn get(&self, i: usize) -> f64 {
        self.prefix(i + 1) - self.prefix(i)
    }

    /// Sum of the first `i` items.
    fn prefix(&self, mut i: usize) -> f64 {
        let mut s = 0.0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// First 0-based index whose inclusive prefix sum exceeds `t`
    /// (bit-descend from the highest power of two ≤ n). `None` only if
    /// float round-off pushes `t` past the total.
    fn search(&self, mut t: f64) -> Option<usize> {
        let n = self.tree.len() - 1;
        let mut pos = 0usize;
        let mut step = n.next_power_of_two();
        if step > n {
            step >>= 1;
        }
        while step > 0 {
            let next = pos + step;
            if next <= n && self.tree[next] <= t {
                t -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        if pos < n {
            Some(pos)
        } else {
            None
        }
    }
}

/// Draw `k` distinct indices weighted by `weights` (weighted sampling
/// without replacement; uniform fallback when the remaining mass is ~0;
/// non-finite weights are treated as 0). Shared by the active learner and
/// benches. O(n + k log n) via a Fenwick tree and a running total.
pub fn weighted_sample_without_replacement<R: Rng>(
    weights: &[f64],
    k: usize,
    rng: &mut R,
) -> Vec<usize> {
    let n = weights.len();
    let k = k.min(n);
    let sanitized: Vec<f64> = weights
        .iter()
        .map(|&x| if x.is_finite() { x.max(0.0) } else { 0.0 })
        .collect();
    let mut fen = FenwickTree::new(&sanitized);
    let mut total: f64 = sanitized.iter().sum();
    let mut picked = vec![false; n];
    let mut out = Vec::with_capacity(k);
    // Lazily-built pool of remaining indices for the uniform fallback once
    // the weighted mass is exhausted (swap_remove keeps draws O(1)).
    let mut uniform_pool: Option<Vec<usize>> = None;
    for _ in 0..k {
        let choice = if total <= 1e-12 {
            let pool = uniform_pool
                .get_or_insert_with(|| (0..n).filter(|&i| !picked[i]).collect::<Vec<usize>>());
            if pool.is_empty() {
                // Unreachable: `k <= n` bounds the loop, so an unpicked
                // item always remains.
                debug_assert!(false, "items remain");
                break;
            }
            pool.swap_remove(rng.gen_range(0..pool.len()))
        } else {
            let t = rng.gen::<f64>() * total;
            // Float round-off can push `t` past the tree total, or leave a
            // picked slot with a ~1e-16 residue the search lands on; both
            // fall back to the highest unpicked index.
            match fen
                .search(t)
                .filter(|&i| !picked[i])
                .or_else(|| (0..n).rfind(|&i| !picked[i]))
            {
                Some(i) => i,
                None => {
                    debug_assert!(false, "items remain");
                    break;
                }
            }
        };
        picked[choice] = true;
        let w = fen.get(choice);
        fen.add(choice, -w);
        total = (total - w).max(0.0);
        out.push(choice);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LssConfig;
    use crate::workload::LabeledQuery;
    use alss_graph::builder::graph_from_edges;
    use alss_graph::Graph;

    fn data_graph() -> Graph {
        graph_from_edges(&[0, 0, 1, 1, 2], &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
    }

    fn toy_workload() -> Workload {
        // paths of different lengths with hand-assigned counts spanning
        // magnitudes so there is signal to fit
        let mut qs = Vec::new();
        for (labels, edges, count) in [
            (vec![0u32, 0], vec![(0u32, 1u32)], 10u64),
            (vec![0, 1], vec![(0, 1)], 100),
            (vec![1, 1], vec![(0, 1)], 40),
            (vec![0, 0, 1], vec![(0, 1), (1, 2)], 1_000),
            (vec![0, 1, 2], vec![(0, 1), (1, 2)], 5_000),
            (vec![1, 1, 2], vec![(0, 1), (1, 2)], 2_000),
            (vec![0, 0, 1, 2], vec![(0, 1), (1, 2), (2, 3)], 50_000),
            (vec![0, 1, 1, 2], vec![(0, 1), (1, 2), (2, 3)], 20_000),
        ] {
            qs.push(LabeledQuery::new(graph_from_edges(&labels, &edges), count));
        }
        Workload::from_queries(qs)
    }

    #[test]
    fn training_reduces_loss() {
        let enc = Encoder::frequency(&data_graph(), 3);
        let mut rng = seeded_rng(0);
        let mut model = LssModel::new(LssConfig::tiny(), enc.node_dim(), enc.edge_dim(), &mut rng);
        let items = encode_workload(&enc, &toy_workload());
        let before = eval_loss(&model, &items);
        let report = train_model(&mut model, &items, &TrainConfig::quick(40));
        let after = eval_loss(&model, &items);
        assert_eq!(report.epoch_losses.len(), 40);
        assert!(
            after < before * 0.5,
            "loss should at least halve: {before} -> {after}"
        );
    }

    #[test]
    fn trained_model_orders_magnitudes() {
        let enc = Encoder::frequency(&data_graph(), 3);
        let mut rng = seeded_rng(1);
        let mut model = LssModel::new(LssConfig::tiny(), enc.node_dim(), enc.edge_dim(), &mut rng);
        let items = encode_workload(&enc, &toy_workload());
        train_model(&mut model, &items, &TrainConfig::quick(60));
        // the 2-node label (0,0) query (count 10) must predict far below the
        // 4-node (count 50k) query
        let small = model.predict(&items[0].0).count();
        let large = model.predict(&items[6].0).count();
        assert!(
            large > small * 10.0,
            "magnitudes should separate: {small} vs {large}"
        );
    }

    #[test]
    fn weighted_sampling_prefers_heavy_items() {
        let mut rng = seeded_rng(2);
        let weights = [0.0, 0.0, 100.0, 0.1];
        let mut hits = 0;
        for _ in 0..50 {
            let picked = weighted_sample_without_replacement(&weights, 1, &mut rng);
            if picked[0] == 2 {
                hits += 1;
            }
        }
        assert!(hits > 45, "heavy item picked {hits}/50 times");
    }

    #[test]
    fn weighted_sampling_without_replacement_is_distinct() {
        let mut rng = seeded_rng(3);
        let weights = [1.0, 2.0, 3.0, 4.0, 5.0];
        let picked = weighted_sample_without_replacement(&weights, 5, &mut rng);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        let mut rng = seeded_rng(4);
        let weights = [0.0; 4];
        let picked = weighted_sample_without_replacement(&weights, 2, &mut rng);
        assert_eq!(picked.len(), 2);
        assert_ne!(picked[0], picked[1]);
    }

    #[test]
    fn non_finite_weights_are_never_picked() {
        let mut rng = seeded_rng(5);
        // NaN / ±inf weights are sanitized to 0, so with finite mass
        // present they can never be drawn.
        let weights = [f64::NAN, 1.0, f64::INFINITY, 2.0, f64::NEG_INFINITY];
        for _ in 0..50 {
            let picked = weighted_sample_without_replacement(&weights, 2, &mut rng);
            assert_eq!(picked.len(), 2);
            assert!(
                picked.iter().all(|&i| i == 1 || i == 3),
                "picked {picked:?}"
            );
        }
        // All-non-finite degrades to the uniform fallback, still distinct.
        let bad = [f64::NAN, f64::INFINITY, f64::NAN];
        let picked = weighted_sample_without_replacement(&bad, 3, &mut rng);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn large_pool_sampling_is_fast_and_distinct() {
        // Regression for the O(n·k) re-sum: 100k-item pool, k = 1000. With
        // the Fenwick tree this is O(n + k log n) and finishes in
        // milliseconds; the old quadratic path took ~100M weight visits.
        let n = 100_000;
        let k = 1_000;
        let weights: Vec<f64> = (0..n).map(|i| 1.0 + (i % 97) as f64).collect();
        let mut rng = seeded_rng(6);
        let start = std::time::Instant::now();
        let picked = weighted_sample_without_replacement(&weights, k, &mut rng);
        let elapsed = start.elapsed();
        assert_eq!(picked.len(), k);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), k, "duplicates drawn");
        assert!(
            elapsed < Duration::from_secs(5),
            "sampling took {elapsed:?}; the O(n·k) path has regressed"
        );
    }

    #[test]
    fn fenwick_prefix_sums_and_search_match_naive() {
        let weights = [0.5, 0.0, 2.0, 1.25, 0.0, 3.0, 0.25];
        let fen = FenwickTree::new(&weights);
        let mut acc = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            assert!((fen.prefix(i) - acc).abs() < 1e-12);
            assert!((fen.get(i) - w).abs() < 1e-12);
            acc += w;
        }
        // search(t) = first index whose inclusive prefix exceeds t
        assert_eq!(fen.search(0.0), Some(0));
        assert_eq!(fen.search(0.49), Some(0));
        assert_eq!(fen.search(0.5), Some(2)); // skips the zero-weight slot
        assert_eq!(fen.search(2.49), Some(2));
        assert_eq!(fen.search(2.5), Some(3));
        assert_eq!(fen.search(6.9), Some(6));
        assert_eq!(fen.search(7.1), None); // past the total
    }
}
