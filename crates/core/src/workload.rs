//! Labeled query workloads: `(query graph, true count)` pairs plus the
//! split utilities used throughout §6 (stratified train/test splits,
//! size-bucket grouping, true-count-range bucketing).

use alss_graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One labeled training/test query (the `(q_i, c(q_i))` of §2).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LabeledQuery {
    /// The query graph.
    pub graph: Graph,
    /// Its exact matching count under the workload's semantics.
    pub count: u64,
}

impl LabeledQuery {
    /// Construct a labeled query.
    pub fn new(graph: Graph, count: u64) -> Self {
        LabeledQuery { graph, count }
    }

    /// Number of query nodes.
    pub fn size(&self) -> usize {
        self.graph.num_nodes()
    }
}

/// A workload of labeled queries.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Workload {
    /// The labeled queries.
    pub queries: Vec<LabeledQuery>,
}

/// `⌊frac · n⌉` clamped to `0..=n`: the one float→usize cast for
/// workload split sizes, total by construction.
fn split_size(n: usize, frac: f64) -> usize {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    // clamped to [0, n] immediately above the cast; n < 2^53 in practice
    let k = ((n as f64) * frac).round().clamp(0.0, n as f64) as usize;
    k
}

impl Workload {
    /// Empty workload.
    pub fn new() -> Self {
        Workload {
            queries: Vec::new(),
        }
    }

    /// Wrap a query list.
    pub fn from_queries(queries: Vec<LabeledQuery>) -> Self {
        Workload { queries }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Distinct query sizes, ascending (Table 3's "Query Sizes").
    pub fn sizes(&self) -> Vec<usize> {
        let mut s: Vec<usize> = self.queries.iter().map(|q| q.size()).collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Queries of one size bucket.
    pub fn of_size(&self, size: usize) -> Vec<&LabeledQuery> {
        self.queries.iter().filter(|q| q.size() == size).collect()
    }

    /// Range of true counts `(min, max)` (Table 3's "Range of c(q)").
    pub fn count_range(&self) -> Option<(u64, u64)> {
        let min = self.queries.iter().map(|q| q.count).min()?;
        let max = self.queries.iter().map(|q| q.count).max()?;
        Some((min, max))
    }

    /// Stratified split by query size: `train_frac` of each size bucket
    /// goes to the first returned workload (§6.2's 80/20 protocol).
    pub fn stratified_split<R: Rng>(&self, train_frac: f64, rng: &mut R) -> (Workload, Workload) {
        assert!((0.0..=1.0).contains(&train_frac), "fraction out of range");
        let mut train = Vec::new();
        let mut test = Vec::new();
        for size in self.sizes() {
            let mut bucket: Vec<LabeledQuery> = self.of_size(size).into_iter().cloned().collect();
            bucket.shuffle(rng);
            let k = split_size(bucket.len(), train_frac);
            for (i, q) in bucket.into_iter().enumerate() {
                if i < k {
                    train.push(q);
                } else {
                    test.push(q);
                }
            }
        }
        (Workload::from_queries(train), Workload::from_queries(test))
    }

    /// Split into `fractions.len()` parts stratified by size (e.g. the
    /// 60/20/20 split of §6.4). Fractions must sum to ≈ 1.
    pub fn stratified_multi_split<R: Rng>(&self, fractions: &[f64], rng: &mut R) -> Vec<Workload> {
        let total: f64 = fractions.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "fractions must sum to 1");
        let mut parts: Vec<Vec<LabeledQuery>> = vec![Vec::new(); fractions.len()];
        for size in self.sizes() {
            let mut bucket: Vec<LabeledQuery> = self.of_size(size).into_iter().cloned().collect();
            bucket.shuffle(rng);
            let n = bucket.len();
            let mut start = 0usize;
            for (pi, &f) in fractions.iter().enumerate() {
                let take = if pi + 1 == fractions.len() {
                    n - start
                } else {
                    split_size(n, f)
                };
                let end = (start + take).min(n);
                parts[pi].extend(bucket[start..end].iter().cloned());
                start = end;
            }
        }
        parts.into_iter().map(Workload::from_queries).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::builder::graph_from_edges;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mk(size: usize, count: u64) -> LabeledQuery {
        let labels: Vec<u32> = vec![0; size];
        let edges: Vec<(u32, u32)> = (1..size as u32).map(|i| (i - 1, i)).collect();
        LabeledQuery::new(graph_from_edges(&labels, &edges), count)
    }

    fn workload() -> Workload {
        let mut qs = Vec::new();
        for i in 0..20 {
            qs.push(mk(3, 10 + i));
            qs.push(mk(6, 1000 + i));
        }
        Workload::from_queries(qs)
    }

    #[test]
    fn sizes_and_ranges() {
        let w = workload();
        assert_eq!(w.sizes(), vec![3, 6]);
        assert_eq!(w.count_range(), Some((10, 1019)));
        assert_eq!(w.of_size(3).len(), 20);
    }

    #[test]
    fn stratified_split_preserves_buckets() {
        let w = workload();
        let mut rng = SmallRng::seed_from_u64(0);
        let (tr, te) = w.stratified_split(0.8, &mut rng);
        assert_eq!(tr.len(), 32);
        assert_eq!(te.len(), 8);
        assert_eq!(tr.of_size(3).len(), 16);
        assert_eq!(te.of_size(6).len(), 4);
    }

    #[test]
    fn multi_split_partitions_everything() {
        let w = workload();
        let mut rng = SmallRng::seed_from_u64(1);
        let parts = w.stratified_multi_split(&[0.6, 0.2, 0.2], &mut rng);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, w.len());
        assert_eq!(parts[0].of_size(3).len(), 12);
    }
}
