//! Feature encoding of query substructures (§4.3): frequency-based,
//! pre-trained-embedding-based, and concatenated node encodings, plus the
//! frequency-based edge encoding used for edge-labeled graphs (Eq. 4).

use alss_embedding::prone::{prone, ProneConfig};
use alss_embedding::Embedding;
use alss_graph::augmented::label_augmented_graph;
use alss_graph::labels::LabelStats;
use alss_graph::{Graph, Substructure, WILDCARD};
use alss_nn::{adjacency_from_edges, edge_feature_sums, Adjacency, Mat};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which node encoding variant to use (the LSS-fre / LSS-emb / LSS-con of
/// §6.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncodingKind {
    /// Frequency-based: `|Σ|`-dimensional filter-capability vector.
    Frequency,
    /// Pre-trained label embedding on the label-augmented graph `G_L`.
    Embedding,
    /// `[frequency ‖ embedding]`.
    Concatenated,
}

impl std::fmt::Display for EncodingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodingKind::Frequency => write!(f, "LSS-fre"),
            EncodingKind::Embedding => write!(f, "LSS-emb"),
            EncodingKind::Concatenated => write!(f, "LSS-con"),
        }
    }
}

/// A ready-to-train encoded substructure.
#[derive(Clone, Debug)]
pub struct EncodedSubstructure {
    /// `n × in_dim` initial node features `e_v^{(0)}`.
    pub features: Mat,
    /// Substructure adjacency for GIN aggregation.
    pub adj: Adjacency,
    /// `n × edge_dim` per-node sums of initial edge features (Eq. 4),
    /// present iff the encoder has an edge encoding.
    pub edge_sums: Option<Mat>,
}

/// A fully encoded query: one [`EncodedSubstructure`] per decomposed
/// substructure. Cached by the trainer so encoding runs once per query.
#[derive(Clone, Debug)]
pub struct EncodedQuery {
    /// The encoded substructures.
    pub subs: Vec<EncodedSubstructure>,
}

/// The §4.3 feature encoder: holds the data-graph statistics and the
/// optional pre-trained label embedding.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Encoder {
    kind: EncodingKind,
    stats: LabelStats,
    num_labels: usize,
    num_edge_labels: usize,
    /// Embedding vectors for the `|Σ|` label nodes of `G_L`.
    label_embedding: Option<Vec<Vec<f32>>>,
    /// BFS hops for decomposition (the paper uses 3).
    hops: u32,
}

impl Encoder {
    /// Frequency-based encoder (LSS-fre).
    pub fn frequency(data: &Graph, hops: u32) -> Self {
        Encoder {
            kind: EncodingKind::Frequency,
            stats: LabelStats::new(data),
            num_labels: data.num_node_labels(),
            num_edge_labels: data.num_edge_labels(),
            label_embedding: None,
            hops,
        }
    }

    /// Embedding-based encoder (LSS-emb) from an existing embedding of the
    /// label-augmented graph. `augment_base` is the number of original data
    /// nodes, i.e. the id offset of the label nodes in `G_L`.
    pub fn embedding_from(
        data: &Graph,
        hops: u32,
        gl_embedding: &Embedding,
        augment_base: usize,
    ) -> Self {
        let num_labels = data.num_node_labels();
        let table: Vec<Vec<f32>> = (0..num_labels)
            .map(|l| gl_embedding.vector(augment_base + l).to_vec())
            .collect();
        Encoder {
            kind: EncodingKind::Embedding,
            stats: LabelStats::new(data),
            num_labels,
            num_edge_labels: data.num_edge_labels(),
            label_embedding: Some(table),
            hops,
        }
    }

    /// Embedding-based encoder with ProNE pre-training on `G_L` (the
    /// paper's production configuration for LSS-emb).
    pub fn embedding<R: Rng>(data: &Graph, hops: u32, cfg: &ProneConfig, rng: &mut R) -> Self {
        let aug = label_augmented_graph(data);
        let emb = prone(&aug.graph, cfg, rng);
        Self::embedding_from(data, hops, &emb, aug.base)
    }

    /// Concatenated encoder (LSS-con): frequency ‖ embedding.
    pub fn concatenated<R: Rng>(data: &Graph, hops: u32, cfg: &ProneConfig, rng: &mut R) -> Self {
        let mut e = Self::embedding(data, hops, cfg, rng);
        e.kind = EncodingKind::Concatenated;
        e
    }

    /// Concatenated encoder from an existing `G_L` embedding.
    pub fn concatenated_from(
        data: &Graph,
        hops: u32,
        gl_embedding: &Embedding,
        augment_base: usize,
    ) -> Self {
        let mut e = Self::embedding_from(data, hops, gl_embedding, augment_base);
        e.kind = EncodingKind::Concatenated;
        e
    }

    /// Which variant this encoder produces.
    pub fn kind(&self) -> EncodingKind {
        self.kind
    }

    /// BFS-tree decomposition depth.
    pub fn hops(&self) -> u32 {
        self.hops
    }

    /// Node feature dimensionality.
    pub fn node_dim(&self) -> usize {
        let emb = self
            .label_embedding
            .as_ref()
            .and_then(|t| t.first())
            .map_or(0, |v| v.len());
        match self.kind {
            EncodingKind::Frequency => self.num_labels,
            EncodingKind::Embedding => emb,
            EncodingKind::Concatenated => self.num_labels + emb,
        }
    }

    /// Edge feature dimensionality (0 when the data graph has no edge
    /// labels).
    pub fn edge_dim(&self) -> usize {
        self.num_edge_labels
    }

    /// Encode one node label into the configured feature vector.
    pub fn node_features(&self, label: u32) -> Vec<f32> {
        self.node_features_multi(&[label])
    }

    /// Encode a node carrying a *set* of labels (§4.3's multi-label
    /// generalization, used by yago-like graphs): the embedding part is
    /// `Σ_{l∈L(v)} e'(l)`; the frequency part marks every carried label's
    /// dimension. A `[WILDCARD]` set encodes the unlabeled node.
    pub fn node_features_multi(&self, labels: &[u32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.node_dim());
        match self.kind {
            EncodingKind::Frequency => self.frequency_features_multi(labels, &mut out),
            EncodingKind::Embedding => self.embedding_features_multi(labels, &mut out),
            EncodingKind::Concatenated => {
                self.frequency_features_multi(labels, &mut out);
                self.embedding_features_multi(labels, &mut out);
            }
        }
        out
    }

    /// Frequency-based encoding (§4.3): dimension `i` reflects `F(l_i)/|V|`
    /// when the node carries label `l_i`.
    ///
    /// Implementation note: the paper's raw encoding puts a constant 1.0 in
    /// every non-carried dimension, which badly conditions GIN sum
    /// aggregation (the informative deviation is ~1% of the input norm, and
    /// in LSS-con it drowns the embedding features). We store the centered
    /// affine reparameterization — `selectivity − 1 ≤ 0` on carried labels,
    /// `0` elsewhere — which encodes identical information (a fixed affine
    /// map of the paper's vector) but optimizes dramatically better.
    fn frequency_features_multi(&self, labels: &[u32], out: &mut Vec<f32>) {
        let start = out.len();
        out.extend(std::iter::repeat_n(0.0, self.num_labels));
        for &l in labels {
            if l != WILDCARD && (l as usize) < self.num_labels {
                // feature narrowing: selectivities are O(1) magnitudes
                #[allow(clippy::cast_possible_truncation)]
                let sel = self.stats.selectivity(l) as f32;
                out[start + l as usize] = sel - 1.0;
            }
        }
    }

    fn embedding_features_multi(&self, labels: &[u32], out: &mut Vec<f32>) {
        let Some(table) = self.label_embedding.as_ref() else {
            // The table is Some whenever the encoding is Embedding (set at
            // construction). Emitting no features here mis-sizes the
            // vector, which the model's input-width check then reports.
            debug_assert!(false, "embedding encoder constructed without table");
            return;
        };
        let dim = table.first().map_or(0, |v| v.len());
        let start = out.len();
        out.extend(std::iter::repeat_n(0.0, dim));
        for &l in labels {
            if l == WILDCARD || l as usize >= table.len() {
                continue;
            }
            for (o, &x) in out[start..].iter_mut().zip(&table[l as usize]) {
                *o += x;
            }
        }
    }

    /// Frequency-based edge-label encoding (the Eq. 4 extension).
    pub fn edge_features(&self, label: u32) -> Vec<f32> {
        (0..self.num_edge_labels)
            .map(|i| {
                if label != WILDCARD && label as usize == i {
                    // feature narrowing: selectivities are O(1) magnitudes
                    #[allow(clippy::cast_possible_truncation)]
                    {
                        self.stats.edge_selectivity(label) as f32
                    }
                } else {
                    1.0
                }
            })
            .collect()
    }

    /// Encode one decomposed substructure.
    pub fn encode_substructure(&self, s: &Substructure) -> EncodedSubstructure {
        let g = &s.graph;
        let n = g.num_nodes();
        let dim = self.node_dim();
        let mut feats = Vec::with_capacity(n * dim);
        for v in g.nodes() {
            let labels: Vec<u32> = if g.label(v) == WILDCARD {
                vec![WILDCARD]
            } else {
                g.labels_of(v).collect()
            };
            feats.extend(self.node_features_multi(&labels));
        }
        let edges: Vec<(u32, u32)> = g.edges().map(|e| (e.u, e.v)).collect();
        let adj = adjacency_from_edges(n, &edges);
        let edge_sums = (self.num_edge_labels > 0).then(|| {
            let efeats: Vec<Vec<f32>> = g.edges().map(|e| self.edge_features(e.label)).collect();
            edge_feature_sums(n, &edges, &efeats)
        });
        EncodedSubstructure {
            features: Mat::from_vec(n, dim, feats),
            adj,
            edge_sums,
        }
    }

    /// Decompose and encode a whole query graph (Algorithm 1, line 1 +
    /// §4.3).
    pub fn encode_query(&self, q: &Graph) -> EncodedQuery {
        let _span = alss_telemetry::Span::enter("encode.query");
        let subs = alss_graph::decompose(q, self.hops)
            .iter()
            .map(|s| self.encode_substructure(s))
            .collect();
        EncodedQuery { subs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::builder::graph_from_edges;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn data() -> Graph {
        graph_from_edges(&[0, 0, 1, 2], &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn frequency_features_follow_the_paper() {
        let enc = Encoder::frequency(&data(), 3);
        assert_eq!(enc.node_dim(), 3);
        // node labeled 0: dim0 = F(0)/|V| − 1 = −0.5 (centered); others 0
        assert_eq!(enc.node_features(0), vec![-0.5, 0.0, 0.0]);
        assert_eq!(enc.node_features(2), vec![0.0, 0.0, -0.75]);
        // wildcard: every dimension passes everything (centered to 0)
        assert_eq!(enc.node_features(WILDCARD), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn embedding_features_sum_labels() {
        let d = data();
        let mut rng = SmallRng::seed_from_u64(0);
        let enc = Encoder::embedding(
            &d,
            3,
            &ProneConfig {
                dim: 4,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(enc.node_dim(), 4);
        let f0 = enc.node_features(0);
        assert_eq!(f0.len(), 4);
        assert!(f0.iter().any(|&x| x != 0.0));
        assert_eq!(enc.node_features(WILDCARD), vec![0.0; 4]);
    }

    #[test]
    fn concatenated_dim_is_sum() {
        let d = data();
        let mut rng = SmallRng::seed_from_u64(1);
        let enc = Encoder::concatenated(
            &d,
            3,
            &ProneConfig {
                dim: 4,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(enc.node_dim(), 3 + 4);
        assert_eq!(enc.node_features(1).len(), 7);
    }

    #[test]
    fn encode_query_produces_one_sub_per_node() {
        let d = data();
        let enc = Encoder::frequency(&d, 3);
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let eq = enc.encode_query(&q);
        assert_eq!(eq.subs.len(), 3);
        for s in &eq.subs {
            assert_eq!(s.features.cols(), 3);
            assert!(s.edge_sums.is_none());
        }
    }

    #[test]
    fn edge_labeled_graphs_get_edge_sums() {
        let mut b = alss_graph::GraphBuilder::new(3);
        b.set_label(0, 0).set_label(1, 0).set_label(2, 1);
        b.add_labeled_edge(0, 1, 0).add_labeled_edge(1, 2, 1);
        let d = b.build();
        let enc = Encoder::frequency(&d, 2);
        assert_eq!(enc.edge_dim(), 2);
        let q = d.clone();
        let eq = enc.encode_query(&q);
        for s in &eq.subs {
            let es = s.edge_sums.as_ref().expect("edge sums expected");
            assert_eq!(es.cols(), 2);
        }
    }
}
