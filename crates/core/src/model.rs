//! The LSS neural architecture (§4.2, Algorithm 1): GIN substructure
//! encoder → structured self-attention aggregation → multi-task MLP head
//! (1 regression neuron for `log10 c_Θ(q)` + `m` classification neurons for
//! the count magnitude, §5).

use crate::encode::EncodedQuery;
use alss_nn::loss::{cross_entropy_loss, magnitude_class, mse_log_loss, multi_task_loss};
use alss_nn::{Activation, Aggregation, GinEncoder, Mlp, ParamStore, SelfAttention, Tape, Var};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How per-substructure representations are aggregated into the query
/// representation (`w(·)` of Eq. 2): the paper's structured self-attention
/// or a plain unweighted sum (the `ablation_attention` baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Aggregator {
    /// Structured self-attention (Algorithm 1, lines 8–11).
    #[default]
    Attention,
    /// Unweighted sum of substructure representations.
    SumPool,
}

/// LSS hyper-parameters (§6.1 defaults: 3 GIN layers × 64 hidden units,
/// dropout 0.5, two-layer MLP, λ = 1/3).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LssConfig {
    /// GIN hidden width.
    pub hidden: usize,
    /// Number of GIN layers.
    pub gnn_layers: usize,
    /// Dropout probability inside GIN/MLP hidden layers.
    pub dropout: f32,
    /// Attention hidden width `da`.
    pub att_hidden: usize,
    /// Attention rows `r` ("experts").
    pub att_heads: usize,
    /// MLP hidden width.
    pub mlp_hidden: usize,
    /// Magnitude classes `m` (counts range up to ~10^14 in the paper).
    pub num_classes: usize,
    /// Multi-task coefficient λ of Eq. (6).
    pub lambda: f32,
    /// Substructure aggregation (attention per the paper, or sum pooling
    /// for the ablation).
    #[serde(default)]
    pub aggregator: Aggregator,
    /// GNN neighborhood aggregation (GIN sum per the paper, or mean for
    /// the ablation).
    #[serde(default)]
    pub gnn_aggregation: Aggregation,
}

impl Default for LssConfig {
    fn default() -> Self {
        LssConfig {
            hidden: 64,
            gnn_layers: 3,
            dropout: 0.5,
            att_hidden: 64,
            att_heads: 4,
            mlp_hidden: 64,
            num_classes: 16,
            lambda: 1.0 / 3.0,
            aggregator: Aggregator::Attention,
            gnn_aggregation: Aggregation::Sum,
        }
    }
}

impl LssConfig {
    /// A small configuration for tests and quick examples.
    pub fn tiny() -> Self {
        LssConfig {
            hidden: 16,
            gnn_layers: 2,
            dropout: 0.0,
            att_hidden: 16,
            att_heads: 2,
            mlp_hidden: 16,
            num_classes: 8,
            lambda: 1.0 / 3.0,
            aggregator: Aggregator::Attention,
            gnn_aggregation: Aggregation::Sum,
        }
    }
}

/// Output of one LSS prediction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Prediction {
    /// Regression output `log10 c_Θ(q)`.
    pub log10_count: f64,
    /// Posterior over magnitude classes `p_Θ(y|q)` (softmax of the `m`
    /// classification neurons).
    pub class_probs: Vec<f64>,
}

impl Prediction {
    /// Estimated count in linear scale, clamped to ≥ 1 (§2's assumption).
    pub fn count(&self) -> f64 {
        10f64.powf(self.log10_count).max(1.0)
    }

    /// Most likely magnitude class `ŷ₁`.
    pub fn top_class(&self) -> usize {
        self.class_probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// `(ŷ₁, ŷ₂)` — the two most likely classes.
    pub fn top_two(&self) -> (usize, usize) {
        let mut idx: Vec<usize> = (0..self.class_probs.len()).collect();
        idx.sort_by(|&a, &b| {
            self.class_probs[b]
                .partial_cmp(&self.class_probs[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        (idx[0], *idx.get(1).unwrap_or(&idx[0]))
    }
}

/// The LSS model: parameters + architecture.
#[derive(Clone, Serialize, Deserialize)]
pub struct LssModel {
    cfg: LssConfig,
    store: ParamStore,
    gin: GinEncoder,
    /// `None` under [`Aggregator::SumPool`].
    att: Option<SelfAttention>,
    mlp: Mlp,
}

impl LssModel {
    /// Build a model for the given input feature dimensions.
    pub fn new<R: Rng>(cfg: LssConfig, node_dim: usize, edge_dim: usize, rng: &mut R) -> Self {
        assert!(node_dim > 0, "node feature dimension must be positive");
        let mut store = ParamStore::new();
        let gin = GinEncoder::with_options(
            &mut store,
            "lss.gin",
            node_dim,
            cfg.hidden,
            cfg.gnn_layers,
            edge_dim,
            cfg.dropout,
            Activation::Relu,
            cfg.gnn_aggregation,
            rng,
        );
        let (att, mlp_in) = match cfg.aggregator {
            Aggregator::Attention => {
                let att = SelfAttention::new(
                    &mut store,
                    "lss.att",
                    cfg.hidden,
                    cfg.att_hidden,
                    cfg.att_heads,
                    rng,
                );
                let d = att.out_dim();
                (Some(att), d)
            }
            Aggregator::SumPool => (None, cfg.hidden),
        };
        let mlp = Mlp::new(
            &mut store,
            "lss.mlp",
            &[mlp_in, cfg.mlp_hidden, 1 + cfg.num_classes],
            Activation::Relu,
            cfg.dropout,
            rng,
        );
        LssModel {
            cfg,
            store,
            gin,
            att,
            mlp,
        }
    }

    /// Hyper-parameters.
    pub fn config(&self) -> &LssConfig {
        &self.cfg
    }

    /// The parameter store (optimizer access).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable parameter store (optimizer access).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Total scalar weight count.
    pub fn num_weights(&self) -> usize {
        self.store.num_weights()
    }

    /// Forward pass (Algorithm 1): returns the regression node (`1 × 1`,
    /// `log10 c_Θ(q)`) and the classification logits (`1 × m`).
    pub fn forward<R: Rng>(
        &self,
        tape: &mut Tape,
        query: &EncodedQuery,
        rng: &mut R,
    ) -> (Var, Var) {
        assert!(
            !query.subs.is_empty(),
            "query decomposed into no substructures"
        );
        let mut reps: Vec<Var> = Vec::with_capacity(query.subs.len());
        for s in &query.subs {
            let x = tape.input(s.features.clone());
            let es = s.edge_sums.as_ref().map(|m| tape.input(m.clone()));
            let h = self.gin.encode(tape, &self.store, x, &s.adj, es, rng);
            reps.push(h);
        }
        let h_q = tape.concat_rows(&reps); // n × hidden (Alg. 1 line 8)
        let e_q = match &self.att {
            // lines 9-11: attention-weighted aggregation + flatten
            Some(att) => att.forward(tape, &self.store, h_q).0,
            // ablation: unweighted sum over substructures
            None => tape.sum_rows(h_q),
        };
        let out = self.mlp.forward(tape, &self.store, e_q, rng); // line 12
        let reg = tape.slice_cols(out, 0, 1);
        let logits = tape.slice_cols(out, 1, 1 + self.cfg.num_classes);
        (reg, logits)
    }

    /// Build the Eq. (6) multi-task loss for one labeled query.
    pub fn loss<R: Rng>(
        &self,
        tape: &mut Tape,
        query: &EncodedQuery,
        true_count: u64,
        rng: &mut R,
    ) -> Var {
        let (reg, logits) = self.forward(tape, query, rng);
        // log10 of a u64 fits comfortably in f32 (< 20)
        #[allow(clippy::cast_possible_truncation)]
        let target_log = (true_count.max(1) as f64).log10() as f32;
        let l_reg = mse_log_loss(tape, reg, &[target_log]);
        let cls = magnitude_class(true_count as f64, self.cfg.num_classes);
        let l_cla = cross_entropy_loss(tape, logits, &[cls]);
        multi_task_loss(tape, l_reg, l_cla, self.cfg.lambda)
    }

    /// Inference: predict count and magnitude posterior (eval mode; no
    /// dropout, deterministic).
    pub fn predict(&self, query: &EncodedQuery) -> Prediction {
        let _span = alss_telemetry::Span::enter("model.forward");
        let mut tape = Tape::new(false);
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let (reg, logits) = self.forward(&mut tape, query, &mut rng);
        let log10_count = tape.value(reg).scalar() as f64;
        let probs_node = {
            let mut t2 = tape; // reuse: softmax on the logits node
            let sm = t2.softmax_rows(logits);
            t2.value(sm).row(0).iter().map(|&p| p as f64).collect()
        };
        Prediction {
            log10_count,
            class_probs: probs_node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Encoder;
    use alss_graph::builder::graph_from_edges;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup() -> (Encoder, LssModel) {
        let data = graph_from_edges(&[0, 0, 1, 2], &[(0, 1), (1, 2), (2, 3)]);
        let enc = Encoder::frequency(&data, 3);
        let mut rng = SmallRng::seed_from_u64(0);
        let model = LssModel::new(LssConfig::tiny(), enc.node_dim(), enc.edge_dim(), &mut rng);
        (enc, model)
    }

    #[test]
    fn forward_shapes() {
        let (enc, model) = setup();
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let eq = enc.encode_query(&q);
        let mut tape = Tape::new(false);
        let mut rng = SmallRng::seed_from_u64(1);
        let (reg, logits) = model.forward(&mut tape, &eq, &mut rng);
        assert_eq!(tape.value(reg).shape(), (1, 1));
        assert_eq!(tape.value(logits).shape(), (1, 8));
    }

    #[test]
    fn prediction_is_deterministic_and_valid() {
        let (enc, model) = setup();
        let q = graph_from_edges(&[0, 1], &[(0, 1)]);
        let eq = enc.encode_query(&q);
        let p1 = model.predict(&eq);
        let p2 = model.predict(&eq);
        assert_eq!(p1.log10_count, p2.log10_count);
        assert!((p1.class_probs.iter().sum::<f64>() - 1.0).abs() < 1e-5);
        assert!(p1.count() >= 1.0);
    }

    #[test]
    fn prediction_invariant_to_query_node_order() {
        let (enc, model) = setup();
        // same path with two different node numberings
        let q1 = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let q2 = graph_from_edges(&[2, 1, 0], &[(2, 1), (1, 0)]);
        let p1 = model.predict(&enc.encode_query(&q1));
        let p2 = model.predict(&enc.encode_query(&q2));
        assert!(
            (p1.log10_count - p2.log10_count).abs() < 1e-4,
            "{} vs {}",
            p1.log10_count,
            p2.log10_count
        );
    }

    #[test]
    fn loss_is_finite_and_positive() {
        let (enc, model) = setup();
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let eq = enc.encode_query(&q);
        let mut tape = Tape::new(true);
        let mut rng = SmallRng::seed_from_u64(2);
        let l = model.loss(&mut tape, &eq, 1234, &mut rng);
        let v = tape.value(l).scalar();
        assert!(v.is_finite());
        assert!(v > 0.0);
    }

    #[test]
    fn sum_pool_aggregator_works_and_registers_fewer_params() {
        let data = graph_from_edges(&[0, 0, 1, 2], &[(0, 1), (1, 2), (2, 3)]);
        let enc = Encoder::frequency(&data, 3);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut cfg = LssConfig::tiny();
        cfg.aggregator = Aggregator::SumPool;
        let pooled = LssModel::new(cfg, enc.node_dim(), enc.edge_dim(), &mut rng);
        let mut rng2 = SmallRng::seed_from_u64(3);
        let attn = LssModel::new(LssConfig::tiny(), enc.node_dim(), enc.edge_dim(), &mut rng2);
        assert!(pooled.num_weights() < attn.num_weights());
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let p = pooled.predict(&enc.encode_query(&q));
        assert!(p.count().is_finite() && p.count() >= 1.0);
    }

    #[test]
    fn mean_gnn_variant_predicts() {
        let data = graph_from_edges(&[0, 0, 1, 2], &[(0, 1), (1, 2), (2, 3)]);
        let enc = Encoder::frequency(&data, 3);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut cfg = LssConfig::tiny();
        cfg.gnn_aggregation = alss_nn::Aggregation::Mean;
        let model = LssModel::new(cfg, enc.node_dim(), enc.edge_dim(), &mut rng);
        let q = graph_from_edges(&[0, 1], &[(0, 1)]);
        let p = model.predict(&enc.encode_query(&q));
        assert!(p.count().is_finite());
    }

    #[test]
    fn model_serde_roundtrip() {
        let data = graph_from_edges(&[0, 0, 1, 2], &[(0, 1), (1, 2), (2, 3)]);
        let enc = Encoder::frequency(&data, 3);
        let mut rng = SmallRng::seed_from_u64(5);
        let model = LssModel::new(LssConfig::tiny(), enc.node_dim(), enc.edge_dim(), &mut rng);
        let json = serde_json::to_string(&model).expect("serialize");
        let back: LssModel = serde_json::from_str(&json).expect("deserialize");
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let eq = enc.encode_query(&q);
        assert_eq!(
            model.predict(&eq).log10_count,
            back.predict(&eq).log10_count
        );
    }

    #[test]
    fn top_two_classes_ordered() {
        let p = Prediction {
            log10_count: 2.0,
            class_probs: vec![0.1, 0.6, 0.3],
        };
        assert_eq!(p.top_class(), 1);
        assert_eq!(p.top_two(), (1, 2));
    }
}
