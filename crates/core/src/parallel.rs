//! Shared data-parallel execution config and fan-out helper.
//!
//! The learned-sketch side of the pipeline (training, batch inference,
//! active-learning pool scoring) is embarrassingly parallel per item, so
//! it fans out over std scoped threads. The vendored `rayon` stand-in is
//! sequential, and a global pool would couple determinism to ambient
//! state; a [`Parallelism`] value carried in the config keeps the thread
//! count explicit, serializable, and test-controllable.
//!
//! **Determinism contract:** every helper here preserves item order —
//! results are identical (bitwise, for pure per-item work) for any thread
//! count, including 1. Reductions over the mapped results are the
//! caller's job and must likewise run in item order.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread-count override (set by the bench binaries'
/// `--threads` flag). `0` = unset.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Override the auto-detected thread count process-wide (the bench
/// binaries call this when `--threads N` is passed). Explicit
/// [`Parallelism::fixed`] values still win over this.
pub fn set_global_threads(threads: usize) {
    GLOBAL_THREADS.store(threads, Ordering::Relaxed);
}

/// Thread-count configuration for the data-parallel helpers.
///
/// `threads == 0` means "auto": resolve at use time to the `--threads`
/// override, else the `ALSS_THREADS` environment variable, else the
/// number of available cores. Serialized configs therefore stay portable
/// across machines while pinned configs (`fixed(n)`) stay exact.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Parallelism {
    /// Requested worker threads; `0` = auto-detect.
    #[serde(default)]
    pub threads: usize,
}

impl Parallelism {
    /// Auto-detected parallelism (override > `ALSS_THREADS` > cores).
    pub fn auto() -> Self {
        Parallelism { threads: 0 }
    }

    /// Exactly `n` worker threads (`fixed(1)` = the serial path).
    pub fn fixed(n: usize) -> Self {
        Parallelism { threads: n.max(1) }
    }

    /// Single-threaded.
    pub fn serial() -> Self {
        Self::fixed(1)
    }

    /// The resolved thread count (≥ 1).
    pub fn effective(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        let global = GLOBAL_THREADS.load(Ordering::Relaxed);
        if global > 0 {
            return global;
        }
        if let Some(n) = std::env::var("ALSS_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }

    /// Worker count for a job of `n` items: never more workers than
    /// items, never fewer than 1.
    pub fn workers_for(&self, n: usize) -> usize {
        self.effective().min(n).max(1)
    }
}

/// Order-preserving parallel map: `out[i] == f(i, &items[i])` for every
/// `i`, regardless of thread count. Items are split into contiguous
/// chunks, one per worker; the first chunk runs on the calling thread (so
/// `fixed(1)` spawns nothing), the rest on scoped threads joined in chunk
/// order. A panicking worker propagates its panic to the caller.
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = par.workers_for(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .skip(1)
            .map(|(ci, chunk_items)| {
                let base = ci * chunk;
                s.spawn(move || {
                    chunk_items
                        .iter()
                        .enumerate()
                        .map(|(j, t)| f(base + j, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        out.extend(items[..chunk].iter().enumerate().map(|(i, t)| f(i, t)));
        for h in handles {
            match h.join() {
                Ok(v) => out.extend(v),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_is_positive() {
        assert!(Parallelism::auto().effective() >= 1);
        assert_eq!(Parallelism::fixed(3).effective(), 3);
        assert_eq!(Parallelism::fixed(0).effective(), 1);
        assert_eq!(Parallelism::serial().effective(), 1);
    }

    #[test]
    fn workers_capped_by_items() {
        assert_eq!(Parallelism::fixed(8).workers_for(3), 3);
        assert_eq!(Parallelism::fixed(2).workers_for(100), 2);
        assert_eq!(Parallelism::fixed(4).workers_for(0), 1);
    }

    #[test]
    fn par_map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..103).collect();
        let serial = par_map(Parallelism::serial(), &items, |i, &x| x * 3 + i as u64);
        for threads in [2, 3, 4, 7, 16] {
            let parallel = par_map(Parallelism::fixed(threads), &items, |i, &x| {
                x * 3 + i as u64
            });
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn par_map_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(Parallelism::fixed(4), &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(Parallelism::fixed(4), &[9u32], |_, &x| x + 1), [10]);
    }

    #[test]
    fn serde_default_is_auto() {
        let p: Parallelism = serde_json::from_str("{}").expect("parse");
        assert_eq!(p, Parallelism::auto());
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        let _ = par_map(Parallelism::fixed(4), &items, |_, &x| {
            assert!(x < 40, "worker boom");
            x
        });
    }
}
