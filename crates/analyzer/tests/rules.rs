//! Per-rule positive / negative / waiver cases for the analyzer.

// Test code opts back out of the library panic/numeric policy: a panic IS
// the failure report here, and fixtures are tiny.
#![allow(
    clippy::unwrap_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use alss_analyzer::report::Rule;
use alss_analyzer::{classify, scan_source, FileKind};

fn rules_at(path: &str, src: &str) -> Vec<(Rule, usize, bool)> {
    scan_source(path, src)
        .into_iter()
        .map(|f| (f.rule, f.line, f.waived))
        .collect()
}

const LIB: &str = "crates/x/src/lib.rs";

#[test]
fn classify_paths() {
    assert_eq!(classify("crates/x/src/lib.rs"), FileKind::Lib);
    assert_eq!(classify("crates/x/src/deep/mod.rs"), FileKind::Lib);
    assert_eq!(classify("crates/x/src/bin/tool.rs"), FileKind::Exempt);
    assert_eq!(classify("crates/x/src/main.rs"), FileKind::Exempt);
    assert_eq!(classify("crates/x/tests/it.rs"), FileKind::Exempt);
    assert_eq!(classify("crates/x/benches/b.rs"), FileKind::Exempt);
    assert_eq!(classify("crates/x/examples/e.rs"), FileKind::Exempt);
    // A file merely *named* tests.rs in src is still lib code.
    assert_eq!(classify("crates/x/src/tests.rs"), FileKind::Lib);
}

#[test]
fn unwrap_flagged_in_lib() {
    let f = rules_at(LIB, "fn f(v: Option<u8>) -> u8 { v.unwrap() }\n");
    assert_eq!(f, vec![(Rule::NoUnwrap, 1, false)]);
}

#[test]
fn unwrap_with_whitespace_before_parens() {
    let f = rules_at(LIB, "let x = v.unwrap ();\n");
    assert_eq!(f, vec![(Rule::NoUnwrap, 1, false)]);
}

#[test]
fn unwrap_or_variants_are_fine() {
    let src = "let a = v.unwrap_or(0);\nlet b = v.unwrap_or_else(|| 0);\nlet c = v.unwrap_or_default();\n";
    assert!(rules_at(LIB, src).is_empty());
}

#[test]
fn unwrap_in_string_or_comment_is_ignored() {
    let src = "let s = \"x.unwrap()\"; // and .unwrap() here\n";
    assert!(rules_at(LIB, src).is_empty());
}

#[test]
fn unwrap_in_cfg_test_module_is_allowed() {
    let src = "\
fn lib_fn() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v: Option<u8> = Some(1);
        v.unwrap();
    }
}
";
    assert!(rules_at(LIB, src).is_empty());
}

#[test]
fn unwrap_after_cfg_test_module_is_flagged_again() {
    let src = "\
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); }
}

fn lib_fn(v: Option<u8>) -> u8 { v.unwrap() }
";
    assert_eq!(rules_at(LIB, src), vec![(Rule::NoUnwrap, 6, false)]);
}

#[test]
fn unwrap_in_exempt_paths_is_allowed() {
    let src = "fn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
    assert!(rules_at("crates/x/tests/it.rs", src).is_empty());
    assert!(rules_at("crates/x/src/bin/tool.rs", src).is_empty());
    assert!(rules_at("crates/x/src/main.rs", src).is_empty());
}

#[test]
fn expect_flagged_but_expect_err_is_not() {
    let f = rules_at(LIB, "let x = v.expect(\"msg\");\n");
    assert_eq!(f, vec![(Rule::NoExpect, 1, false)]);
    assert!(rules_at(LIB, "let x = r.expect_err(\"msg\");\n").is_empty());
}

#[test]
fn panic_flagged_but_asserts_allowed() {
    let f = rules_at(LIB, "panic!(\"boom\");\n");
    assert_eq!(f, vec![(Rule::NoPanic, 1, false)]);
    let ok = "assert!(x > 0);\ndebug_assert!(y.is_finite());\nassert_eq!(a, b);\n";
    assert!(rules_at(LIB, ok).is_empty());
}

#[test]
fn todo_and_unimplemented_flagged_even_in_tests() {
    let f = rules_at(LIB, "fn f() { todo!() }\n");
    assert_eq!(f, vec![(Rule::NoTodo, 1, false)]);
    let f = rules_at("crates/x/tests/it.rs", "fn g() { unimplemented!() }\n");
    assert_eq!(f, vec![(Rule::NoTodo, 1, false)]);
}

#[test]
fn truncating_count_cast_flagged() {
    let f = rules_at(LIB, "let small = edge_count as u32;\n");
    assert_eq!(f, vec![(Rule::TruncatingCountCast, 1, false)]);
    let f = rules_at(LIB, "let small = self.total_matches() as i32;\n");
    assert_eq!(f, vec![(Rule::TruncatingCountCast, 1, false)]);
    let f = rules_at(LIB, "let x = freq as f32;\n");
    assert_eq!(f, vec![(Rule::TruncatingCountCast, 1, false)]);
}

#[test]
fn widening_or_unrelated_casts_are_fine() {
    let ok = "\
let a = edge_count as u64;
let b = edge_count as f64;
let c = node_id as u32;
let d = idx as usize;
";
    assert!(rules_at(LIB, ok).is_empty());
}

#[test]
fn println_flagged_in_lib_but_not_bins_or_tests() {
    let f = rules_at(LIB, "println!(\"progress: {i}\");\n");
    assert_eq!(f, vec![(Rule::NoPrintln, 1, false)]);
    let f = rules_at(LIB, "eprintln!(\"warn\");\n");
    assert_eq!(f, vec![(Rule::NoPrintln, 1, false)]);
    let src = "println!(\"table row\");\n";
    assert!(rules_at("crates/x/src/bin/tool.rs", src).is_empty());
    assert!(rules_at("crates/x/src/main.rs", src).is_empty());
    assert!(rules_at("crates/x/tests/it.rs", src).is_empty());
    // In-test printing inside lib files is fine too.
    let in_test = "#[cfg(test)]\nmod tests {\n    fn t() { println!(\"dbg\"); }\n}\n";
    assert!(rules_at(LIB, in_test).is_empty());
}

#[test]
fn println_in_string_comment_or_ident_is_ignored() {
    // Strings and comments are lexed away; `writeln!` and identifiers
    // containing the word are not matches.
    let ok = "let s = \"println!(no)\"; // println! in a comment\nwriteln!(f, \"x\")?;\n";
    assert!(rules_at(LIB, ok).is_empty());
}

#[test]
fn println_waiver_silences() {
    let src =
        "eprintln!(\"fallback\"); // analyzer: allow(no-println) - stderr escape hatch by design\n";
    assert_eq!(rules_at(LIB, src), vec![(Rule::NoPrintln, 1, true)]);
}

#[test]
fn unsafe_requires_safety_comment() {
    let f = rules_at(LIB, "unsafe { ptr.read() }\n");
    assert_eq!(f, vec![(Rule::UnsafeWithoutComment, 1, false)]);
    let ok = "// SAFETY: ptr is valid for reads, checked above.\nunsafe { ptr.read() }\n";
    assert!(rules_at(LIB, ok).is_empty());
    // Same-line SAFETY comment also counts.
    let ok2 = "unsafe { ptr.read() } // SAFETY: valid by construction\n";
    assert!(rules_at(LIB, ok2).is_empty());
}

#[test]
fn waiver_on_same_line_silences() {
    let src = "let x = v.unwrap(); // analyzer: allow(no-unwrap) - checked non-empty above\n";
    assert_eq!(rules_at(LIB, src), vec![(Rule::NoUnwrap, 1, true)]);
    let f = &scan_source(LIB, src)[0];
    assert_eq!(f.waiver_reason.as_deref(), Some("checked non-empty above"));
}

#[test]
fn waiver_on_preceding_line_silences() {
    let src = "\
// analyzer: allow(no-panic) - unreachable: match is exhaustive over validated input
panic!(\"unreachable\");
";
    assert_eq!(rules_at(LIB, src), vec![(Rule::NoPanic, 2, true)]);
}

#[test]
fn waiver_names_multiple_rules() {
    let src = "\
// analyzer: allow(no-unwrap, no-expect) - test fixture construction
let x = a.unwrap() + b.expect(\"b\");
";
    let f = rules_at(LIB, src);
    assert_eq!(
        f,
        vec![(Rule::NoUnwrap, 2, true), (Rule::NoExpect, 2, true)]
    );
}

#[test]
fn waiver_for_wrong_rule_does_not_silence_and_is_stale() {
    let src = "let x = v.unwrap(); // analyzer: allow(no-panic) - not the right rule\n";
    assert_eq!(
        rules_at(LIB, src),
        vec![(Rule::NoUnwrap, 1, false), (Rule::StaleWaiver, 1, false)]
    );
}

#[test]
fn waiver_with_no_finding_is_stale() {
    let src = "\
// analyzer: allow(no-unwrap) - the unwrap below was long since removed
let x = checked(v);
";
    assert_eq!(rules_at(LIB, src), vec![(Rule::StaleWaiver, 1, false)]);
}

#[test]
fn waiver_with_no_following_code_is_stale() {
    let src = "// analyzer: allow(no-unwrap) - dangling at end of file\n";
    let f = rules_at(LIB, src);
    assert_eq!(f, vec![(Rule::StaleWaiver, 1, false)]);
}

#[test]
fn used_waiver_is_not_stale() {
    let src = "let x = v.unwrap(); // analyzer: allow(no-unwrap) - checked above\n";
    assert_eq!(rules_at(LIB, src), vec![(Rule::NoUnwrap, 1, true)]);
}

#[test]
fn multi_rule_waiver_is_used_when_any_rule_fires() {
    // Only no-unwrap fires; the waiver still silenced something, so it is
    // live, not stale.
    let src = "\
// analyzer: allow(no-unwrap, no-expect) - fixture construction
let x = a.unwrap();
";
    assert_eq!(rules_at(LIB, src), vec![(Rule::NoUnwrap, 2, true)]);
}

#[test]
fn stale_waiver_cannot_be_waived() {
    let src = "\
// analyzer: allow(stale-waiver) - trying to excuse dead suppressions
let x = 1;
";
    // Naming an unwaivable rule is itself malformed.
    assert_eq!(rules_at(LIB, src), vec![(Rule::MalformedWaiver, 1, false)]);
}

#[test]
fn waiver_syntax_in_doc_comments_is_ignored() {
    // Documentation *about* waivers (like the waiver module's own docs)
    // must neither waive anything nor be reported stale.
    let src = "\
/// Example: `// analyzer: allow(no-unwrap) - reason`
//! More docs: analyzer: allow(no-panic) - also quoted
fn documented() {}
";
    assert!(rules_at(LIB, src).is_empty());
}

#[test]
fn waiver_without_reason_is_malformed() {
    let src = "let x = v.unwrap(); // analyzer: allow(no-unwrap)\n";
    let f = rules_at(LIB, src);
    assert!(f.contains(&(Rule::MalformedWaiver, 1, false)));
    // And the unwrap itself stays unwaivered.
    assert!(f.contains(&(Rule::NoUnwrap, 1, false)));
}

#[test]
fn waiver_with_unknown_rule_is_malformed() {
    let src = "let x = 1; // analyzer: allow(no-such-rule) - because\n";
    assert_eq!(rules_at(LIB, src), vec![(Rule::MalformedWaiver, 1, false)]);
}

#[test]
fn malformed_waiver_cannot_waive_itself() {
    let src = "\
// analyzer: allow(malformed-waiver) - trying to silence the cop
let x = 1;
";
    assert_eq!(rules_at(LIB, src), vec![(Rule::MalformedWaiver, 1, false)]);
}

#[test]
fn waiver_applies_across_blank_and_comment_lines() {
    let src = "\
// analyzer: allow(no-unwrap) - slot was just inserted

// interleaved comment
let x = v.unwrap();
";
    assert_eq!(rules_at(LIB, src), vec![(Rule::NoUnwrap, 4, true)]);
}

#[test]
fn report_json_is_parseable() {
    let report = alss_analyzer::report::Report {
        findings: scan_source(LIB, "panic!(\"x\");\n"),
        files_scanned: 1,
    };
    let json = report.to_json();
    let v = serde_json::from_str::<serde::Value>(&json).expect("report JSON must parse");
    assert!(v.get("findings").is_some());
}
