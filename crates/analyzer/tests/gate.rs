//! The enforcement gate: scanning the real workspace must come back clean.
//!
//! This is what makes the analyzer a CI gate rather than an advisory tool:
//! `cargo test -q` fails if any `crates/*/src` file carries an unwaivered
//! finding or a waiver without a reason.

// Test code opts back out of the library panic/numeric policy: a panic IS
// the failure report here, and fixtures are tiny.
#![allow(
    clippy::unwrap_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use std::path::Path;

#[test]
fn workspace_sources_have_no_unwaivered_findings() {
    let root = alss_analyzer::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/analyzer");
    let report = alss_analyzer::scan_workspace(&root).expect("workspace scan");

    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}); did the layout change?",
        report.files_scanned
    );

    let offenders: Vec<String> = report
        .unwaivered()
        .map(|f| {
            format!(
                "{}:{} [{}] {}\n    {}",
                f.file, f.line, f.rule, f.message, f.snippet
            )
        })
        .collect();
    assert!(
        offenders.is_empty(),
        "analyzer gate: {} unwaivered finding(s):\n{}",
        offenders.len(),
        offenders.join("\n")
    );
}

#[test]
fn every_waiver_carries_a_reason() {
    let root = alss_analyzer::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/analyzer");
    let report = alss_analyzer::scan_workspace(&root).expect("workspace scan");
    for f in report.findings.iter().filter(|f| f.waived) {
        let reason = f.waiver_reason.as_deref().unwrap_or("");
        assert!(
            !reason.trim().is_empty(),
            "{}:{} waived without a reason",
            f.file,
            f.line
        );
    }
}
