//! Per-site waiver comments.
//!
//! Syntax (written in a line comment, on the offending line or on its own
//! line directly above):
//!
//! ```text
//! // analyzer: allow(no-unwrap) - index was bounds-checked two lines up
//! // analyzer: allow(no-panic, no-expect) — unreachable by construction
//! ```
//!
//! A waiver must name at least one known rule and carry a non-empty reason
//! after a `-`/`—`/`:` separator; anything else is a `malformed-waiver`
//! finding, which cannot itself be waived.

use crate::report::Rule;

/// A parsed waiver, not yet bound to a target line.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rules this waiver silences.
    pub rules: Vec<Rule>,
    /// The written justification (non-empty by construction).
    pub reason: String,
    /// 1-based line the waiver applies to; filled in by the scanner.
    pub target: Option<usize>,
    /// 1-based line the waiver comment itself sits on; filled in by the
    /// scanner and used to report stale waivers at their source.
    pub declared: Option<usize>,
}

const MARKER: &str = "analyzer:";

/// Parse every waiver in one line's comment text. Returns `Err` with a
/// description when a waiver marker is present but malformed.
pub fn parse_waivers(comment: &str) -> Result<Vec<Waiver>, String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find(MARKER) {
        let after = rest[pos + MARKER.len()..].trim_start();
        let Some(args) = after.strip_prefix("allow") else {
            return Err(format!(
                "waiver marker without `allow(..)`: `{}`",
                excerpt(&rest[pos..])
            ));
        };
        let args = args.trim_start();
        let Some(args) = args.strip_prefix('(') else {
            return Err(format!(
                "waiver `allow` missing `(`: `{}`",
                excerpt(&rest[pos..])
            ));
        };
        let Some(close) = args.find(')') else {
            return Err(format!(
                "waiver `allow(` missing `)`: `{}`",
                excerpt(&rest[pos..])
            ));
        };
        let (rule_list, tail) = args.split_at(close);
        let mut rules = Vec::new();
        for name in rule_list.split(',') {
            let name = name.trim();
            if name.is_empty() {
                continue;
            }
            match Rule::from_name(name) {
                Some(r) if r.waivable() => rules.push(r),
                Some(r) => {
                    return Err(format!("rule `{}` cannot be waived", r.name()));
                }
                None => {
                    return Err(format!("unknown rule `{name}` in waiver"));
                }
            }
        }
        if rules.is_empty() {
            return Err("waiver names no rules".to_string());
        }
        let tail = tail[1..].trim_start(); // past ')'
        let reason = tail
            .strip_prefix('-')
            .or_else(|| tail.strip_prefix('\u{2014}')) // em dash
            .or_else(|| tail.strip_prefix('\u{2013}')) // en dash
            .or_else(|| tail.strip_prefix(':'))
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            return Err("waiver has no reason; write `allow(rule) - <why>`".to_string());
        }
        out.push(Waiver {
            rules,
            reason: reason.to_string(),
            target: None,
            declared: None,
        });
        rest = &rest[pos + MARKER.len()..];
    }
    Ok(out)
}

fn excerpt(s: &str) -> String {
    s.chars().take(60).collect()
}
