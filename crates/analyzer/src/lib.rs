//! `alss-analyzer`: a std-only static analyzer that enforces this
//! workspace's source invariants.
//!
//! The learned-sketch pipeline carries subgraph *counts* — values that are
//! easy to silently corrupt with a truncating cast — and its library crates
//! must not abort a long training or estimation run on a recoverable
//! condition. The analyzer walks every `crates/*/src` file and enforces:
//!
//! * **no-unwrap / no-expect / no-panic** — no `.unwrap()`, `.expect(..)`,
//!   or `panic!` in library code paths (tests, benches, examples, and
//!   binaries are allowlisted; `assert!`/`debug_assert!` remain allowed as
//!   invariant checks).
//! * **no-todo** — no `todo!` / `unimplemented!` anywhere.
//! * **truncating-count-cast** — no `as` cast of a count-carrying value
//!   (identifier matching `*count*`/`*total*`/`*cardinal*`/`*freq*`) to a
//!   narrower type (`u8`..`u32`, `i8`..`i32`, `f32`).
//! * **unsafe-without-comment** — every `unsafe` needs a `// SAFETY:`
//!   comment on or within three lines above it.
//!
//! Sites that are intentional can be silenced with an explicit waiver that
//! must carry a reason (see [`waiver`]); a malformed waiver is itself an
//! unwaivable finding. Results come back as a [`report::Report`] with a
//! JSON rendering for machine consumption, and `tests/gate.rs` turns the
//! whole thing into a `cargo test` gate.
//!
//! Scope note: the analyzer scans first-party sources only (`crates/*/src`).
//! `vendor/` holds offline stand-ins for external crates and is judged by
//! the upstream crates' own standards, not this repo's.

// Test modules opt back out of the library panic/numeric policy: a panic
// IS the failure report there, and fixtures are tiny.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod waiver;

use report::Report;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{classify, scan_source, FileKind};

/// Locate the workspace root by walking up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

/// Scan every `.rs` file under `crates/*/src` (and a top-level `src/`, if
/// present) relative to `root`. Findings are sorted by file then line.
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs_files(&src, &mut files)?;
            }
        }
    }
    let top_src = root.join("src");
    if top_src.is_dir() {
        collect_rs_files(&top_src, &mut files)?;
    }
    files.sort();

    let mut report = Report::default();
    for path in &files {
        let text = fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        report.findings.extend(scan_source(&rel, &text));
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
