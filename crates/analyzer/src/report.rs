//! Findings and the machine-readable report.

use serde::{Deserialize, Serialize};

/// The rules the analyzer enforces. Rule names (used in waivers and JSON)
/// are the kebab-case of the variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rule {
    /// `.unwrap()` in a library code path.
    NoUnwrap,
    /// `.expect(...)` in a library code path.
    NoExpect,
    /// `panic!` / `assert!`-free zones: explicit `panic!` in library code.
    NoPanic,
    /// `todo!()` or `unimplemented!()` anywhere in library code.
    NoTodo,
    /// A cast that can truncate a count-carrying value
    /// (e.g. `count as u32`).
    TruncatingCountCast,
    /// `unsafe` without an explanatory `// SAFETY:` comment.
    UnsafeWithoutComment,
    /// `println!` / `eprintln!` in library code — report through
    /// `alss-telemetry` (`progress`, spans, events) instead.
    NoPrintln,
    /// A waiver comment that names no rule or carries no reason.
    MalformedWaiver,
    /// A well-formed waiver that no longer silences anything: the code it
    /// referenced was fixed, moved, or deleted. Stale waivers are dead
    /// suppressions — they must be removed, not kept "just in case".
    StaleWaiver,
}

/// All rules, for iteration and name lookup.
pub const ALL_RULES: [Rule; 9] = [
    Rule::NoUnwrap,
    Rule::NoExpect,
    Rule::NoPanic,
    Rule::NoTodo,
    Rule::TruncatingCountCast,
    Rule::UnsafeWithoutComment,
    Rule::NoPrintln,
    Rule::MalformedWaiver,
    Rule::StaleWaiver,
];

impl Rule {
    /// Stable name used in waiver comments and the JSON report.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::NoExpect => "no-expect",
            Rule::NoPanic => "no-panic",
            Rule::NoTodo => "no-todo",
            Rule::TruncatingCountCast => "truncating-count-cast",
            Rule::UnsafeWithoutComment => "unsafe-without-comment",
            Rule::NoPrintln => "no-println",
            Rule::MalformedWaiver => "malformed-waiver",
            Rule::StaleWaiver => "stale-waiver",
        }
    }

    /// Parse a rule name as written in a waiver.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// Waivable rules can be silenced per-site with an `allow` waiver
    /// comment carrying a reason (see the `waiver` module). A malformed
    /// waiver cannot waive itself, and a stale waiver cannot be waived —
    /// the fix is always to delete the dead comment.
    pub fn waivable(self) -> bool {
        !matches!(self, Rule::MalformedWaiver | Rule::StaleWaiver)
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a source location.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Finding {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// `true` if silenced by a well-formed waiver; waived findings are
    /// reported but do not fail the gate.
    pub waived: bool,
    /// The waiver reason, when waived.
    pub waiver_reason: Option<String>,
}

/// Scan results over a file set.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Report {
    /// Every finding, waived or not, in file/line order.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not silenced by a waiver — these fail the gate.
    pub fn unwaivered(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// `true` when the gate passes.
    pub fn clean(&self) -> bool {
        self.unwaivered().next().is_none()
    }

    /// Machine-readable JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|e| {
            // The report type serializes infallibly with the vendored
            // serde; keep a structured fallback regardless.
            format!("{{\"error\":\"report serialization failed: {e}\"}}")
        })
    }
}
