//! A lightweight Rust surface lexer.
//!
//! The analyzer's rules are line/token-level, so the lexer's only job is to
//! split a source file into **code**, **comment**, and **literal** regions:
//! a `panic!` inside a doc comment or a string must never be flagged, and a
//! waiver written in a comment must never be hidden by code. It handles the
//! constructs that matter for that split — line and (nested) block
//! comments, string/byte-string literals with escapes, raw strings with
//! arbitrary `#` fences, char literals, and the char-vs-lifetime
//! ambiguity — and deliberately nothing more (no keyword table, no
//! expression grammar).

/// One source line split into its code and comment parts.
#[derive(Debug, Clone, Default)]
pub struct LineView {
    /// Code with every comment and literal body replaced by spaces
    /// (literal delimiters are kept so token shapes survive).
    pub code: String,
    /// Concatenated text of regular (non-doc) comments on this line.
    /// Waivers and `SAFETY:` annotations are only read from here.
    pub comment: String,
    /// Concatenated text of doc comments (`///`, `//!`) on this line.
    /// Kept separate so waiver syntax *quoted in documentation* is never
    /// parsed as a live waiver (and can never go stale).
    pub doc: String,
}

/// Lex `source` into per-line views.
pub fn split_lines(source: &str) -> Vec<LineView> {
    let mut lines: Vec<LineView> = Vec::new();
    let mut cur = LineView::default();

    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0usize;

    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        DocComment,        // `///` / `//!`
        BlockComment(u32), // nesting depth
        Str,               // "..."
        RawStr(usize),     // r##"..."## with fence length
        Char,              // '...'
    }
    let mut state = State::Code;

    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            if state == State::LineComment || state == State::DocComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = bytes.get(i + 1).copied();
                match (c, next) {
                    ('/', Some('/')) => {
                        // `///` (but not `////`, a banner) and `//!` are
                        // doc comments; their text goes to `doc`.
                        let is_doc = match bytes.get(i + 2).copied() {
                            Some('!') => true,
                            Some('/') => bytes.get(i + 3).copied() != Some('/'),
                            _ => false,
                        };
                        if is_doc {
                            state = State::DocComment;
                            i += 3;
                        } else {
                            state = State::LineComment;
                            i += 2;
                        }
                    }
                    ('/', Some('*')) => {
                        state = State::BlockComment(1);
                        cur.code.push(' ');
                        cur.code.push(' ');
                        i += 2;
                    }
                    ('"', _) => {
                        state = State::Str;
                        cur.code.push('"');
                        i += 1;
                    }
                    ('r', Some('"' | '#')) if is_raw_string_start(&bytes, i) => {
                        let fence = raw_fence_len(&bytes, i + 1);
                        state = State::RawStr(fence);
                        cur.code.push('"');
                        i += 2 + fence; // r, fence #s, opening quote
                    }
                    ('b', Some('"')) => {
                        state = State::Str;
                        cur.code.push('"');
                        i += 2;
                    }
                    ('b', Some('\'')) => {
                        state = State::Char;
                        cur.code.push('\'');
                        i += 2;
                    }
                    ('\'', _) => {
                        if is_char_literal(&bytes, i) {
                            state = State::Char;
                            cur.code.push('\'');
                            i += 1;
                        } else {
                            // Lifetime: keep it as code verbatim.
                            cur.code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        // Skip over identifiers wholesale so that an ident
                        // like `rawr` can't be misread as a raw-string start
                        // mid-way through.
                        if c.is_alphanumeric() || c == '_' {
                            let start = i;
                            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_')
                            {
                                i += 1;
                            }
                            // A raw string head (`r"`/`r#`/`br"`) was handled
                            // above; anything else is a plain ident/number.
                            for &ch in &bytes[start..i] {
                                cur.code.push(ch);
                            }
                        } else {
                            cur.code.push(c);
                            i += 1;
                        }
                    }
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::DocComment => {
                cur.doc.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = bytes.get(i + 1).copied();
                match (c, next) {
                    ('*', Some('/')) => {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment(depth - 1)
                        };
                        i += 2;
                    }
                    ('/', Some('*')) => {
                        state = State::BlockComment(depth + 1);
                        i += 2;
                    }
                    _ => {
                        cur.comment.push(c);
                        i += 1;
                    }
                }
            }
            State::Str => match c {
                '\\' => {
                    cur.code.push(' ');
                    if bytes.get(i + 1).is_some() {
                        cur.code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                '"' => {
                    state = State::Code;
                    cur.code.push('"');
                    i += 1;
                }
                _ => {
                    cur.code.push(' ');
                    i += 1;
                }
            },
            State::RawStr(fence) => {
                if c == '"' && raw_fence_matches(&bytes, i + 1, fence) {
                    state = State::Code;
                    cur.code.push('"');
                    i += 1 + fence;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::Char => match c {
                '\\' => {
                    cur.code.push(' ');
                    if bytes.get(i + 1).is_some() {
                        cur.code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                '\'' => {
                    state = State::Code;
                    cur.code.push('\'');
                    i += 1;
                }
                _ => {
                    cur.code.push(' ');
                    i += 1;
                }
            },
        }
    }
    lines.push(cur);
    lines
}

/// `r` at `i` starts a raw string iff it is `r"`, `r#...#"`, and the `r` is
/// not the tail of a longer identifier (callers guarantee that by skipping
/// identifiers wholesale).
fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    debug_assert_eq!(bytes[i], 'r');
    let mut j = i + 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

fn raw_fence_len(bytes: &[char], mut j: usize) -> usize {
    let mut n = 0;
    while bytes.get(j) == Some(&'#') {
        n += 1;
        j += 1;
    }
    n
}

fn raw_fence_matches(bytes: &[char], j: usize, fence: usize) -> bool {
    (0..fence).all(|k| bytes.get(j + k) == Some(&'#'))
}

/// Distinguish `'a'` (char literal) from `'a` (lifetime). A quote starts a
/// char literal when a closing quote appears after one character or escape.
fn is_char_literal(bytes: &[char], i: usize) -> bool {
    debug_assert_eq!(bytes[i], '\'');
    match bytes.get(i + 1) {
        None => false,
        Some('\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&'\''),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_separated_from_code() {
        let v = split_lines("let x = 1; // panic!(\"no\")\n");
        assert!(v[0].code.contains("let x = 1;"));
        assert!(!v[0].code.contains("panic!"));
        assert!(v[0].comment.contains("panic!"));
    }

    #[test]
    fn strings_are_blanked() {
        let v = split_lines("let s = \"call .unwrap() now\";");
        assert!(!v[0].code.contains("unwrap"));
        assert!(v[0].code.contains("let s = \""));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let v = split_lines("let s = r#\"x.unwrap()\"#; x.f();");
        assert!(!v[0].code.contains("unwrap"));
        assert!(v[0].code.contains("x.f();"));
    }

    #[test]
    fn nested_block_comments() {
        let v = split_lines("a /* outer /* inner */ still */ b");
        assert!(v[0].code.contains('a'));
        assert!(v[0].code.contains('b'));
        assert!(!v[0].code.contains("inner"));
        assert!(!v[0].code.contains("still"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let v = split_lines("fn f<'a>(x: &'a str) -> &'a str { x } let c = 'z'; x.g()");
        assert!(v[0].code.contains("fn f<'a>"));
        assert!(v[0].code.contains("x.g()"));
    }

    #[test]
    fn escaped_quote_in_char() {
        let v = split_lines(r"let q = '\''; y.unwrap()");
        assert!(v[0].code.contains("y.unwrap()"));
    }

    #[test]
    fn doc_comments_are_kept_out_of_comment_text() {
        let v = split_lines(
            "/// quoting: analyzer: allow(no-unwrap) - x\n//! same here\n// real comment\n",
        );
        assert!(v[0].comment.is_empty());
        assert!(v[0].doc.contains("allow(no-unwrap)"));
        assert!(v[1].comment.is_empty());
        assert!(v[1].doc.contains("same here"));
        assert!(v[2].comment.contains("real comment"));
        assert!(v[2].doc.is_empty());
    }

    #[test]
    fn quadruple_slash_banner_is_a_regular_comment() {
        let v = split_lines("//// banner ////\n");
        assert!(v[0].comment.contains("banner"));
        assert!(v[0].doc.is_empty());
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let v = split_lines("code1 /* c1\nc2 */ code2\n");
        assert!(v[0].code.contains("code1"));
        assert!(v[0].comment.contains("c1"));
        assert!(v[1].code.contains("code2"));
        assert!(v[1].comment.contains("c2"));
    }
}
