//! Rule checks over lexed source lines.

use crate::lexer::LineView;
use crate::report::{Finding, Rule};
use crate::waiver::{parse_waivers, Waiver};

/// How a file is classified, which decides which rules apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Library code path: all rules apply.
    Lib,
    /// Test, bench, example, or binary code: panic-style rules are
    /// allowlisted (`unwrap` in a test is fine), structural rules
    /// (`todo!`, `unsafe` hygiene) still apply.
    Exempt,
}

/// Classify a workspace-relative path.
pub fn classify(rel_path: &str) -> FileKind {
    let exempt_dirs = ["tests", "benches", "examples", "bin"];
    let mut components = rel_path.split(['/', '\\']).peekable();
    while let Some(c) = components.next() {
        let is_last = components.peek().is_none();
        if !is_last && exempt_dirs.contains(&c) {
            return FileKind::Exempt;
        }
        if is_last && (c == "build.rs" || c == "main.rs") {
            return FileKind::Exempt;
        }
    }
    FileKind::Lib
}

/// Scan one file's source text. `rel_path` is used for classification and
/// reporting only.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let kind = classify(rel_path);
    let lines = crate::lexer::split_lines(source);
    let test_region = test_regions(&lines);
    let raw_lines: Vec<&str> = source.lines().collect();

    let mut findings = Vec::new();
    let mut waivers: Vec<Waiver> = Vec::new();

    for (idx, lv) in lines.iter().enumerate() {
        let lineno = idx + 1;
        match parse_waivers(&lv.comment) {
            Ok(mut ws) => {
                for w in &mut ws {
                    w.target = waiver_target(&lines, idx);
                    w.declared = Some(lineno);
                }
                waivers.extend(ws);
            }
            Err(msg) => findings.push(finding(
                rel_path,
                lineno,
                Rule::MalformedWaiver,
                msg,
                &raw_lines,
            )),
        }

        let lib_code = kind == FileKind::Lib && !test_region[idx];
        let code = &lv.code;

        if lib_code {
            if let Some(msg) = check_unwrap(code) {
                findings.push(finding(rel_path, lineno, Rule::NoUnwrap, msg, &raw_lines));
            }
            if let Some(msg) = check_expect(code) {
                findings.push(finding(rel_path, lineno, Rule::NoExpect, msg, &raw_lines));
            }
            if let Some(msg) = check_panic(code) {
                findings.push(finding(rel_path, lineno, Rule::NoPanic, msg, &raw_lines));
            }
            if let Some(msg) = check_truncating_cast(code) {
                findings.push(finding(
                    rel_path,
                    lineno,
                    Rule::TruncatingCountCast,
                    msg,
                    &raw_lines,
                ));
            }
            if let Some(msg) = check_println(code) {
                findings.push(finding(rel_path, lineno, Rule::NoPrintln, msg, &raw_lines));
            }
        }
        if let Some(msg) = check_todo(code) {
            findings.push(finding(rel_path, lineno, Rule::NoTodo, msg, &raw_lines));
        }
        if word_at(code, "unsafe").is_some() && !safety_comment_near(&lines, idx) {
            findings.push(finding(
                rel_path,
                lineno,
                Rule::UnsafeWithoutComment,
                "`unsafe` without a `// SAFETY:` comment on or above the line".to_string(),
                &raw_lines,
            ));
        }
    }

    // Apply waivers, tracking which ones actually silence something.
    let mut used = vec![false; waivers.len()];
    for f in &mut findings {
        if !f.rule.waivable() {
            continue;
        }
        if let Some((wi, w)) = waivers
            .iter()
            .enumerate()
            .find(|(_, w)| w.target == Some(f.line) && w.rules.contains(&f.rule))
        {
            f.waived = true;
            f.waiver_reason = Some(w.reason.clone());
            used[wi] = true;
        }
    }

    // Stale-waiver audit: a waiver whose target line no longer exists, or
    // whose named rules fire nothing there, is a dead suppression. It gets
    // its own (unwaivable) finding at the declaration site so the gate
    // forces the comment to be deleted along with the code it excused.
    for (w, used) in waivers.iter().zip(&used) {
        if *used {
            continue;
        }
        let names: Vec<&str> = w.rules.iter().map(|r| r.name()).collect();
        let message = match w.target {
            None => format!(
                "stale waiver: allow({}) has no target (no code line follows)",
                names.join(", ")
            ),
            Some(t) => format!(
                "stale waiver: allow({}) silences nothing at line {t}; \
                 delete the comment or move it to the offending line",
                names.join(", ")
            ),
        };
        findings.push(finding(
            rel_path,
            w.declared.unwrap_or(1),
            Rule::StaleWaiver,
            message,
            &raw_lines,
        ));
    }
    findings.sort_by_key(|f| f.line);
    findings
}

fn finding(
    rel_path: &str,
    lineno: usize,
    rule: Rule,
    message: String,
    raw_lines: &[&str],
) -> Finding {
    Finding {
        file: rel_path.to_string(),
        line: lineno,
        rule,
        message,
        snippet: raw_lines
            .get(lineno - 1)
            .map(|s| s.trim().chars().take(160).collect())
            .unwrap_or_default(),
        waived: false,
        waiver_reason: None,
    }
}

/// A standalone waiver comment targets the next line that has code; a
/// trailing waiver targets its own line.
fn waiver_target(lines: &[LineView], idx: usize) -> Option<usize> {
    if !lines[idx].code.trim().is_empty() {
        return Some(idx + 1);
    }
    lines
        .iter()
        .enumerate()
        .skip(idx + 1)
        .find(|(_, lv)| !lv.code.trim().is_empty())
        .map(|(j, _)| j + 1)
}

/// Per-line flags: is this line inside a `#[cfg(test)]` (or `#[test]`)
/// item's braces? Tracked by brace depth over comment/string-free code.
fn test_regions(lines: &[LineView]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut depth: i64 = 0;
    let mut armed = false;
    // Depths at which a test item body was entered.
    let mut region_stack: Vec<i64> = Vec::new();

    for (idx, lv) in lines.iter().enumerate() {
        let squeezed: String = lv.code.chars().filter(|c| !c.is_whitespace()).collect();
        if squeezed.contains("#[cfg(test)]")
            || squeezed.contains("#[cfg(all(test")
            || squeezed.contains("#[cfg(any(test")
            || squeezed.contains("#[test]")
        {
            armed = true;
        }
        if !region_stack.is_empty() {
            flags[idx] = true;
        }
        for c in lv.code.chars() {
            match c {
                '{' => {
                    if armed {
                        region_stack.push(depth);
                        armed = false;
                        flags[idx] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region_stack.last() == Some(&depth) {
                        region_stack.pop();
                    }
                }
                _ => {}
            }
        }
    }
    flags
}

/// Find `needle` as a whole word (not an identifier fragment).
fn word_at(code: &str, needle: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + needle.len();
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// `.unwrap()` — method-call position only.
fn check_unwrap(code: &str) -> Option<String> {
    let at = find_method_call(code, "unwrap")?;
    let _ = at;
    Some("`.unwrap()` in library code; return a `Result` or use a checked pattern".to_string())
}

/// `.expect(...)` — method-call position only.
fn check_expect(code: &str) -> Option<String> {
    let at = find_method_call(code, "expect")?;
    let _ = at;
    Some("`.expect(..)` in library code; return a `Result` or use a checked pattern".to_string())
}

/// Find `.name` followed by `(` (allowing whitespace and a turbofish-free
/// call), at word boundaries.
fn find_method_call(code: &str, name: &str) -> Option<usize> {
    let pat = format!(".{name}");
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(&pat) {
        let at = start + pos;
        let end = at + pat.len();
        let boundary = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if boundary {
            let rest = code[end..].trim_start();
            if rest.starts_with('(') {
                return Some(at);
            }
        }
        start = end;
    }
    None
}

/// Explicit `panic!` in library code. `assert!`/`debug_assert!` stay
/// allowed: they are invariant checks, not control flow.
fn check_panic(code: &str) -> Option<String> {
    let at = word_at(code, "panic!")?;
    // `core::panic!`-style paths still match; `debug_assert!` does not
    // contain the word `panic!` so no exclusion is needed. But skip
    // `#[panic_handler]`-like attribute lines defensively.
    let _ = at;
    Some(
        "`panic!` in library code; return a `Result` or make the invariant an `assert!`"
            .to_string(),
    )
}

/// Raw `println!` / `eprintln!` in library code. Binaries, tests, and
/// benches are exempt (stdout IS their interface); library code routes
/// human-facing output through `alss_telemetry::progress` and structured
/// data through spans/events, so it stays capturable and filterable.
fn check_println(code: &str) -> Option<String> {
    for m in ["println!", "eprintln!"] {
        if word_at(code, m).is_some() {
            return Some(format!(
                "`{m}` in library code; use `alss_telemetry::progress` (or a span/event) instead"
            ));
        }
    }
    None
}

/// `todo!` / `unimplemented!` anywhere.
fn check_todo(code: &str) -> Option<String> {
    for m in ["todo!", "unimplemented!"] {
        if word_at(code, m).is_some() {
            return Some(format!("`{m}` left in source"));
        }
    }
    None
}

/// A `SAFETY:` comment on the same line or within the three lines above.
fn safety_comment_near(lines: &[LineView], idx: usize) -> bool {
    let lo = idx.saturating_sub(3);
    lines[lo..=idx]
        .iter()
        .any(|lv| lv.comment.contains("SAFETY:"))
}

const NARROW_TARGETS: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"];
const COUNT_HINTS: [&str; 4] = ["count", "total", "cardinal", "freq"];

/// Casts like `count as u32`, `total_count() as i32`: a narrowing `as`
/// whose source expression is named like a count. Name-based by design:
/// without type inference a syntactic analyzer cannot see through
/// arbitrary expressions, but count-carrying values in this repo follow
/// the `*count*` / `*total*` / `*freq*` naming convention, and the rule is
/// deliberately conservative so every hit is actionable.
fn check_truncating_cast(code: &str) -> Option<String> {
    let tokens = tokenize(code);
    for i in 0..tokens.len() {
        if tokens[i] != "as" || i + 1 >= tokens.len() || i == 0 {
            continue;
        }
        let target = tokens[i + 1].as_str();
        if !NARROW_TARGETS.contains(&target) {
            continue;
        }
        // Walk back over a call's closing paren to the callee name.
        let mut j = i - 1;
        if tokens[j] == ")" {
            let mut depth = 1i32;
            while j > 0 && depth > 0 {
                j -= 1;
                match tokens[j].as_str() {
                    ")" => depth += 1,
                    "(" => depth -= 1,
                    _ => {}
                }
            }
            if j == 0 {
                continue;
            }
            j -= 1;
        }
        let src = tokens[j].to_lowercase();
        if COUNT_HINTS.iter().any(|h| src.contains(h)) {
            return Some(format!(
                "`{src} as {target}` can truncate a count-carrying value; \
                 use `try_from` or keep 64-bit width"
            ));
        }
    }
    None
}

/// Split a code line into identifier/number tokens and single-char puncts.
fn tokenize(code: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for c in code.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else {
            if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
            if !c.is_whitespace() {
                tokens.push(c.to_string());
            }
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}
