//! Standalone analyzer entry point.
//!
//! ```text
//! cargo run -p alss-analyzer            # human-readable report
//! cargo run -p alss-analyzer -- --json  # machine-readable report
//! ```
//!
//! Exits non-zero when any unwaivered finding exists.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let json = std::env::args().any(|a| a == "--json");
    let cwd = std::env::current_dir().unwrap_or_else(|_| Path::new(".").to_path_buf());
    let Some(root) = alss_analyzer::find_workspace_root(&cwd) else {
        eprintln!("alss-analyzer: no workspace root (Cargo.toml + crates/) above {cwd:?}");
        return ExitCode::from(2);
    };
    let report = match alss_analyzer::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("alss-analyzer: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", report.to_json());
    } else {
        for f in &report.findings {
            if f.waived {
                let reason = f.waiver_reason.as_deref().unwrap_or("");
                println!(
                    "waived  {}:{} [{}] {} (waiver: {})",
                    f.file, f.line, f.rule, f.message, reason
                );
            } else {
                println!("FAIL    {}:{} [{}] {}", f.file, f.line, f.rule, f.message);
                println!("        {}", f.snippet);
            }
        }
        let bad = report.unwaivered().count();
        let waived = report.findings.len() - bad;
        println!(
            "alss-analyzer: {} files scanned, {} finding(s) ({} waived, {} failing)",
            report.files_scanned,
            report.findings.len(),
            waived,
            bad
        );
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
