//! Adam optimizer with decoupled L2 penalty and exponential learning-rate
//! decay, matching the paper's training setup (§6.1: "Adam optimizer with a
//! decaying learning rate", L2 penalty ∈ [1e-3, 1e-5]).

use crate::mat::Mat;
use crate::param::ParamStore;
use serde::{Deserialize, Serialize};

/// Adam hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Initial learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub eps: f32,
    /// L2 penalty (added to gradients, classic Adam-L2).
    pub weight_decay: f32,
    /// Multiplicative LR decay applied per epoch via [`Adam::decay_lr`].
    pub lr_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 1e-4,
            lr_decay: 0.95,
        }
    }
}

/// Adam state (first/second moments per parameter).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Adam {
    cfg: AdamConfig,
    lr: f32,
    t: u64,
    m: Vec<Mat>,
    v: Vec<Mat>,
}

impl Adam {
    /// Initialize moments matching the store's current parameters.
    pub fn new(cfg: AdamConfig, store: &ParamStore) -> Self {
        let m = store
            .ids()
            .map(|id| {
                let p = store.value(id);
                Mat::zeros(p.rows(), p.cols())
            })
            .collect::<Vec<_>>();
        let v = m.clone();
        Adam {
            cfg,
            lr: cfg.lr,
            t: 0,
            m,
            v,
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Apply one epoch of exponential LR decay.
    pub fn decay_lr(&mut self) {
        self.lr *= self.cfg.lr_decay;
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// One optimization step consuming the store's accumulated gradients.
    /// (Does not zero them; call [`ParamStore::zero_grads`] before the next
    /// backward accumulation.)
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let b1 = self.cfg.beta1;
        let b2 = self.cfg.beta2;
        // Saturating keeps the bias correction total; by i32::MAX steps the
        // correction factor is exactly 1 anyway.
        let t = i32::try_from(self.t).unwrap_or(i32::MAX);
        let bc1 = 1.0 - b1.powi(t);
        let bc2 = 1.0 - b2.powi(t);
        for (idx, id) in store.ids().collect::<Vec<_>>().into_iter().enumerate() {
            // L2 penalty folded into the gradient.
            let wd = self.cfg.weight_decay;
            let grad: Vec<f32> = {
                let g = store.grad(id);
                let w = store.value(id);
                g.data()
                    .iter()
                    .zip(w.data())
                    .map(|(&gi, &wi)| gi + wd * wi)
                    .collect()
            };
            let m = &mut self.m[idx];
            let v = &mut self.v[idx];
            let w = store.value_mut(id);
            for ((wi, (mi, vi)), gi) in w
                .data_mut()
                .iter_mut()
                .zip(m.data_mut().iter_mut().zip(v.data_mut().iter_mut()))
                .zip(&grad)
            {
                *mi = b1 * *mi + (1.0 - b1) * gi;
                *vi = b2 * *vi + (1.0 - b2) * gi * gi;
                let mh = *mi / bc1;
                let vh = *vi / bc2;
                *wi -= self.lr * mh / (vh.sqrt() + self.cfg.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimize (w - 3)^2; Adam should converge near 3.
    #[test]
    fn converges_on_quadratic() {
        let mut store = ParamStore::new();
        let w = store.add("w", Mat::from_vec(1, 1, vec![-2.0]));
        let mut adam = Adam::new(
            AdamConfig {
                lr: 0.1,
                weight_decay: 0.0,
                ..Default::default()
            },
            &store,
        );
        for _ in 0..300 {
            store.zero_grads();
            let mut t = Tape::new(true);
            let wv = t.param(&store, w);
            let c = t.input(Mat::from_vec(1, 1, vec![3.0]));
            let d = t.sub(wv, c);
            let d2 = t.mul(d, d);
            let l = t.sum_all(d2);
            t.backward(l, &mut store);
            adam.step(&mut store);
        }
        let final_w = store.value(w).scalar();
        assert!((final_w - 3.0).abs() < 0.05, "w = {final_w}");
        assert_eq!(adam.steps(), 300);
    }

    #[test]
    fn lr_decay_shrinks_rate() {
        let store = ParamStore::new();
        let mut adam = Adam::new(AdamConfig::default(), &store);
        let lr0 = adam.lr();
        adam.decay_lr();
        assert!(adam.lr() < lr0);
        assert!((adam.lr() - lr0 * 0.95).abs() < 1e-9);
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let mut store = ParamStore::new();
        let w = store.add("w", Mat::from_vec(1, 1, vec![5.0]));
        let mut adam = Adam::new(
            AdamConfig {
                lr: 0.05,
                weight_decay: 0.5,
                ..Default::default()
            },
            &store,
        );
        for _ in 0..100 {
            store.zero_grads(); // zero loss gradient; only decay acts
            adam.step(&mut store);
        }
        assert!(store.value(w).scalar().abs() < 4.0);
    }
}
