//! Define-by-run reverse-mode automatic differentiation on [`Mat`].
//!
//! A [`Tape`] is built per forward pass; every operation eagerly computes
//! its value and records an [`Op`] node. [`Tape::backward`] walks the tape
//! in reverse, accumulating gradients; gradients of [`Tape::param`] leaves
//! are routed into the [`ParamStore`].
//!
//! The op set is exactly what the LSS architecture needs (GIN message
//! passing, structured self-attention, MLPs, the Eq. 3/5 losses) plus a
//! finite-difference grad-checker in [`crate::gradcheck`] that every op is
//! tested against.

use crate::mat::Mat;
use crate::param::{GradSink, ParamId, ParamStore};
use std::sync::Arc;

/// Handle to a tape node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

/// Fixed (non-differentiable) adjacency of a substructure for GIN
/// aggregation: `adj[v]` lists the neighbors of local node `v`.
///
/// Shared via `Arc` (not `Rc`) so encoded queries — and the tapes built
/// over them — are `Send + Sync` and can be fanned out across worker
/// threads by the data-parallel trainer.
pub type Adjacency = Arc<Vec<Vec<u32>>>;

enum Op {
    Leaf,
    Param(ParamId),
    MatMul(Var, Var),
    Add(Var, Var),
    /// `a (n×c) + row (1×c)` broadcast over rows.
    AddRow(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    Relu(Var),
    Tanh(Var),
    SoftmaxRows(Var),
    LogSoftmaxRows(Var),
    /// Mask already includes the inverted-dropout `1/(1-p)` scaling.
    Dropout(Var, Vec<f32>),
    SumAll(Var),
    MeanAll(Var),
    SumRows(Var),
    ConcatRows(Vec<Var>),
    ConcatCols(Var, Var),
    Transpose(Var),
    SliceCols(Var, usize, usize),
    /// `(A + (1+eps) I) X` for a fixed symmetric adjacency (GIN aggregate).
    GraphAgg(Var, Adjacency, f32),
    Flatten(Var),
}

struct Node {
    value: Mat,
    op: Op,
}

/// Human-readable op name for the finiteness guards' messages.
fn op_name(op: &Op) -> &'static str {
    match op {
        Op::Leaf => "input",
        Op::Param(_) => "param",
        Op::MatMul(..) => "matmul",
        Op::Add(..) => "add",
        Op::AddRow(..) => "add_row",
        Op::Sub(..) => "sub",
        Op::Mul(..) => "mul",
        Op::Scale(..) => "scale",
        Op::Relu(_) => "relu",
        Op::Tanh(_) => "tanh",
        Op::SoftmaxRows(_) => "softmax_rows",
        Op::LogSoftmaxRows(_) => "log_softmax_rows",
        Op::Dropout(..) => "dropout",
        Op::SumAll(_) => "sum_all",
        Op::MeanAll(_) => "mean_all",
        Op::SumRows(_) => "sum_rows",
        Op::ConcatRows(_) => "concat_rows",
        Op::ConcatCols(..) => "concat_cols",
        Op::Transpose(_) => "transpose",
        Op::SliceCols(..) => "slice_cols",
        Op::GraphAgg(..) => "graph_agg",
        Op::Flatten(_) => "flatten",
    }
}

/// A gradient tape. Create one per forward pass.
pub struct Tape {
    nodes: Vec<Node>,
    grads: Vec<Option<Mat>>,
    train: bool,
}

impl Tape {
    /// New tape. `train` controls stochastic ops (dropout).
    pub fn new(train: bool) -> Self {
        Tape {
            nodes: Vec::new(),
            grads: Vec::new(),
            train,
        }
    }

    /// Whether the tape is in training mode.
    pub fn is_train(&self) -> bool {
        self.train
    }

    fn push(&mut self, value: Mat, op: Op) -> Var {
        // Debug guard: a NaN/Inf born in one op propagates silently through
        // the rest of the pass and surfaces as a garbage count estimate
        // much later; catch it at the op that produced it.
        debug_assert!(
            value.all_finite(),
            "non-finite value in forward {}: {:?}",
            op_name(&op),
            value.first_non_finite()
        );
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Mat {
        &self.nodes[v.0].value
    }

    /// Gradient of a node after [`Tape::backward`] (zeros if unreached).
    pub fn grad(&self, v: Var) -> Mat {
        match &self.grads.get(v.0) {
            Some(Some(g)) => g.clone(),
            _ => {
                let m = &self.nodes[v.0].value;
                Mat::zeros(m.rows(), m.cols())
            }
        }
    }

    /// Insert a constant (non-learnable) input.
    pub fn input(&mut self, value: Mat) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Insert a learnable parameter (copies the current value from the
    /// store; the backward pass routes the gradient back).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.push(store.value(id).clone(), Op::Param(id))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(v, Op::MatMul(a, b))
    }

    /// Elementwise sum (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (x, y) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(x.shape(), y.shape(), "add shape mismatch");
        let mut v = x.clone();
        v.add_assign(y);
        self.push(v, Op::Add(a, b))
    }

    /// Row-broadcast sum: `a (n×c) + row (1×c)`.
    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        let (x, r) = (&self.nodes[a.0].value, &self.nodes[row.0].value);
        assert_eq!(r.rows(), 1, "add_row needs a row vector");
        assert_eq!(x.cols(), r.cols(), "add_row col mismatch");
        let mut v = x.clone();
        for i in 0..v.rows() {
            for (o, &b) in v.row_mut(i).iter_mut().zip(r.row(0)) {
                *o += b;
            }
        }
        self.push(v, Op::AddRow(a, row))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (x, y) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(x.shape(), y.shape(), "sub shape mismatch");
        let mut v = x.clone();
        v.add_scaled_assign(y, -1.0);
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (x, y) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(x.shape(), y.shape(), "mul shape mismatch");
        let v = Mat::from_vec(
            x.rows(),
            x.cols(),
            x.data()
                .iter()
                .zip(y.data())
                .map(|(&p, &q)| p * q)
                .collect(),
        );
        self.push(v, Op::Mul(a, b))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.nodes[a.0].value.map(|x| x * s);
        self.push(v, Op::Scale(a, s))
    }

    /// ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let x = &self.nodes[a.0].value;
        let mut v = x.clone();
        for i in 0..v.rows() {
            let row = v.row_mut(i);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for e in row.iter_mut() {
                *e = (*e - max).exp();
                sum += *e;
            }
            for e in row.iter_mut() {
                *e /= sum;
            }
        }
        self.push(v, Op::SoftmaxRows(a))
    }

    /// Row-wise log-softmax (numerically stable; for cross-entropy).
    pub fn log_softmax_rows(&mut self, a: Var) -> Var {
        let x = &self.nodes[a.0].value;
        let mut v = x.clone();
        for i in 0..v.rows() {
            let row = v.row_mut(i);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = max + row.iter().map(|&e| (e - max).exp()).sum::<f32>().ln();
            for e in row.iter_mut() {
                *e -= lse;
            }
        }
        self.push(v, Op::LogSoftmaxRows(a))
    }

    /// Inverted dropout with keep-probability `1 - p`. Identity when the
    /// tape is in eval mode or `p == 0`.
    pub fn dropout<R: rand::Rng>(&mut self, a: Var, p: f32, rng: &mut R) -> Var {
        if !self.train || p <= 0.0 {
            return a;
        }
        assert!(p < 1.0, "dropout probability must be < 1");
        let x = &self.nodes[a.0].value;
        let scale = 1.0 / (1.0 - p);
        let mask: Vec<f32> = (0..x.len())
            .map(|_| if rng.gen::<f32>() < p { 0.0 } else { scale })
            .collect();
        let v = Mat::from_vec(
            x.rows(),
            x.cols(),
            x.data().iter().zip(&mask).map(|(&e, &m)| e * m).collect(),
        );
        self.push(v, Op::Dropout(a, mask))
    }

    /// Sum of all elements → `1 × 1`.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Mat::from_vec(1, 1, vec![self.nodes[a.0].value.sum()]);
        self.push(v, Op::SumAll(a))
    }

    /// Mean of all elements → `1 × 1`.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let x = &self.nodes[a.0].value;
        let v = Mat::from_vec(1, 1, vec![x.sum() / x.len() as f32]);
        self.push(v, Op::MeanAll(a))
    }

    /// Column-wise sum over rows: `(n×c) → (1×c)` (the GIN sum-Readout).
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let x = &self.nodes[a.0].value;
        let mut v = Mat::zeros(1, x.cols());
        for i in 0..x.rows() {
            for (o, &e) in v.row_mut(0).iter_mut().zip(x.row(i)) {
                *o += e;
            }
        }
        self.push(v, Op::SumRows(a))
    }

    /// Vertically stack matrices with equal column counts.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows of nothing");
        let mats: Vec<&Mat> = parts.iter().map(|&p| &self.nodes[p.0].value).collect();
        let v = Mat::stack_rows(&mats);
        self.push(v, Op::ConcatRows(parts.to_vec()))
    }

    /// Horizontally concatenate `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.concat_cols(&self.nodes[b.0].value);
        self.push(v, Op::ConcatCols(a, b))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.transpose();
        self.push(v, Op::Transpose(a))
    }

    /// Column slice `a[:, start..end]`.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let x = &self.nodes[a.0].value;
        assert!(start <= end && end <= x.cols(), "slice out of range");
        let mut v = Mat::zeros(x.rows(), end - start);
        for i in 0..x.rows() {
            v.row_mut(i).copy_from_slice(&x.row(i)[start..end]);
        }
        self.push(v, Op::SliceCols(a, start, end))
    }

    /// GIN aggregation for a fixed symmetric adjacency:
    /// `out[v] = (1+eps) · x[v] + Σ_{u ∈ adj[v]} x[u]`.
    pub fn graph_agg(&mut self, x: Var, adj: Adjacency, eps: f32) -> Var {
        let xv = &self.nodes[x.0].value;
        assert_eq!(xv.rows(), adj.len(), "adjacency/feature row mismatch");
        let mut v = xv.map(|e| e * (1.0 + eps));
        for (node, nbrs) in adj.iter().enumerate() {
            for &u in nbrs {
                for c in 0..xv.cols() {
                    let add = xv.get(u as usize, c);
                    v.set(node, c, v.get(node, c) + add);
                }
            }
        }
        self.push(v, Op::GraphAgg(x, adj, eps))
    }

    /// Reshape `(r×c)` into a `(1, r·c)` row vector.
    pub fn flatten(&mut self, a: Var) -> Var {
        let x = &self.nodes[a.0].value;
        let v = Mat::from_vec(1, x.len(), x.data().to_vec());
        self.push(v, Op::Flatten(a))
    }

    fn add_grad(&mut self, v: Var, g: Mat) {
        debug_assert!(
            g.all_finite(),
            "non-finite gradient flowing into {} node {}: {:?}",
            op_name(&self.nodes[v.0].op),
            v.0,
            g.first_non_finite()
        );
        match &mut self.grads[v.0] {
            Some(acc) => acc.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Reverse pass from a scalar `loss` node; parameter gradients are
    /// accumulated into `sink` (a [`ParamStore`] directly, or a detached
    /// [`crate::param::GradShard`] when backward passes run on worker
    /// threads), node gradients are retained for [`Tape::grad`].
    pub fn backward<S: GradSink + ?Sized>(&mut self, loss: Var, sink: &mut S) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward from non-scalar"
        );
        self.grads = (0..self.nodes.len()).map(|_| None).collect();
        self.grads[loss.0] = Some(Mat::from_vec(1, 1, vec![1.0]));

        for i in (0..=loss.0).rev() {
            let Some(g) = self.grads[i].clone() else {
                continue;
            };
            // Split borrows: read values immutably, write grads via helper.
            match &self.nodes[i].op {
                Op::Leaf => {}
                Op::Param(id) => {
                    let id = *id;
                    debug_assert!(
                        g.all_finite(),
                        "non-finite parameter gradient for {id:?}: {:?}",
                        g.first_non_finite()
                    );
                    sink.accumulate_grad(id, &g);
                }
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    let av = self.nodes[a.0].value.clone();
                    let bv = self.nodes[b.0].value.clone();
                    let da = g.matmul(&bv.transpose());
                    let db = av.transpose().matmul(&g);
                    self.add_grad(a, da);
                    self.add_grad(b, db);
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    self.add_grad(a, g.clone());
                    self.add_grad(b, g);
                }
                Op::AddRow(a, row) => {
                    let (a, row) = (*a, *row);
                    let mut dr = Mat::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for (o, &e) in dr.row_mut(0).iter_mut().zip(g.row(r)) {
                            *o += e;
                        }
                    }
                    self.add_grad(a, g);
                    self.add_grad(row, dr);
                }
                Op::Sub(a, b) => {
                    let (a, b) = (*a, *b);
                    self.add_grad(a, g.clone());
                    self.add_grad(b, g.map(|x| -x));
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    let av = self.nodes[a.0].value.clone();
                    let bv = self.nodes[b.0].value.clone();
                    let mut da = g.clone();
                    for (d, &x) in da.data_mut().iter_mut().zip(bv.data()) {
                        *d *= x;
                    }
                    let mut db = g;
                    for (d, &x) in db.data_mut().iter_mut().zip(av.data()) {
                        *d *= x;
                    }
                    self.add_grad(a, da);
                    self.add_grad(b, db);
                }
                Op::Scale(a, s) => {
                    let (a, s) = (*a, *s);
                    self.add_grad(a, g.map(|x| x * s));
                }
                Op::Relu(a) => {
                    let a = *a;
                    let xv = self.nodes[a.0].value.clone();
                    let mut dx = g;
                    for (d, &x) in dx.data_mut().iter_mut().zip(xv.data()) {
                        if x <= 0.0 {
                            *d = 0.0;
                        }
                    }
                    self.add_grad(a, dx);
                }
                Op::Tanh(a) => {
                    let a = *a;
                    let yv = self.nodes[i].value.clone();
                    let mut dx = g;
                    for (d, &y) in dx.data_mut().iter_mut().zip(yv.data()) {
                        *d *= 1.0 - y * y;
                    }
                    self.add_grad(a, dx);
                }
                Op::SoftmaxRows(a) => {
                    let a = *a;
                    let y = self.nodes[i].value.clone();
                    let mut dx = Mat::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let dot: f32 = g
                            .row(r)
                            .iter()
                            .zip(y.row(r))
                            .map(|(&dg, &yy)| dg * yy)
                            .sum();
                        for c in 0..y.cols() {
                            dx.set(r, c, y.get(r, c) * (g.get(r, c) - dot));
                        }
                    }
                    self.add_grad(a, dx);
                }
                Op::LogSoftmaxRows(a) => {
                    let a = *a;
                    let y = self.nodes[i].value.clone(); // log-probs
                    let mut dx = Mat::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let gsum: f32 = g.row(r).iter().sum();
                        for c in 0..y.cols() {
                            dx.set(r, c, g.get(r, c) - y.get(r, c).exp() * gsum);
                        }
                    }
                    self.add_grad(a, dx);
                }
                Op::Dropout(a, mask) => {
                    let a = *a;
                    let mask = mask.clone();
                    let mut dx = g;
                    for (d, &m) in dx.data_mut().iter_mut().zip(&mask) {
                        *d *= m;
                    }
                    self.add_grad(a, dx);
                }
                Op::SumAll(a) => {
                    let a = *a;
                    let x = &self.nodes[a.0].value;
                    let dx = Mat::full(x.rows(), x.cols(), g.scalar());
                    self.add_grad(a, dx);
                }
                Op::MeanAll(a) => {
                    let a = *a;
                    let x = &self.nodes[a.0].value;
                    let dx = Mat::full(x.rows(), x.cols(), g.scalar() / x.len() as f32);
                    self.add_grad(a, dx);
                }
                Op::SumRows(a) => {
                    let a = *a;
                    let x = &self.nodes[a.0].value;
                    let (rows, cols) = x.shape();
                    let mut dx = Mat::zeros(rows, cols);
                    for r in 0..rows {
                        dx.row_mut(r).copy_from_slice(g.row(0));
                    }
                    self.add_grad(a, dx);
                }
                Op::ConcatRows(parts) => {
                    let parts = parts.clone();
                    let mut r0 = 0usize;
                    for p in parts {
                        let pr = self.nodes[p.0].value.rows();
                        let cols = g.cols();
                        let mut dp = Mat::zeros(pr, cols);
                        for r in 0..pr {
                            dp.row_mut(r).copy_from_slice(g.row(r0 + r));
                        }
                        r0 += pr;
                        self.add_grad(p, dp);
                    }
                }
                Op::ConcatCols(a, b) => {
                    let (a, b) = (*a, *b);
                    let ac = self.nodes[a.0].value.cols();
                    let bc = self.nodes[b.0].value.cols();
                    let rows = g.rows();
                    let mut da = Mat::zeros(rows, ac);
                    let mut db = Mat::zeros(rows, bc);
                    for r in 0..rows {
                        da.row_mut(r).copy_from_slice(&g.row(r)[..ac]);
                        db.row_mut(r).copy_from_slice(&g.row(r)[ac..]);
                    }
                    self.add_grad(a, da);
                    self.add_grad(b, db);
                }
                Op::Transpose(a) => {
                    let a = *a;
                    self.add_grad(a, g.transpose());
                }
                Op::SliceCols(a, s, _e) => {
                    let (a, s) = (*a, *s);
                    let x = &self.nodes[a.0].value;
                    let mut dx = Mat::zeros(x.rows(), x.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            dx.set(r, s + c, g.get(r, c));
                        }
                    }
                    self.add_grad(a, dx);
                }
                Op::GraphAgg(x, adj, eps) => {
                    let (x, adj, eps) = (*x, Arc::clone(adj), *eps);
                    // (A + (1+eps) I) is symmetric → backward is the same op.
                    let mut dx = g.map(|e| e * (1.0 + eps));
                    for (node, nbrs) in adj.iter().enumerate() {
                        for &u in nbrs {
                            for c in 0..g.cols() {
                                let add = g.get(u as usize, c);
                                dx.set(node, c, dx.get(node, c) + add);
                            }
                        }
                    }
                    self.add_grad(x, dx);
                }
                Op::Flatten(a) => {
                    let a = *a;
                    let x = &self.nodes[a.0].value;
                    let dx = Mat::from_vec(x.rows(), x.cols(), g.data().to_vec());
                    self.add_grad(a, dx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn scalar_chain_gradient() {
        // loss = mean((2x)^2) with x = [1, 2] → d/dx = 4x ⇒ [4, 8] / 2
        let mut t = Tape::new(false);
        let x = t.input(Mat::row_vector(&[1.0, 2.0]));
        let y = t.scale(x, 2.0);
        let y2 = t.mul(y, y);
        let loss = t.mean_all(y2);
        let mut store = ParamStore::new();
        t.backward(loss, &mut store);
        let g = t.grad(x);
        assert!((g.get(0, 0) - 4.0).abs() < 1e-5);
        assert!((g.get(0, 1) - 8.0).abs() < 1e-5);
    }

    #[test]
    fn param_grads_routed_to_store() {
        let mut store = ParamStore::new();
        let w = store.add("w", Mat::row_vector(&[3.0]));
        let mut t = Tape::new(true);
        let wv = t.param(&store, w);
        let sq = t.mul(wv, wv);
        let loss = t.sum_all(sq);
        t.backward(loss, &mut store);
        // d(w^2)/dw = 2w = 6
        assert!((store.grad(w).get(0, 0) - 6.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut t = Tape::new(false);
        let x = t.input(Mat::from_vec(2, 3, vec![1., 2., 3., 10., 10., 10.]));
        let s = t.softmax_rows(x);
        for r in 0..2 {
            let sum: f32 = t.value(s).row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // second row uniform
        assert!((t.value(s).get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut t = Tape::new(false);
        let x = t.input(Mat::row_vector(&[1.0, 2.0, 3.0]));
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let d = t.dropout(x, 0.5, &mut rng);
        assert_eq!(d, x);
    }

    #[test]
    fn graph_agg_triangle() {
        // path 0-1-2, eps=0: out[1] = x1 + x0 + x2
        let adj: Adjacency = Arc::new(vec![vec![1], vec![0, 2], vec![1]]);
        let mut t = Tape::new(false);
        let x = t.input(Mat::from_vec(3, 1, vec![1.0, 10.0, 100.0]));
        let y = t.graph_agg(x, adj, 0.0);
        assert_eq!(t.value(y).data(), &[11.0, 111.0, 110.0]);
    }

    #[test]
    fn dropout_backward_applies_the_same_mask() {
        // loss = sum(dropout(x)); grad must equal the forward mask exactly
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let mut t = Tape::new(true);
        let x = t.input(Mat::full(1, 64, 1.0));
        let d = t.dropout(x, 0.5, &mut rng);
        let forward = t.value(d).data().to_vec();
        let loss = t.sum_all(d);
        let mut store = ParamStore::new();
        t.backward(loss, &mut store);
        let g = t.grad(x);
        for (gv, fv) in g.data().iter().zip(&forward) {
            // mask is 0 or 2.0 (inverted dropout at p = 0.5); forward value
            // equals mask here since inputs are 1.0
            assert_eq!(gv, fv);
        }
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "finiteness guards are debug-only")]
    #[should_panic(expected = "non-finite value in forward input")]
    fn nan_input_is_caught_at_entry() {
        let mut t = Tape::new(false);
        t.input(Mat::row_vector(&[1.0, f32::NAN]));
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "finiteness guards are debug-only")]
    #[should_panic(expected = "non-finite value in forward")]
    fn overflow_is_caught_at_the_op_that_produced_it() {
        let mut t = Tape::new(false);
        let x = t.input(Mat::row_vector(&[f32::MAX]));
        let y = t.scale(x, 2.0); // f32::MAX * 2 → +Inf
        let _ = t.mul(y, y);
    }

    #[test]
    fn finite_pass_trips_no_guard() {
        let mut t = Tape::new(false);
        let x = t.input(Mat::row_vector(&[1e30, -1e30]));
        let y = t.tanh(x);
        let loss = t.mean_all(y);
        let mut store = ParamStore::new();
        t.backward(loss, &mut store);
        assert!(t.grad(x).all_finite());
    }

    #[test]
    fn tape_and_inputs_are_send() {
        // The data-parallel trainer moves tapes and shares adjacencies
        // across worker threads; this is a compile-time audit that the
        // autodiff types stay thread-safe.
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Tape>();
        assert_send::<Adjacency>();
        assert_sync::<Adjacency>();
        assert_send::<Mat>();
        assert_sync::<Mat>();
        assert_sync::<ParamStore>();
        assert_send::<crate::param::GradShard>();
    }

    #[test]
    fn flatten_and_slice() {
        let mut t = Tape::new(false);
        let x = t.input(Mat::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let f = t.flatten(x);
        assert_eq!(t.value(f).shape(), (1, 4));
        let s = t.slice_cols(x, 1, 2);
        assert_eq!(t.value(s).data(), &[2., 4.]);
    }
}
