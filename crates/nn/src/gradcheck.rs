//! Finite-difference gradient checking.
//!
//! Every autograd op in [`crate::tape`] is validated against central
//! differences; this module provides the harness, used heavily by this
//! crate's tests and available to downstream crates (e.g. `alss-core`
//! grad-checks the full LSS model on tiny inputs).

use crate::param::ParamStore;
use crate::tape::{Tape, Var};

/// Result of a gradient check: maximum relative error observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// Largest relative discrepancy between analytic and numeric gradients.
    pub max_rel_err: f32,
    /// Number of scalar weights checked.
    pub checked: usize,
}

/// Compare analytic parameter gradients against central finite differences.
///
/// `build` must construct a *deterministic* scalar loss on the provided
/// tape (use eval-mode behavior: the tape passed in is eval-mode so dropout
/// is inert). Returns the worst relative error
/// `|g_a − g_n| / max(1, |g_a|, |g_n|)`.
pub fn check_gradients(
    store: &mut ParamStore,
    eps: f32,
    build: impl Fn(&mut Tape, &ParamStore) -> Var,
) -> GradCheckReport {
    // Analytic gradients.
    store.zero_grads();
    let mut tape = Tape::new(false);
    let loss = build(&mut tape, store);
    tape.backward(loss, store);
    let analytic: Vec<Vec<f32>> = store
        .ids()
        .map(|id| store.grad(id).data().to_vec())
        .collect();

    let mut max_rel_err = 0.0f32;
    let mut checked = 0usize;
    let ids: Vec<_> = store.ids().collect();
    for (pi, id) in ids.iter().enumerate() {
        let n = store.value(*id).len();
        #[allow(clippy::needless_range_loop)] // e indexes two containers
        for e in 0..n {
            let orig = store.value(*id).data()[e];
            store.value_mut(*id).data_mut()[e] = orig + eps;
            let mut tp = Tape::new(false);
            let lp = build(&mut tp, store);
            let fp = tp.value(lp).scalar();

            store.value_mut(*id).data_mut()[e] = orig - eps;
            let mut tm = Tape::new(false);
            let lm = build(&mut tm, store);
            let fm = tm.value(lm).scalar();

            store.value_mut(*id).data_mut()[e] = orig;

            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic[pi][e];
            let rel = (a - numeric).abs() / a.abs().max(numeric.abs()).max(1.0);
            if rel > max_rel_err {
                max_rel_err = rel;
            }
            checked += 1;
        }
    }
    GradCheckReport {
        max_rel_err,
        checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::SelfAttention;
    use crate::gin::{adjacency_from_edges, GinEncoder};
    use crate::linear::{Activation, Mlp};
    use crate::loss::{cross_entropy_loss, mse_log_loss, multi_task_loss};
    use crate::mat::Mat;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const TOL: f32 = 2e-2; // f32 finite differences are noisy

    #[test]
    fn gradcheck_mlp_with_mse() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[3, 4, 1], Activation::Tanh, 0.0, &mut rng);
        let x = Mat::from_vec(2, 3, vec![0.5, -0.2, 0.1, 0.9, 0.4, -0.7]);
        let report = check_gradients(&mut store, 1e-2, |t, s| {
            let mut r = SmallRng::seed_from_u64(0);
            let xv = t.input(x.clone());
            let y = mlp.forward(t, s, xv, &mut r);
            mse_log_loss(t, y, &[1.0, 2.0])
        });
        assert!(report.max_rel_err < TOL, "{report:?}");
        assert!(report.checked > 10);
    }

    #[test]
    fn gradcheck_attention() {
        let mut rng = SmallRng::seed_from_u64(43);
        let mut store = ParamStore::new();
        let att = SelfAttention::new(&mut store, "a", 3, 4, 2, &mut rng);
        let h = Mat::from_vec(3, 3, vec![0.2, 0.5, -0.3, 0.7, -0.1, 0.4, 0.0, 0.3, 0.9]);
        let report = check_gradients(&mut store, 1e-2, |t, s| {
            let hv = t.input(h.clone());
            let (eq, _) = att.forward(t, s, hv);
            let sq = t.mul(eq, eq);
            t.mean_all(sq)
        });
        assert!(report.max_rel_err < TOL, "{report:?}");
    }

    #[test]
    fn gradcheck_gin_encoder() {
        let mut rng = SmallRng::seed_from_u64(44);
        let mut store = ParamStore::new();
        // tanh activation: ReLU kinks make central differences unreliable
        let enc = GinEncoder::with_activation(
            &mut store,
            "g",
            2,
            3,
            2,
            0,
            0.0,
            Activation::Tanh,
            &mut rng,
        );
        let adj = adjacency_from_edges(3, &[(0, 1), (1, 2)]);
        let x = Mat::from_vec(3, 2, vec![0.4, 0.1, -0.5, 0.8, 0.2, -0.2]);
        let report = check_gradients(&mut store, 1e-2, |t, s| {
            let mut r = SmallRng::seed_from_u64(0);
            let xv = t.input(x.clone());
            let h = enc.encode(t, s, xv, &adj, None, &mut r);
            let sq = t.mul(h, h);
            t.mean_all(sq)
        });
        assert!(report.max_rel_err < TOL, "{report:?}");
    }

    #[test]
    fn gradcheck_cross_entropy_and_multitask() {
        let mut rng = SmallRng::seed_from_u64(45);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[2, 5, 4], Activation::Relu, 0.0, &mut rng);
        let x = Mat::from_vec(2, 2, vec![0.3, -0.6, 0.8, 0.2]);
        let report = check_gradients(&mut store, 1e-2, |t, s| {
            let mut r = SmallRng::seed_from_u64(0);
            let xv = t.input(x.clone());
            let out = mlp.forward(t, s, xv, &mut r);
            let reg = t.slice_cols(out, 0, 1);
            let cla = t.slice_cols(out, 1, 4);
            let lr = mse_log_loss(t, reg, &[0.5, 1.5]);
            let lc = cross_entropy_loss(t, cla, &[0, 2]);
            multi_task_loss(t, lr, lc, 1.0 / 3.0)
        });
        assert!(report.max_rel_err < TOL, "{report:?}");
    }
}
