//! Linear layers and multi-layer perceptrons.

use crate::init::xavier_uniform;
use crate::mat::Mat;
use crate::param::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Activation applied between MLP layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity.
    None,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Apply on a tape node.
    pub fn apply(self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Activation::None => x,
            Activation::Relu => tape.relu(x),
            Activation::Tanh => tape.tanh(x),
        }
    }
}

/// A dense layer `y = x W + b` (bias optional — the paper's attention MLP
/// is bias-free).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Create with Xavier-initialized weights.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        rng: &mut R,
    ) -> Self {
        let w = store.add(format!("{name}.w"), xavier_uniform(in_dim, out_dim, rng));
        let b = bias.then(|| store.add(format!("{name}.b"), Mat::zeros(1, out_dim)));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Forward: `x (n × in) → (n × out)`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        debug_assert_eq!(tape.value(x).cols(), self.in_dim, "linear input dim");
        let w = tape.param(store, self.w);
        let xw = tape.matmul(x, w);
        match self.b {
            Some(b) => {
                let bv = tape.param(store, b);
                tape.add_row(xw, bv)
            }
            None => xw,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The weight parameter id (tests/inspection).
    pub fn weight(&self) -> ParamId {
        self.w
    }
}

/// A multi-layer perceptron with a fixed hidden activation, optional
/// dropout after each hidden layer, and a linear output layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
    dropout: f32,
}

impl Mlp {
    /// `dims = [in, h1, ..., out]`; requires at least one layer.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        dims: &[usize],
        activation: Activation,
        dropout: f32,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "MLP needs at least in/out dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{name}.l{i}"), w[0], w[1], true, rng))
            .collect();
        Mlp {
            layers,
            activation,
            dropout,
        }
    }

    /// Forward pass; dropout is active only on training tapes.
    pub fn forward<R: Rng>(&self, tape: &mut Tape, store: &ParamStore, x: Var, rng: &mut R) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, store, h);
            if i < last {
                h = self.activation.apply(tape, h);
                h = tape.dropout(h, self.dropout, rng);
            }
        }
        h
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        // Constructors reject zero-layer MLPs; 0 keeps this total.
        self.layers.last().map_or(0, |l| l.out_dim())
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        // Constructors reject zero-layer MLPs; 0 keeps this total.
        self.layers.first().map_or(0, |l| l.in_dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let l = Linear::new(&mut store, "l", 3, 5, true, &mut rng);
        let mut t = Tape::new(false);
        let x = t.input(Mat::zeros(4, 3));
        let y = l.forward(&mut t, &store, x);
        assert_eq!(t.value(y).shape(), (4, 5));
    }

    #[test]
    fn bias_free_layer_registers_one_param() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let _ = Linear::new(&mut store, "nb", 2, 2, false, &mut rng);
        assert_eq!(store.num_params(), 1);
    }

    #[test]
    fn mlp_learns_identity_direction() {
        // single gradient step reduces loss on y = x task
        let mut rng = SmallRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[2, 8, 1], Activation::Relu, 0.0, &mut rng);
        let data = Mat::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let target = Mat::from_vec(4, 1, vec![0., 1., 1., 2.]);

        let loss_at = |store: &ParamStore, rng: &mut SmallRng| {
            let mut t = Tape::new(false);
            let x = t.input(data.clone());
            let y = mlp.forward(&mut t, store, x, rng);
            let tv = t.input(target.clone());
            let d = t.sub(y, tv);
            let d2 = t.mul(d, d);
            let l = t.mean_all(d2);
            t.value(l).scalar()
        };

        let before = loss_at(&store, &mut rng);
        // one manual SGD step
        let mut t = Tape::new(true);
        let x = t.input(data.clone());
        let y = mlp.forward(&mut t, &store, x, &mut rng);
        let tv = t.input(target.clone());
        let d = t.sub(y, tv);
        let d2 = t.mul(d, d);
        let l = t.mean_all(d2);
        store.zero_grads();
        t.backward(l, &mut store);
        for id in store.ids().collect::<Vec<_>>() {
            let g = store.grad(id).clone();
            store.value_mut(id).add_scaled_assign(&g, -0.1);
        }
        let after = loss_at(&store, &mut rng);
        assert!(after < before, "loss should decrease: {before} -> {after}");
    }
}
