//! Graph Isomorphism Network (GIN) layers — the `σ(·)` substructure
//! encoder of LSS (§4.2).
//!
//! A GIN layer computes `h_v' = MLP((1+ε) h_v + Σ_{u∈N(v)} h_u)` (Xu et
//! al., ICLR'19). The paper selects GIN over GCN/GAT/GraphSAGE because its
//! injective aggregate/combine/Readout make it as powerful as the WL test —
//! isomorphic substructures get identical representations, matching the
//! inductive bias of counting. We implement GIN-0 (ε fixed at 0, the
//! common variant) with a per-layer 2-layer MLP and ReLU.
//!
//! Edge labels (Eq. 4) are supported by concatenating, per node, the sum of
//! incident initial edge features to the aggregated neighbor sum — exact for
//! sum aggregation since `Σ_u [h_u ‖ e_uv] = [Σ_u h_u ‖ Σ_u e_uv]`.

use crate::linear::{Activation, Mlp};
use crate::mat::Mat;
use crate::param::ParamStore;
use crate::tape::{Adjacency, Tape, Var};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Neighborhood aggregation variant (the GNN ablation of DESIGN.md):
/// injective **sum** (GIN, as powerful as the WL test — the paper's
/// choice) or **mean** (GCN/GraphSAGE-style, not injective: it cannot
/// distinguish neighborhoods that differ only in multiplicity).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Aggregation {
    /// `(1+ε)h_v + Σ_u h_u` — injective, WL-powerful (GIN).
    #[default]
    Sum,
    /// `((1+ε)h_v + Σ_u h_u) / (deg(v)+1)` — mean aggregation.
    Mean,
}

/// One GIN layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GinLayer {
    mlp: Mlp,
    eps: f32,
    edge_dim: usize,
    #[serde(default)]
    aggregation: Aggregation,
}

impl GinLayer {
    /// A layer mapping `in_dim` (+ `edge_dim` if edge-labeled) features to
    /// `out_dim`, with one hidden layer of `out_dim` units.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        edge_dim: usize,
        dropout: f32,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        let mlp = Mlp::new(
            store,
            name,
            &[in_dim + edge_dim, out_dim, out_dim],
            activation,
            dropout,
            rng,
        );
        GinLayer {
            mlp,
            eps: 0.0,
            edge_dim,
            aggregation: Aggregation::Sum,
        }
    }

    /// Switch this layer to mean aggregation (GNN ablation).
    pub fn with_aggregation(mut self, aggregation: Aggregation) -> Self {
        self.aggregation = aggregation;
        self
    }

    /// Forward for one substructure.
    ///
    /// * `h` — `n × in_dim` node features;
    /// * `adj` — substructure adjacency;
    /// * `edge_sum` — `n × edge_dim` sums of incident initial edge features
    ///   (required iff the layer was built with `edge_dim > 0`).
    pub fn forward<R: Rng>(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        h: Var,
        adj: &Adjacency,
        edge_sum: Option<Var>,
        rng: &mut R,
    ) -> Var {
        let mut agg = tape.graph_agg(h, Adjacency::clone(adj), self.eps);
        if self.aggregation == Aggregation::Mean {
            // divide each node's aggregate by deg(v)+1 (constant wrt params)
            let dim = tape.value(agg).cols();
            let inv: Vec<f32> = adj
                .iter()
                .flat_map(|nbrs| std::iter::repeat_n(1.0 / (nbrs.len() as f32 + 1.0), dim))
                .collect();
            let inv_m = tape.input(Mat::from_vec(adj.len(), dim, inv));
            agg = tape.mul(agg, inv_m);
        }
        let input = match (self.edge_dim, edge_sum) {
            (0, _) => agg,
            (_, Some(es)) => tape.concat_cols(agg, es),
            (d, None) => {
                // API misuse: the layer was built with `edge_dim = d` but
                // called without edge features. Falling through with the
                // node aggregate alone trips the MLP's input-width check,
                // so release builds still fail loudly at the right layer.
                debug_assert!(false, "GIN layer expects {d}-dim edge features");
                agg
            }
        };
        self.mlp.forward(tape, store, input, rng)
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.mlp.out_dim()
    }
}

/// A `K`-layer GIN encoder with sum Readout: substructure → `1 × out_dim`
/// representation `h_{s_i}` (Algorithm 1, lines 3–7).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GinEncoder {
    layers: Vec<GinLayer>,
}

impl GinEncoder {
    /// `num_layers` GIN layers from `in_dim` to `hidden` (all hidden layers
    /// share the width, per the paper's setting of 3×64). ReLU activation,
    /// the canonical GIN choice; use [`GinEncoder::with_activation`] for a
    /// smooth activation (e.g. in gradient checks).
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        num_layers: usize,
        edge_dim: usize,
        dropout: f32,
        rng: &mut R,
    ) -> Self {
        Self::with_activation(
            store,
            name,
            in_dim,
            hidden,
            num_layers,
            edge_dim,
            dropout,
            Activation::Relu,
            rng,
        )
    }

    /// [`GinEncoder::new`] with an explicit per-layer MLP activation.
    #[allow(clippy::too_many_arguments)]
    pub fn with_activation<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        num_layers: usize,
        edge_dim: usize,
        dropout: f32,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        Self::with_options(
            store,
            name,
            in_dim,
            hidden,
            num_layers,
            edge_dim,
            dropout,
            activation,
            Aggregation::Sum,
            rng,
        )
    }

    /// Fully-parameterized constructor (activation + aggregation).
    #[allow(clippy::too_many_arguments)]
    pub fn with_options<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        num_layers: usize,
        edge_dim: usize,
        dropout: f32,
        activation: Activation,
        aggregation: Aggregation,
        rng: &mut R,
    ) -> Self {
        assert!(num_layers >= 1, "GIN encoder needs at least one layer");
        let mut layers = Vec::with_capacity(num_layers);
        let mut d = in_dim;
        for k in 0..num_layers {
            layers.push(
                GinLayer::new(
                    store,
                    &format!("{name}.gin{k}"),
                    d,
                    hidden,
                    edge_dim,
                    dropout,
                    activation,
                    rng,
                )
                .with_aggregation(aggregation),
            );
            d = hidden;
        }
        GinEncoder { layers }
    }

    /// Encode one substructure: node features `x (n × in_dim)` →
    /// graph-level representation (`1 × hidden`) via sum Readout.
    pub fn encode<R: Rng>(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        adj: &Adjacency,
        edge_sum: Option<Var>,
        rng: &mut R,
    ) -> Var {
        let mut h = x;
        for layer in &self.layers {
            h = layer.forward(tape, store, h, adj, edge_sum, rng);
        }
        tape.sum_rows(h)
    }

    /// Representation width.
    pub fn out_dim(&self) -> usize {
        // Constructors reject zero-layer encoders; 0 keeps this total.
        self.layers.last().map_or(0, |l| l.out_dim())
    }
}

/// Build the adjacency + per-node edge-feature-sum inputs for a
/// substructure given as an `alss_graph::Graph`-agnostic edge list.
/// (Kept here so `alss-nn` stays independent of the graph crate; `alss-core`
/// adapts its `Substructure` type to this form.)
pub fn adjacency_from_edges(n: usize, edges: &[(u32, u32)]) -> Adjacency {
    let mut adj = vec![Vec::new(); n];
    for &(u, v) in edges {
        adj[u as usize].push(v);
        adj[v as usize].push(u);
    }
    std::sync::Arc::new(adj)
}

/// Sum of initial edge features incident to each node: `edge_feats[i]` is
/// the feature of `edges[i]`; returns an `n × edge_dim` matrix.
pub fn edge_feature_sums(n: usize, edges: &[(u32, u32)], edge_feats: &[Vec<f32>]) -> Mat {
    assert_eq!(edges.len(), edge_feats.len(), "edge feature count mismatch");
    let dim = edge_feats.first().map(|f| f.len()).unwrap_or(0);
    let mut m = Mat::zeros(n, dim.max(1));
    if dim == 0 {
        return m;
    }
    for (&(u, v), f) in edges.iter().zip(edge_feats) {
        assert_eq!(f.len(), dim, "ragged edge features");
        for (c, &x) in f.iter().enumerate() {
            m.set(u as usize, c, m.get(u as usize, c) + x);
            m.set(v as usize, c, m.get(v as usize, c) + x);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn encode_graph(
        enc: &GinEncoder,
        store: &ParamStore,
        feats: Mat,
        edges: &[(u32, u32)],
    ) -> Vec<f32> {
        let n = feats.rows();
        let adj = adjacency_from_edges(n, edges);
        let mut t = Tape::new(false);
        let x = t.input(feats);
        let mut rng = SmallRng::seed_from_u64(0);
        let h = enc.encode(&mut t, store, x, &adj, None, &mut rng);
        t.value(h).data().to_vec()
    }

    #[test]
    fn isomorphic_substructures_get_equal_representations() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let enc = GinEncoder::new(&mut store, "g", 2, 8, 2, 0, 0.0, &mut rng);
        // path a-b-c with features in two different node orders
        let f1 = Mat::from_vec(3, 2, vec![1., 0., 0., 1., 1., 0.]);
        let e1 = vec![(0, 1), (1, 2)];
        // permuted: node order c, a, b
        let f2 = Mat::from_vec(3, 2, vec![1., 0., 1., 0., 0., 1.]);
        let e2 = vec![(2, 0), (1, 2)];
        let h1 = encode_graph(&enc, &store, f1, &e1);
        let h2 = encode_graph(&enc, &store, f2, &e2);
        for (a, b) in h1.iter().zip(&h2) {
            assert!((a - b).abs() < 1e-4, "{h1:?} vs {h2:?}");
        }
    }

    #[test]
    fn non_isomorphic_substructures_differ() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let enc = GinEncoder::new(&mut store, "g", 1, 8, 2, 0, 0.0, &mut rng);
        let feats = Mat::from_vec(3, 1, vec![1., 1., 1.]);
        let path = encode_graph(&enc, &store, feats.clone(), &[(0, 1), (1, 2)]);
        let tri = encode_graph(&enc, &store, feats, &[(0, 1), (1, 2), (0, 2)]);
        let diff: f32 = path.iter().zip(&tri).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-4, "path and triangle should differ");
    }

    #[test]
    fn edge_feature_sums_accumulate() {
        let m = edge_feature_sums(3, &[(0, 1), (1, 2)], &[vec![1.0, 0.0], vec![0.0, 2.0]]);
        assert_eq!(m.row(0), &[1.0, 0.0]);
        assert_eq!(m.row(1), &[1.0, 2.0]);
        assert_eq!(m.row(2), &[0.0, 2.0]);
    }

    #[test]
    fn mean_aggregation_divides_by_degree() {
        // single layer, identity-ish check via layer forward values:
        // star center with 3 neighbors vs leaf — mean normalizes the sum
        let mut rng = SmallRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let sum_enc = GinEncoder::new(&mut store, "s", 1, 4, 1, 0, 0.0, &mut rng);
        let mut rng2 = SmallRng::seed_from_u64(6);
        let mut store2 = ParamStore::new();
        let mean_enc = GinEncoder::with_options(
            &mut store2,
            "s",
            1,
            4,
            1,
            0,
            0.0,
            Activation::Relu,
            Aggregation::Mean,
            &mut rng2,
        );
        // same seed → same weights; mean output must differ on non-regular graphs
        let adj = adjacency_from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let x = Mat::from_vec(4, 1, vec![1.0, 1.0, 1.0, 1.0]);
        let mut t1 = Tape::new(false);
        let xv = t1.input(x.clone());
        let mut r = SmallRng::seed_from_u64(0);
        let h_sum = sum_enc.encode(&mut t1, &store, xv, &adj, None, &mut r);
        let mut t2 = Tape::new(false);
        let xv2 = t2.input(x);
        let h_mean = mean_enc.encode(&mut t2, &store2, xv2, &adj, None, &mut r);
        let d: f32 = t1
            .value(h_sum)
            .data()
            .iter()
            .zip(t2.value(h_mean).data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(d > 1e-4, "mean and sum aggregation should differ: {d}");
    }

    #[test]
    fn mean_aggregation_cannot_distinguish_multiplicity() {
        // mean over identical neighbor features is invariant to the number
        // of neighbors — exactly the injectivity failure GIN avoids.
        let mut rng = SmallRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let enc = GinEncoder::with_options(
            &mut store,
            "m",
            1,
            4,
            1,
            0,
            0.0,
            Activation::Relu,
            Aggregation::Mean,
            &mut rng,
        );
        // star with 2 leaves vs star with 4 leaves, all features equal:
        // the CENTER node's representation is identical under mean
        let center_rep = |k: usize| {
            let edges: Vec<(u32, u32)> = (1..=k as u32).map(|i| (0, i)).collect();
            let adj = adjacency_from_edges(k + 1, &edges);
            let x = Mat::full(k + 1, 1, 1.0);
            let mut t = Tape::new(false);
            let xv = t.input(x);
            let mut r = SmallRng::seed_from_u64(0);
            // encode handles readout; we need per-node values, so run a
            // single layer manually via the encoder's first layer
            let h = enc.encode(&mut t, &store, xv, &adj, None, &mut r);
            let _ = h;
            // use readout difference per node count instead: center row of
            // the layer output equals (sum/(deg+1)) = 1 for any k
            t.value(h).data().to_vec()
        };
        let r2 = center_rep(2);
        let r4 = center_rep(4);
        // readout sums differ by leaf count, but per-node the center value
        // saturates; compare normalized readouts
        let n2: Vec<f32> = r2.iter().map(|v| v / 3.0).collect();
        let n4: Vec<f32> = r4.iter().map(|v| v / 5.0).collect();
        for (a, b) in n2.iter().zip(&n4) {
            assert!((a - b).abs() < 1e-5, "mean-aggregated nodes should match");
        }
    }

    #[test]
    fn encoder_output_width() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let enc = GinEncoder::new(&mut store, "g", 4, 16, 3, 0, 0.5, &mut rng);
        assert_eq!(enc.out_dim(), 16);
    }
}
