//! Structured self-attention over substructure representations — the
//! learned weighting `w(·)` of Eq. (2) (Algorithm 1, lines 8–11).
//!
//! Following Lin et al.'s structured self-attentive embedding (which the
//! paper cites via [51, 82]):
//!
//! ```text
//! A   = softmax(W2 · tanh(W1 · H_qᵀ))      A ∈ ℝ^{r×n}
//! E_q = A · H_q                            E_q ∈ ℝ^{r×d}
//! e_q = Flatten(E_q)                       e_q ∈ ℝ^{1×rd}
//! ```
//!
//! `n` (the number of substructures) varies per query; `E_q`'s size depends
//! only on the hyper-parameters `r` (attention heads / "experts") and `d`,
//! and the whole block is permutation-invariant in the substructure order
//! (verified by tests here and property tests in `alss-core`).

use crate::init::xavier_uniform;
use crate::param::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The self-attention aggregator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SelfAttention {
    w1: ParamId, // da × d
    w2: ParamId, // r × da
    d: usize,
    da: usize,
    r: usize,
}

impl SelfAttention {
    /// `d` — substructure representation width, `da` — attention hidden
    /// width, `r` — number of attention rows ("experts").
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        d: usize,
        da: usize,
        r: usize,
        rng: &mut R,
    ) -> Self {
        // Bias-free two-layer MLP, per Algorithm 1 line 9; shapes are
        // W1 ∈ ℝ^{da×d}, W2 ∈ ℝ^{r×da}.
        let w1 = store.add(format!("{name}.w1"), xavier_uniform(da, d, rng));
        let w2 = store.add(format!("{name}.w2"), xavier_uniform(r, da, rng));
        SelfAttention { w1, w2, d, da, r }
    }

    /// Aggregate `H_q (n × d)` into the flattened query representation
    /// `e_q (1 × r·d)`. Also returns the attention matrix node (for
    /// inspection / tests).
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, h_q: Var) -> (Var, Var) {
        assert_eq!(tape.value(h_q).cols(), self.d, "H_q width mismatch");
        let w1 = tape.param(store, self.w1); // da × d
        let w2 = tape.param(store, self.w2); // r × da
        let ht = tape.transpose(h_q); // d × n
        let z = tape.matmul(w1, ht); // da × n
        let z = tape.tanh(z);
        let scores = tape.matmul(w2, z); // r × n
                                         // softmax over the n substructures: rows of `scores`
        let a = tape.softmax_rows(scores); // r × n
        let e = tape.matmul(a, h_q); // r × d
        let eq = tape.flatten(e); // 1 × r·d
        (eq, a)
    }

    /// Output width `r·d`.
    pub fn out_dim(&self) -> usize {
        self.r * self.d
    }

    /// Number of attention rows.
    pub fn num_heads(&self) -> usize {
        self.r
    }

    /// Attention hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.da
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup(d: usize, da: usize, r: usize) -> (ParamStore, SelfAttention) {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let att = SelfAttention::new(&mut store, "att", d, da, r, &mut rng);
        (store, att)
    }

    #[test]
    fn output_size_independent_of_substructure_count() {
        let (store, att) = setup(4, 8, 3);
        for n in [1usize, 2, 7, 20] {
            let mut t = Tape::new(false);
            let h = t.input(Mat::full(n, 4, 0.5));
            let (eq, a) = att.forward(&mut t, &store, h);
            assert_eq!(t.value(eq).shape(), (1, 12));
            assert_eq!(t.value(a).shape(), (3, n));
        }
    }

    #[test]
    fn attention_rows_are_distributions() {
        let (store, att) = setup(4, 8, 2);
        let mut t = Tape::new(false);
        let h = t.input(Mat::from_vec(
            3,
            4,
            vec![1., 0., 0., 0., 0., 2., 0., 0., 0., 0., 3., 0.],
        ));
        let (_, a) = att.forward(&mut t, &store, h);
        for r in 0..2 {
            let sum: f32 = t.value(a).row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(t.value(a).row(r).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn permutation_invariance_of_aggregate() {
        let (store, att) = setup(3, 6, 2);
        let rows = [
            vec![1.0f32, 2.0, 3.0],
            vec![-1.0, 0.5, 0.0],
            vec![0.3, 0.3, 0.3],
        ];
        let forward = |order: &[usize]| {
            let data: Vec<f32> = order.iter().flat_map(|&i| rows[i].clone()).collect();
            let mut t = Tape::new(false);
            let h = t.input(Mat::from_vec(3, 3, data));
            let (eq, _) = att.forward(&mut t, &store, h);
            t.value(eq).data().to_vec()
        };
        let e1 = forward(&[0, 1, 2]);
        let e2 = forward(&[2, 0, 1]);
        for (a, b) in e1.iter().zip(&e2) {
            assert!((a - b).abs() < 1e-5, "{e1:?} vs {e2:?}");
        }
    }
}
