//! LSS training losses: Eq. (3) (log-scale MSE regression), Eq. (5)
//! (count-magnitude cross-entropy), Eq. (6) (multi-task combination).

use crate::mat::Mat;
use crate::tape::{Tape, Var};

/// Eq. (3): `L_reg = 1/|Q| Σ (log c(q) − log c_Θ(q))²`.
///
/// `pred_log` is a `k × 1` node of log10-scale predictions;
/// `target_log` are the log10-scale true counts.
pub fn mse_log_loss(tape: &mut Tape, pred_log: Var, target_log: &[f32]) -> Var {
    let k = tape.value(pred_log).rows();
    assert_eq!(k, target_log.len(), "batch size mismatch");
    assert_eq!(tape.value(pred_log).cols(), 1, "pred must be k×1");
    let t = tape.input(Mat::from_vec(k, 1, target_log.to_vec()));
    let d = tape.sub(pred_log, t);
    let d2 = tape.mul(d, d);
    tape.mean_all(d2)
}

/// Eq. (5): mean cross-entropy of the magnitude classifier.
///
/// `logits` is `k × m`; `target_class[i] ∈ 0..m` is the true magnitude
/// bucket (the empirical distribution `p(y|q)` is the point mass at
/// `⌊log10 c(q)⌋` clamped to `m−1`).
pub fn cross_entropy_loss(tape: &mut Tape, logits: Var, target_class: &[usize]) -> Var {
    let (k, m) = tape.value(logits).shape();
    assert_eq!(k, target_class.len(), "batch size mismatch");
    let logp = tape.log_softmax_rows(logits);
    let mut onehot = Mat::zeros(k, m);
    for (i, &c) in target_class.iter().enumerate() {
        assert!(c < m, "target class {c} out of range (m={m})");
        onehot.set(i, c, 1.0);
    }
    let oh = tape.input(onehot);
    let picked = tape.mul(logp, oh);
    let s = tape.sum_all(picked);
    // mean over batch, negated
    tape.scale(s, -1.0 / k as f32)
}

/// Eq. (6): `L = (1−λ) L_reg + λ L_cla`.
pub fn multi_task_loss(tape: &mut Tape, reg: Var, cla: Var, lambda: f32) -> Var {
    assert!((0.0..=1.0).contains(&lambda), "λ must be in [0,1]");
    let a = tape.scale(reg, 1.0 - lambda);
    let b = tape.scale(cla, lambda);
    tape.add(a, b)
}

/// Magnitude bucket of a true count: `clamp(⌊log10 max(c,1)⌋, 0, m−1)`.
pub fn magnitude_class(count: f64, num_classes: usize) -> usize {
    let c = count.max(1.0);
    // log10 of a finite f64 ≥ 1 lies in [0, 309); the cast cannot truncate.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let magnitude = c.log10().floor().clamp(0.0, 308.0) as usize;
    magnitude.min(num_classes.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamStore;

    #[test]
    fn mse_log_of_exact_prediction_is_zero() {
        let mut t = Tape::new(false);
        let p = t.input(Mat::from_vec(2, 1, vec![3.0, 5.0]));
        let l = mse_log_loss(&mut t, p, &[3.0, 5.0]);
        assert!(t.value(l).scalar().abs() < 1e-9);
    }

    #[test]
    fn mse_log_penalizes_symmetrically() {
        let mut t = Tape::new(false);
        let over = t.input(Mat::from_vec(1, 1, vec![4.0]));
        let l_over = mse_log_loss(&mut t, over, &[3.0]);
        let under = t.input(Mat::from_vec(1, 1, vec![2.0]));
        let l_under = mse_log_loss(&mut t, under, &[3.0]);
        assert!((t.value(l_over).scalar() - t.value(l_under).scalar()).abs() < 1e-9);
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let mut t = Tape::new(false);
        let good = t.input(Mat::from_vec(1, 3, vec![10.0, 0.0, 0.0]));
        let lg = cross_entropy_loss(&mut t, good, &[0]);
        let bad = t.input(Mat::from_vec(1, 3, vec![0.0, 10.0, 0.0]));
        let lb = cross_entropy_loss(&mut t, bad, &[0]);
        assert!(t.value(lg).scalar() < t.value(lb).scalar());
        assert!(t.value(lg).scalar() >= 0.0);
    }

    #[test]
    fn multi_task_blend() {
        let mut t = Tape::new(false);
        let r = t.input(Mat::from_vec(1, 1, vec![3.0]));
        let c = t.input(Mat::from_vec(1, 1, vec![9.0]));
        let l = multi_task_loss(&mut t, r, c, 1.0 / 3.0);
        assert!((t.value(l).scalar() - (2.0 / 3.0 * 3.0 + 1.0 / 3.0 * 9.0)).abs() < 1e-5);
    }

    #[test]
    fn magnitude_buckets() {
        assert_eq!(magnitude_class(1.0, 10), 0);
        assert_eq!(magnitude_class(9.0, 10), 0);
        assert_eq!(magnitude_class(10.0, 10), 1);
        assert_eq!(magnitude_class(12345.0, 10), 4);
        assert_eq!(magnitude_class(1e15, 10), 9); // clamped
        assert_eq!(magnitude_class(0.0, 10), 0); // c < 1 clamps to 1
    }

    #[test]
    fn losses_are_differentiable() {
        let mut store = ParamStore::new();
        let w = store.add("w", Mat::from_vec(1, 1, vec![2.0]));
        let mut t = Tape::new(false);
        let wv = t.param(&store, w);
        let l = mse_log_loss(&mut t, wv, &[5.0]);
        t.backward(l, &mut store);
        // d/dw (w-5)^2 = 2(w-5) = -6
        assert!((store.grad(w).scalar() + 6.0).abs() < 1e-5);
    }
}
