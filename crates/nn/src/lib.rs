//! # alss-nn
//!
//! A from-scratch neural-network stack sufficient to express the LSS model
//! of *A Learned Sketch for Subgraph Counting* (SIGMOD 2021) — replacing
//! PyTorch + PyTorch Geometric in the original implementation.
//!
//! Components:
//!
//! * [`mat::Mat`] — dense `f32` matrices;
//! * [`tape::Tape`] — define-by-run reverse-mode autodiff over the op set
//!   the LSS architecture needs (matmul, broadcasts, ReLU/tanh/softmax,
//!   dropout, GIN graph aggregation, concat/slice/flatten);
//! * [`param::ParamStore`] — persistent parameters with gradient routing;
//! * [`linear`] — `Linear` / `Mlp` layers; [`gin`] — GIN encoder;
//!   [`attention`] — structured self-attention (Algorithm 1, lines 8–11);
//! * [`loss`] — Eq. (3)/(5)/(6) losses; [`adam`] — Adam with weight decay
//!   and LR decay;
//! * [`gradcheck`] — finite-difference validation used by the test suite.
//!
//! Determinism: all stochastic behavior (init, dropout) is driven by a
//! caller-provided `rand::Rng`, so training runs are reproducible.
//!
//! ```
//! use alss_nn::{Activation, Adam, AdamConfig, Mat, Mlp, ParamStore, Tape};
//! use alss_nn::loss::mse_log_loss;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! // fit y = 2x with a tiny MLP
//! let mut rng = SmallRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let mlp = Mlp::new(&mut store, "m", &[1, 8, 1], Activation::Tanh, 0.0, &mut rng);
//! let mut adam = Adam::new(AdamConfig { lr: 0.02, weight_decay: 0.0, ..Default::default() }, &store);
//! for _ in 0..200 {
//!     store.zero_grads();
//!     let mut tape = Tape::new(true);
//!     let x = tape.input(Mat::from_vec(4, 1, vec![0.0, 0.25, 0.5, 1.0]));
//!     let y = mlp.forward(&mut tape, &store, x, &mut rng);
//!     let loss = mse_log_loss(&mut tape, y, &[0.0, 0.5, 1.0, 2.0]);
//!     tape.backward(loss, &mut store);
//!     adam.step(&mut store);
//! }
//! // evaluate at x = 0.75 → ≈ 1.5
//! let mut tape = Tape::new(false);
//! let x = tape.input(Mat::from_vec(1, 1, vec![0.75]));
//! let y = mlp.forward(&mut tape, &store, x, &mut rng);
//! assert!((tape.value(y).scalar() - 1.5).abs() < 0.2);
//! ```

// Test modules opt back out of the library panic/numeric policy: a panic
// IS the failure report there, and fixtures are tiny.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub mod adam;
pub mod attention;
pub mod gin;
pub mod gradcheck;
pub mod init;
pub mod linear;
pub mod loss;
pub mod mat;
pub mod param;
pub mod tape;

pub use adam::{Adam, AdamConfig};
pub use attention::SelfAttention;
pub use gin::{adjacency_from_edges, edge_feature_sums, Aggregation, GinEncoder, GinLayer};
pub use linear::{Activation, Linear, Mlp};
pub use mat::Mat;
pub use param::{GradShard, GradSink, ParamId, ParamStore};
pub use tape::{Adjacency, Tape, Var};
