//! Parameter storage shared across forward passes.
//!
//! The tape ([`crate::tape::Tape`]) is rebuilt per forward pass (define-by-
//! run, like PyTorch); learnable parameters persist here. Gradients are
//! accumulated into the store by `Tape::backward` and consumed by the
//! optimizer ([`crate::adam::Adam`]).

use crate::mat::Mat;
use serde::{Deserialize, Serialize};

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

/// Destination for the gradients produced by a backward pass: either the
/// [`ParamStore`] itself (the serial path) or a detached [`GradShard`]
/// owned by one worker thread of the data-parallel trainer.
pub trait GradSink {
    /// Add `g` into the accumulator for parameter `id`.
    fn accumulate_grad(&mut self, id: ParamId, g: &Mat);
}

/// A detached gradient accumulator shaped like a [`ParamStore`]'s
/// parameter list. Worker threads each own one (no locks on the hot
/// path); [`ParamStore::merge_grads`] reduces shards back into the store
/// in slice order, so the floating-point reduction tree is fixed by the
/// caller and independent of how work was scheduled onto threads.
#[derive(Clone, Debug)]
pub struct GradShard {
    grads: Vec<Mat>,
}

impl GradShard {
    /// Reset every accumulator to zero (reuse across batches without
    /// reallocating).
    pub fn zero(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// Accumulated gradient for one parameter.
    pub fn grad(&self, id: ParamId) -> &Mat {
        &self.grads[id.0]
    }
}

impl GradSink for GradShard {
    fn accumulate_grad(&mut self, id: ParamId, g: &Mat) {
        self.grads[id.0].add_assign(g);
    }
}

impl GradSink for ParamStore {
    fn accumulate_grad(&mut self, id: ParamId, g: &Mat) {
        ParamStore::accumulate_grad(self, id, g);
    }
}

/// Owning store of all learnable parameters of a model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParamStore {
    values: Vec<Mat>,
    grads: Vec<Mat>,
    names: Vec<String>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        ParamStore {
            values: Vec::new(),
            grads: Vec::new(),
            names: Vec::new(),
        }
    }

    /// Register a parameter with an initial value. The name is diagnostic
    /// (checkpoint inspection, tests).
    pub fn add(&mut self, name: impl Into<String>, value: Mat) -> ParamId {
        let id = ParamId(self.values.len());
        self.grads.push(Mat::zeros(value.rows(), value.cols()));
        self.values.push(value);
        self.names.push(name.into());
        id
    }

    /// Current value of a parameter.
    #[inline]
    pub fn value(&self, id: ParamId) -> &Mat {
        &self.values[id.0]
    }

    /// Mutable value (optimizer use).
    #[inline]
    pub fn value_mut(&mut self, id: ParamId) -> &mut Mat {
        &mut self.values[id.0]
    }

    /// Accumulated gradient of a parameter.
    #[inline]
    pub fn grad(&self, id: ParamId) -> &Mat {
        &self.grads[id.0]
    }

    /// Add `g` into the parameter's gradient accumulator.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Mat) {
        self.grads[id.0].add_assign(g);
    }

    /// Reset all gradients to zero (call before each optimization step's
    /// backward passes).
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// `n` zeroed [`GradShard`]s shaped like this store's parameter list
    /// (one per worker of a data-parallel backward pass).
    pub fn grad_shards(&self, n: usize) -> Vec<GradShard> {
        (0..n)
            .map(|_| GradShard {
                grads: self
                    .values
                    .iter()
                    .map(|v| Mat::zeros(v.rows(), v.cols()))
                    .collect(),
            })
            .collect()
    }

    /// Reduce detached shards into this store's gradient accumulators,
    /// strictly in slice order. The fixed reduction order is what makes
    /// parallel training bit-identical across thread counts: callers hand
    /// shards over in a schedule-independent order (batch position), not
    /// in thread-completion order.
    pub fn merge_grads(&mut self, shards: &[GradShard]) {
        for shard in shards {
            assert_eq!(
                shard.grads.len(),
                self.grads.len(),
                "shard/store parameter count mismatch"
            );
            for (acc, g) in self.grads.iter_mut().zip(&shard.grads) {
                acc.add_assign(g);
            }
        }
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of registered parameters (tensors).
    pub fn num_params(&self) -> usize {
        self.values.len()
    }

    /// Total number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.values.iter().map(|m| m.len()).sum()
    }

    /// Iterate over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// L2 norm over all parameters (diagnostics / tests).
    pub fn weight_norm(&self) -> f32 {
        self.values
            .iter()
            .map(|m| m.data().iter().map(|&x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// L2 norm over all accumulated gradients (telemetry / diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.grads
            .iter()
            .map(|m| m.data().iter().map(|&x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }
}

impl Default for ParamStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_access() {
        let mut s = ParamStore::new();
        let w = s.add("w", Mat::from_vec(2, 2, vec![1., 2., 3., 4.]));
        assert_eq!(s.value(w).get(1, 0), 3.0);
        assert_eq!(s.name(w), "w");
        assert_eq!(s.num_params(), 1);
        assert_eq!(s.num_weights(), 4);
    }

    #[test]
    fn grad_accumulation_and_reset() {
        let mut s = ParamStore::new();
        let w = s.add("w", Mat::zeros(1, 2));
        s.accumulate_grad(w, &Mat::row_vector(&[1.0, 2.0]));
        s.accumulate_grad(w, &Mat::row_vector(&[0.5, 0.5]));
        assert_eq!(s.grad(w).data(), &[1.5, 2.5]);
        s.zero_grads();
        assert_eq!(s.grad(w).data(), &[0.0, 0.0]);
    }

    #[test]
    fn shards_merge_in_slice_order() {
        let mut s = ParamStore::new();
        let w = s.add("w", Mat::zeros(1, 2));
        let mut shards = s.grad_shards(3);
        shards[0].accumulate_grad(w, &Mat::row_vector(&[1.0, 0.0]));
        shards[1].accumulate_grad(w, &Mat::row_vector(&[0.0, 2.0]));
        // shard 2 stays zero — merging it must be a no-op
        s.merge_grads(&shards);
        assert_eq!(s.grad(w).data(), &[1.0, 2.0]);
        // zeroing a shard lets it be reused for the next batch
        shards[0].zero();
        assert_eq!(shards[0].grad(w).data(), &[0.0, 0.0]);
    }

    #[test]
    fn shard_merge_equals_direct_accumulation() {
        // Route the same gradients through (a) the store directly and
        // (b) one shard per contribution merged in order: results must be
        // bitwise equal — the guarantee the determinism contract rests on.
        let contributions = [[0.1f32, -0.2], [0.3, 0.7], [-0.5, 0.11]];
        let mut direct = ParamStore::new();
        let wd = direct.add("w", Mat::zeros(1, 2));
        for c in &contributions {
            GradSink::accumulate_grad(&mut direct, wd, &Mat::row_vector(c));
        }
        let mut sharded = ParamStore::new();
        let ws = sharded.add("w", Mat::zeros(1, 2));
        let mut shards = sharded.grad_shards(contributions.len());
        for (shard, c) in shards.iter_mut().zip(&contributions) {
            shard.accumulate_grad(ws, &Mat::row_vector(c));
        }
        sharded.merge_grads(&shards);
        let (a, b) = (direct.grad(wd).data(), sharded.grad(ws).data());
        assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn grad_norm_tracks_accumulated_gradients() {
        let mut s = ParamStore::new();
        let w = s.add("w", Mat::zeros(1, 2));
        assert_eq!(s.grad_norm(), 0.0);
        s.accumulate_grad(w, &Mat::row_vector(&[3.0, 4.0]));
        assert!((s.grad_norm() - 5.0).abs() < 1e-6);
        s.zero_grads();
        assert_eq!(s.grad_norm(), 0.0);
    }
}
