//! Parameter storage shared across forward passes.
//!
//! The tape ([`crate::tape::Tape`]) is rebuilt per forward pass (define-by-
//! run, like PyTorch); learnable parameters persist here. Gradients are
//! accumulated into the store by `Tape::backward` and consumed by the
//! optimizer ([`crate::adam::Adam`]).

use crate::mat::Mat;
use serde::{Deserialize, Serialize};

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

/// Owning store of all learnable parameters of a model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParamStore {
    values: Vec<Mat>,
    grads: Vec<Mat>,
    names: Vec<String>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        ParamStore {
            values: Vec::new(),
            grads: Vec::new(),
            names: Vec::new(),
        }
    }

    /// Register a parameter with an initial value. The name is diagnostic
    /// (checkpoint inspection, tests).
    pub fn add(&mut self, name: impl Into<String>, value: Mat) -> ParamId {
        let id = ParamId(self.values.len());
        self.grads.push(Mat::zeros(value.rows(), value.cols()));
        self.values.push(value);
        self.names.push(name.into());
        id
    }

    /// Current value of a parameter.
    #[inline]
    pub fn value(&self, id: ParamId) -> &Mat {
        &self.values[id.0]
    }

    /// Mutable value (optimizer use).
    #[inline]
    pub fn value_mut(&mut self, id: ParamId) -> &mut Mat {
        &mut self.values[id.0]
    }

    /// Accumulated gradient of a parameter.
    #[inline]
    pub fn grad(&self, id: ParamId) -> &Mat {
        &self.grads[id.0]
    }

    /// Add `g` into the parameter's gradient accumulator.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Mat) {
        self.grads[id.0].add_assign(g);
    }

    /// Reset all gradients to zero (call before each optimization step's
    /// backward passes).
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of registered parameters (tensors).
    pub fn num_params(&self) -> usize {
        self.values.len()
    }

    /// Total number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.values.iter().map(|m| m.len()).sum()
    }

    /// Iterate over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// L2 norm over all parameters (diagnostics / tests).
    pub fn weight_norm(&self) -> f32 {
        self.values
            .iter()
            .map(|m| m.data().iter().map(|&x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// L2 norm over all accumulated gradients (telemetry / diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.grads
            .iter()
            .map(|m| m.data().iter().map(|&x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }
}

impl Default for ParamStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_access() {
        let mut s = ParamStore::new();
        let w = s.add("w", Mat::from_vec(2, 2, vec![1., 2., 3., 4.]));
        assert_eq!(s.value(w).get(1, 0), 3.0);
        assert_eq!(s.name(w), "w");
        assert_eq!(s.num_params(), 1);
        assert_eq!(s.num_weights(), 4);
    }

    #[test]
    fn grad_accumulation_and_reset() {
        let mut s = ParamStore::new();
        let w = s.add("w", Mat::zeros(1, 2));
        s.accumulate_grad(w, &Mat::row_vector(&[1.0, 2.0]));
        s.accumulate_grad(w, &Mat::row_vector(&[0.5, 0.5]));
        assert_eq!(s.grad(w).data(), &[1.5, 2.5]);
        s.zero_grads();
        assert_eq!(s.grad(w).data(), &[0.0, 0.0]);
    }

    #[test]
    fn grad_norm_tracks_accumulated_gradients() {
        let mut s = ParamStore::new();
        let w = s.add("w", Mat::zeros(1, 2));
        assert_eq!(s.grad_norm(), 0.0);
        s.accumulate_grad(w, &Mat::row_vector(&[3.0, 4.0]));
        assert!((s.grad_norm() - 5.0).abs() < 1e-6);
        s.zero_grads();
        assert_eq!(s.grad_norm(), 0.0);
    }
}
