//! Weight initialization.

use crate::mat::Mat;
use rand::Rng;

/// Xavier/Glorot uniform initialization for a `fan_in × fan_out` weight.
pub fn xavier_uniform<R: Rng>(fan_in: usize, fan_out: usize, rng: &mut R) -> Mat {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Mat::from_vec(
        fan_in,
        fan_out,
        (0..fan_in * fan_out)
            .map(|_| rng.gen_range(-bound..=bound))
            .collect(),
    )
}

/// He/Kaiming uniform initialization (for ReLU layers).
pub fn he_uniform<R: Rng>(fan_in: usize, fan_out: usize, rng: &mut R) -> Mat {
    let bound = (6.0 / fan_in as f32).sqrt();
    Mat::from_vec(
        fan_in,
        fan_out,
        (0..fan_in * fan_out)
            .map(|_| rng.gen_range(-bound..=bound))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_bound_and_nonconstant() {
        let mut rng = SmallRng::seed_from_u64(0);
        let w = xavier_uniform(64, 64, &mut rng);
        let bound = (6.0 / 128.0f32).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= bound + 1e-6));
        let first = w.data()[0];
        assert!(w.data().iter().any(|&x| (x - first).abs() > 1e-9));
    }

    #[test]
    fn he_bound_scales_with_fan_in() {
        let mut rng = SmallRng::seed_from_u64(1);
        let w = he_uniform(6, 10, &mut rng);
        assert!(w.data().iter().all(|&x| x.abs() <= 1.0 + 1e-6));
    }
}
