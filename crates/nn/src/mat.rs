//! Dense row-major `f32` matrix — the tensor type of the `alss-nn` stack.
//!
//! All LSS tensors are rank-≤2 (node-feature matrices, weight matrices,
//! attention matrices), so a simple dense matrix with a handful of BLAS-1/2
//! kernels is sufficient. Shapes are validated eagerly with panics: a shape
//! mismatch is a programming error, not a runtime condition.

use serde::{Deserialize, Serialize};

/// A dense `rows × cols` matrix of `f32`, row-major.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Mat {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// From a row-major vector (length must be `rows * cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Mat { rows, cols, data }
    }

    /// A `1 × v.len()` row vector.
    pub fn row_vector(v: &[f32]) -> Self {
        Mat::from_vec(1, v.len(), v.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self @ rhs` (ikj loop order for cache locality).
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul shape mismatch: {:?} @ {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise in-place `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Mat) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Elementwise in-place `self += s * rhs`.
    pub fn add_scaled_assign(&mut self, rhs: &Mat, s: f32) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += s * b;
        }
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Set every element to zero (reusing the allocation).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// `true` if every element is finite (no NaN, no ±Inf).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// First non-finite element as `(row, col, value)`, if any. Used by the
    /// tape's debug guards to report *where* a NaN/Inf was born.
    pub fn first_non_finite(&self) -> Option<(usize, usize, f32)> {
        self.data
            .iter()
            .position(|x| !x.is_finite())
            .map(|i| (i / self.cols, i % self.cols, self.data[i]))
    }

    /// The single element of a `1 × 1` matrix.
    pub fn scalar(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "scalar() on non-scalar matrix");
        self.data[0]
    }

    /// Horizontally concatenate `[self | rhs]` (same row count).
    pub fn concat_cols(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.rows, rhs.rows, "concat_cols row mismatch");
        let cols = self.cols + rhs.cols;
        let mut out = Mat::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.data[r * cols..r * cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * cols + self.cols..(r + 1) * cols].copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Vertically stack rows of the given `1 × d` (or `k × d`) matrices.
    pub fn stack_rows(mats: &[&Mat]) -> Mat {
        assert!(!mats.is_empty(), "stack_rows of nothing");
        let cols = mats[0].cols;
        let rows: usize = mats.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in mats {
            assert_eq!(m.cols, cols, "stack_rows col mismatch");
            data.extend_from_slice(&m.data);
        }
        Mat { rows, cols, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Mat::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Mat::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn concat_and_stack() {
        let a = Mat::from_vec(2, 1, vec![1., 2.]);
        let b = Mat::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(1), &[2., 5., 6.]);

        let r1 = Mat::row_vector(&[1., 2.]);
        let r2 = Mat::row_vector(&[3., 4.]);
        let s = Mat::stack_rows(&[&r1, &r2]);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.get(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scalar_and_norm() {
        let s = Mat::from_vec(1, 1, vec![4.0]);
        assert_eq!(s.scalar(), 4.0);
        let m = Mat::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.norm() - 5.0).abs() < 1e-6);
        assert_eq!(m.sum(), 7.0);
    }
}
