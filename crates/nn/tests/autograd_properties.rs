//! Property tests: every differentiable path through the tape agrees
//! with central finite differences on random inputs, and algebraic
//! identities of the `Mat` kernels hold.

// Test code opts back out of the library panic/numeric policy: a panic IS
// the failure report here, and fixtures are tiny.
#![allow(
    clippy::unwrap_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use alss_nn::gradcheck::check_gradients;
use alss_nn::{Activation, Mat, Mlp, ParamStore, SelfAttention, Tape};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn small_mat(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-1.0f32..1.0, rows * cols)
        .prop_map(move |v| Mat::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn matmul_distributes_over_addition(
        a in small_mat(3, 4),
        b in small_mat(4, 2),
        c in small_mat(4, 2),
    ) {
        // A(B + C) == AB + AC
        let mut bc = b.clone();
        bc.add_assign(&c);
        let lhs = a.matmul(&bc);
        let mut rhs = a.matmul(&b);
        rhs.add_assign(&a.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_reverses_matmul(a in small_mat(3, 4), b in small_mat(4, 2)) {
        // (AB)^T == B^T A^T
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn tape_gradients_match_finite_differences(
        x in small_mat(2, 3),
        seed in 0u64..1000,
    ) {
        // random tanh MLP; smooth everywhere so finite differences are valid
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[3, 5, 2], Activation::Tanh, 0.0, &mut rng);
        let report = check_gradients(&mut store, 1e-2, |t, s| {
            let mut r = SmallRng::seed_from_u64(0);
            let xv = t.input(x.clone());
            let y = mlp.forward(t, s, xv, &mut r);
            let sq = t.mul(y, y);
            t.mean_all(sq)
        });
        prop_assert!(report.max_rel_err < 3e-2, "{:?}", report);
    }

    #[test]
    fn attention_gradients_match_finite_differences(
        h in small_mat(4, 3),
        seed in 0u64..1000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let att = SelfAttention::new(&mut store, "a", 3, 4, 2, &mut rng);
        let report = check_gradients(&mut store, 1e-2, |t, s| {
            let hv = t.input(h.clone());
            let (eq, _) = att.forward(t, s, hv);
            let sq = t.mul(eq, eq);
            t.mean_all(sq)
        });
        prop_assert!(report.max_rel_err < 3e-2, "{:?}", report);
    }

    #[test]
    fn composed_tape_ops_gradcheck(
        a in small_mat(2, 2),
        b in small_mat(2, 2),
        seed in 0u64..1000,
    ) {
        // exercise add_row / sub / concat_cols / slice / transpose grads
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        use alss_nn::init::xavier_uniform;
        let w = store.add("w", xavier_uniform(2, 2, &mut rng));
        let bias = store.add("b", xavier_uniform(1, 4, &mut rng));
        let report = check_gradients(&mut store, 1e-2, |t, s| {
            let wv = t.param(s, w);
            let bv = t.param(s, bias);
            let av = t.input(a.clone());
            let bv2 = t.input(b.clone());
            let prod = t.matmul(av, wv);          // 2×2
            let diff = t.sub(prod, bv2);          // 2×2
            let cc = t.concat_cols(diff, prod);   // 2×4
            let shifted = t.add_row(cc, bv);      // broadcast bias
            let tr = t.transpose(shifted);        // 4×2
            let sl = t.slice_cols(tr, 0, 2);      // 4×2
            let th = t.tanh(sl);
            let sq = t.mul(th, th);
            t.mean_all(sq)
        });
        prop_assert!(report.max_rel_err < 3e-2, "{:?}", report);
    }

    #[test]
    fn softmax_cross_entropy_grads(
        x in small_mat(2, 4),
        cls in proptest::collection::vec(0usize..4, 2),
        seed in 0u64..1000,
    ) {
        use alss_nn::loss::cross_entropy_loss;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        use alss_nn::init::xavier_uniform;
        let w = store.add("w", xavier_uniform(4, 4, &mut rng));
        let report = check_gradients(&mut store, 1e-2, |t, s| {
            let wv = t.param(s, w);
            let xv = t.input(x.clone());
            let logits = t.matmul(xv, wv);
            cross_entropy_loss(t, logits, &cls)
        });
        prop_assert!(report.max_rel_err < 3e-2, "{:?}", report);
    }
}

#[test]
fn dropout_train_scales_expectation() {
    // with keep prob 1−p and 1/(1−p) scaling, the expected output equals
    // the input; check empirically over many masks
    let mut rng = SmallRng::seed_from_u64(0);
    let x = Mat::full(1, 1000, 1.0);
    let mut acc = vec![0.0f64; 1000];
    let trials = 200;
    for _ in 0..trials {
        let mut t = Tape::new(true);
        let xv = t.input(x.clone());
        let d = t.dropout(xv, 0.3, &mut rng);
        for (a, &v) in acc.iter_mut().zip(t.value(d).data()) {
            *a += v as f64;
        }
    }
    let mean: f64 = acc.iter().map(|a| a / trials as f64).sum::<f64>() / 1000.0;
    assert!((mean - 1.0).abs() < 0.05, "dropout expectation {mean}");
}
