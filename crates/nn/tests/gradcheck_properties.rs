//! Property tests for the finite-difference gradient checker: over random
//! architectures, inputs, and targets, the analytic gradients of every op
//! chain must agree with central differences, and every tensor produced
//! along the way must stay finite.

// Test code opts back out of the library panic/numeric policy: a panic IS
// the failure report here, and fixtures are tiny.
#![allow(
    clippy::unwrap_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use alss_nn::gradcheck::check_gradients;
use alss_nn::linear::{Activation, Mlp};
use alss_nn::loss::mse_log_loss;
use alss_nn::mat::Mat;
use alss_nn::param::ParamStore;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

// f32 central differences are noisy; the tolerance tracks the unit tests.
const TOL: f32 = 3e-2;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_mlps_pass_gradcheck(
        seed in 0u64..1000,
        hidden in 1usize..6,
        in_dim in 1usize..4,
        rows in 1usize..4,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            "m",
            &[in_dim, hidden, 1],
            Activation::Tanh,
            0.0,
            &mut rng,
        );
        // Deterministic pseudo-random inputs/targets derived from the seed.
        let x = Mat::from_vec(
            rows,
            in_dim,
            (0..rows * in_dim)
                .map(|i| ((seed as f32 + i as f32) * 0.37).sin())
                .collect(),
        );
        let targets: Vec<f32> =
            (0..rows).map(|i| 1.0 + ((seed + i as u64) % 7) as f32).collect();
        let report = check_gradients(&mut store, 1e-2, |t, s| {
            let mut r = SmallRng::seed_from_u64(0);
            let xv = t.input(x.clone());
            let y = mlp.forward(t, s, xv, &mut r);
            mse_log_loss(t, y, &targets)
        });
        prop_assert!(report.checked > 0);
        prop_assert!(
            report.max_rel_err < TOL,
            "rel err {} over {} weights (seed {seed})",
            report.max_rel_err,
            report.checked
        );
    }

    #[test]
    fn elementwise_chains_pass_gradcheck_and_stay_finite(
        seed in 0u64..1000,
        n in 1usize..6,
        scale in -2.0f32..2.0,
    ) {
        let mut store = ParamStore::new();
        let w = store.add(
            "w",
            Mat::from_vec(1, n, (0..n).map(|i| ((seed + i as u64) as f32 * 0.23).cos()).collect()),
        );
        let report = check_gradients(&mut store, 1e-3, |t, s| {
            let wv = t.param(s, w);
            let sc = t.scale(wv, scale);
            let th = t.tanh(sc);
            let sq = t.mul(th, th);
            t.mean_all(sq)
        });
        prop_assert!(report.max_rel_err < TOL, "{report:?}");
        // The debug finiteness guards ran on every intermediate tensor as a
        // side effect of building the tapes above; reaching this point means
        // no NaN/Inf was produced.
    }
}
