//! The serving path extends the workspace determinism contract: the same
//! checkpoint + query must produce a bit-identical estimate at any
//! `--threads` setting and any batch size, on both the model path and the
//! degraded fallback path. Companion to `alss-core`'s determinism suite
//! (which CI runs under an `ALSS_THREADS` matrix).

#![allow(clippy::unwrap_used, clippy::float_cmp)]

use alss_core::{LabeledQuery, LearnedSketch, Parallelism, SketchConfig, Workload};
use alss_graph::builder::graph_from_edges;
use alss_graph::io::to_text;
use alss_graph::Graph;
use alss_serve::{BatchConfig, Client, ServeConfig};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn data_graph() -> Graph {
    graph_from_edges(&[0, 0, 1, 1, 2], &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
}

fn fixtures(tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("alss-serve-det-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let data = data_graph();
    let graph_path = dir.join("graph.txt");
    std::fs::write(&graph_path, to_text(&data)).unwrap();
    let queries = [
        (vec![0u32, 0], vec![(0u32, 1u32)], 10u64),
        (vec![0, 1], vec![(0, 1)], 100),
        (vec![0, 1, 2], vec![(0, 1), (1, 2)], 5_000),
        (vec![0, 0, 1], vec![(0, 1), (1, 2)], 1_000),
    ]
    .into_iter()
    .map(|(l, e, c)| LabeledQuery::new(graph_from_edges(&l, &e), c))
    .collect();
    let (sketch, _) = LearnedSketch::train(
        &data,
        &Workload::from_queries(queries),
        &SketchConfig::tiny(),
    );
    let sketch_path = dir.join("sketch.json");
    sketch.save(&sketch_path).unwrap();
    (graph_path, sketch_path)
}

fn query_set() -> Vec<String> {
    [
        (vec![0u32, 0], vec![(0u32, 1u32)]),
        (vec![0, 1], vec![(0, 1)]),
        (vec![1, 2], vec![(0, 1)]),
        (vec![0, 0, 1], vec![(0, 1), (1, 2)]),
        (vec![0, 1, 2], vec![(0, 1), (1, 2)]),
        (vec![2, 2, 1], vec![(0, 1), (1, 2)]),
    ]
    .into_iter()
    .map(|(l, e)| to_text(&graph_from_edges(&l, &e)))
    .collect()
}

/// Serve the fixture at a given thread count / batch size and return the
/// bit patterns of every answer: model answers first, then degraded
/// (deadline-0) answers for a disjoint id range.
fn answer_bits(graph: &Path, sketch: &Path, threads: usize, batch: usize) -> Vec<u64> {
    let cfg = ServeConfig {
        data_path: graph.to_path_buf(),
        model_path: Some(sketch.to_path_buf()),
        batch: BatchConfig {
            batch_size: batch,
            parallelism: Parallelism::fixed(threads),
            ..BatchConfig::default()
        },
        ..ServeConfig::default()
    };
    let handle = alss_serve::serve(&cfg).unwrap();
    let mut client = Client::connect(&handle.addr.to_string(), Duration::from_secs(5)).unwrap();
    let mut bits = Vec::new();
    for (i, q) in query_set().iter().enumerate() {
        let resp = client.estimate(i as u64, q, None).unwrap();
        assert!(resp.ok && !resp.degraded, "{}", resp.error);
        bits.push(resp.log10.to_bits());
        bits.push(resp.magnitude_class);
    }
    // Fresh structures for the fallback path (must miss the cache).
    for (i, (l, e)) in [
        (vec![2u32, 0], vec![(0u32, 1u32)]),
        (vec![1, 1, 0], vec![(0, 1), (1, 2)]),
    ]
    .into_iter()
    .enumerate()
    {
        let q = to_text(&graph_from_edges(&l, &e));
        let resp = client.estimate(100 + i as u64, &q, Some(0)).unwrap();
        assert!(resp.ok && resp.degraded, "{}", resp.error);
        bits.push(resp.log10.to_bits());
    }
    handle.stop();
    handle.join();
    bits
}

#[test]
fn estimates_are_bit_identical_across_thread_counts_and_batch_sizes() {
    let (graph, sketch) = fixtures("threads");
    let baseline = answer_bits(&graph, &sketch, 1, 1);
    for (threads, batch) in [(2, 4), (4, 16)] {
        let got = answer_bits(&graph, &sketch, threads, batch);
        assert_eq!(
            got, baseline,
            "serving diverges at threads={threads} batch={batch}"
        );
    }
}
