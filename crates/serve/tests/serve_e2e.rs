//! End-to-end exercise of the serve subsystem over real TCP: canonical
//! cache hits on isomorphic re-submissions, deadline-forced degradation,
//! control ops, malformed input, modelless mode, and clean shutdown.

#![allow(clippy::unwrap_used, clippy::float_cmp)]

use alss_core::{LabeledQuery, Parallelism};
use alss_core::{LearnedSketch, SketchConfig, Workload};
use alss_graph::builder::graph_from_edges;
use alss_graph::io::to_text;
use alss_graph::Graph;
use alss_matching::{count_homomorphisms, Budget};
use alss_serve::{run_load, BatchConfig, Client, Request, ServeConfig};
use std::path::PathBuf;
use std::time::Duration;

fn data_graph() -> Graph {
    graph_from_edges(&[0, 0, 1, 1, 2], &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
}

fn labeled(labels: &[u32], edges: &[(u32, u32)], data: &Graph) -> LabeledQuery {
    let q = graph_from_edges(labels, edges);
    let c = count_homomorphisms(data, &q, &Budget::unlimited()).unwrap();
    LabeledQuery::new(q, c.max(1))
}

type Shape<'a> = (&'a [u32], &'a [(u32, u32)]);

fn workload(data: &Graph) -> Workload {
    let shapes: [Shape<'_>; 5] = [
        (&[0, 0], &[(0, 1)]),
        (&[0, 1], &[(0, 1)]),
        (&[1, 2], &[(0, 1)]),
        (&[0, 1, 2], &[(0, 1), (1, 2)]),
        (&[0, 0, 1], &[(0, 1), (1, 2)]),
    ];
    Workload::from_queries(
        shapes
            .into_iter()
            .map(|(l, e)| labeled(l, e, data))
            .collect(),
    )
}

/// Unique scratch dir per test (tests run in one process; use the test
/// name as the discriminator).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alss-serve-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write the data graph + a tiny trained checkpoint, return their paths.
fn fixtures(tag: &str) -> (PathBuf, PathBuf) {
    let dir = scratch(tag);
    let data = data_graph();
    let graph_path = dir.join("graph.txt");
    std::fs::write(&graph_path, to_text(&data)).unwrap();
    let (sketch, _) = LearnedSketch::train(&data, &workload(&data), &SketchConfig::tiny());
    let sketch_path = dir.join("sketch.json");
    sketch.save(&sketch_path).unwrap();
    (graph_path, sketch_path)
}

fn config(graph: PathBuf, sketch: Option<PathBuf>) -> ServeConfig {
    ServeConfig {
        data_path: graph,
        model_path: sketch,
        load_backoff: Duration::from_millis(1),
        batch: BatchConfig {
            parallelism: Parallelism::fixed(2),
            ..BatchConfig::default()
        },
        ..ServeConfig::default()
    }
}

/// Path query `0(l0)-1(l0)-2(l1)` and an isomorphic renumbering of it
/// (permutation a→2, b→0, c→1 of the same labeled path).
fn query_and_permutation() -> (String, String) {
    let original = graph_from_edges(&[0, 0, 1], &[(0, 1), (1, 2)]);
    let permuted = graph_from_edges(&[0, 1, 0], &[(2, 0), (0, 1)]);
    (to_text(&original), to_text(&permuted))
}

#[test]
fn isomorphic_resubmission_hits_cache_bit_identically() {
    let (graph, sketch) = fixtures("cache");
    let handle = alss_serve::serve(&config(graph, Some(sketch))).unwrap();
    let addr = handle.addr.to_string();
    let mut client = Client::connect(&addr, Duration::from_secs(5)).unwrap();

    let (query, permuted) = query_and_permutation();
    let first = client.estimate(1, &query, None).unwrap();
    assert!(first.ok, "{}", first.error);
    assert!(!first.cached && !first.degraded);
    assert!(first.estimate >= 1.0);

    let second = client.estimate(2, &query, None).unwrap();
    assert!(second.cached, "verbatim resubmission must hit the cache");
    assert_eq!(second.log10.to_bits(), first.log10.to_bits());

    let iso = client.estimate(3, &permuted, None).unwrap();
    assert!(iso.cached, "isomorphic renumbering must hit the cache");
    assert_eq!(iso.log10.to_bits(), first.log10.to_bits());
    assert_eq!(iso.magnitude_class, first.magnitude_class);

    handle.stop();
    handle.join();
}

#[test]
fn zero_deadline_degrades_fresh_queries_deterministically() {
    let (graph, sketch) = fixtures("deadline");
    let handle = alss_serve::serve(&config(graph, Some(sketch))).unwrap();
    let addr = handle.addr.to_string();
    let mut client = Client::connect(&addr, Duration::from_secs(5)).unwrap();

    // Fresh (uncached) query with an already-expired deadline: the batcher
    // must answer from the fallback and must not poison the cache.
    let q = to_text(&graph_from_edges(&[2, 1], &[(0, 1)]));
    let a = client.estimate(1, &q, Some(0)).unwrap();
    assert!(a.ok && a.degraded && !a.cached);
    let b = client.estimate(2, &q, Some(0)).unwrap();
    assert!(b.degraded, "degraded answers must never be cached");
    assert_eq!(a.log10.to_bits(), b.log10.to_bits(), "fallback is seeded");

    // The same query with a generous deadline now gets the real model.
    let full = client.estimate(3, &q, Some(60_000)).unwrap();
    assert!(full.ok && !full.degraded);

    handle.stop();
    handle.join();
}

#[test]
fn control_ops_and_malformed_input() {
    let (graph, sketch) = fixtures("control");
    let handle = alss_serve::serve(&config(graph, Some(sketch))).unwrap();
    let addr = handle.addr.to_string();
    let mut client = Client::connect(&addr, Duration::from_secs(5)).unwrap();

    let pong = client.call(&Request::control("ping")).unwrap();
    assert!(pong.ok);

    let stats = client.call(&Request::control("stats")).unwrap();
    assert!(stats.ok);
    assert!(stats.magnitude_class > 0, "stats reports cache capacity");
    assert!(!stats.degraded, "model loaded -> not modelless");

    let unknown = client.call(&Request::control("frobnicate")).unwrap();
    assert!(!unknown.ok);
    assert!(unknown.error.contains("frobnicate"));

    let bad_query = client.estimate(9, "this is not a graph", None).unwrap();
    assert!(!bad_query.ok);

    // A non-JSON line gets an ok:false response, not a dropped connection.
    use std::io::{BufRead, BufReader, Write};
    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    raw.write_all(b"{garbage\n").unwrap();
    let mut reply = String::new();
    BufReader::new(raw.try_clone().unwrap())
        .read_line(&mut reply)
        .unwrap();
    assert!(reply.contains("\"ok\":false"), "{reply}");

    handle.stop();
    handle.join();
}

#[test]
fn modelless_server_degrades_everything() {
    let (graph, _) = fixtures("modelless");
    let missing = PathBuf::from("/nonexistent/alss-serve-sketch.json");
    let mut cfg = config(graph, Some(missing));
    cfg.load_attempts = 1;
    let handle = alss_serve::serve(&cfg).unwrap();
    let addr = handle.addr.to_string();
    let mut client = Client::connect(&addr, Duration::from_secs(5)).unwrap();

    let q = to_text(&graph_from_edges(&[0, 1], &[(0, 1)]));
    let resp = client.estimate(1, &q, None).unwrap();
    assert!(resp.ok && resp.degraded);
    let stats = client.call(&Request::control("stats")).unwrap();
    assert!(stats.degraded, "stats reports modelless mode");

    handle.stop();
    handle.join();
}

#[test]
fn shutdown_op_stops_the_server_and_loadgen_sees_cache_hits() {
    let (graph, sketch) = fixtures("shutdown");
    let handle = alss_serve::serve(&config(graph, Some(sketch))).unwrap();
    let addr = handle.addr.to_string();

    let (query, permuted) = query_and_permutation();
    let report = run_load(&addr, &[query, permuted], 3, None).unwrap();
    assert_eq!(report.sent, 6);
    assert_eq!(report.ok, 6);
    assert_eq!(report.failed, 0);
    // Round 1 query #1 misses; everything after (including the isomorphic
    // permutation) hits.
    assert_eq!(report.cached, 5);
    assert_eq!(report.degraded, 0);

    let mut client = Client::connect(&addr, Duration::from_secs(5)).unwrap();
    let ack = client.call(&Request::control("shutdown")).unwrap();
    assert!(ack.ok, "shutdown is acknowledged before the stop");
    handle.join(); // returns because the listener honoured the stop

    // The listener is gone: new connections must fail (give the OS a
    // moment to tear the socket down).
    std::thread::sleep(Duration::from_millis(100));
    assert!(Client::connect(&addr, Duration::from_millis(500)).is_err());
}
