//! Concurrency contract of the sharded LRU: under many writer/reader
//! threads the cache never exceeds its capacity bound and never returns a
//! value that was not inserted for exactly that key.

#![allow(clippy::unwrap_used, clippy::float_cmp)]

use alss_graph::CanonicalKey;
use alss_serve::{CachedEstimate, ShardedLru};
use std::sync::Arc;

fn key(i: u64) -> CanonicalKey {
    // Spread the shard-selector bits (the cache shards on hash >> 48).
    CanonicalKey {
        nodes: 3,
        edges: 2,
        hash: i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    }
}

/// The value for a key is a pure function of the key, so any torn or
/// misrouted read is detectable.
fn value_for(i: u64) -> CachedEstimate {
    #[allow(clippy::cast_precision_loss)]
    CachedEstimate {
        log10: (i as f64) * 0.25,
        magnitude_class: i % 21,
    }
}

#[test]
fn hammered_cache_stays_bounded_and_never_lies() {
    const THREADS: u64 = 8;
    const OPS: u64 = 2_000;
    const KEYSPACE: u64 = 256; // ≫ capacity: constant eviction pressure
    let cache = Arc::new(ShardedLru::new(64, 8));

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            s.spawn(move || {
                for op in 0..OPS {
                    let i = (t.wrapping_mul(31).wrapping_add(op).wrapping_mul(77)) % KEYSPACE;
                    if op % 3 == 0 {
                        cache.insert(key(i), value_for(i));
                    } else if let Some(v) = cache.get(&key(i)) {
                        assert_eq!(v, value_for(i), "wrong value for key {i}");
                    }
                    if op % 97 == 0 {
                        assert!(
                            cache.len() <= cache.capacity(),
                            "len {} exceeds capacity {}",
                            cache.len(),
                            cache.capacity()
                        );
                    }
                }
            });
        }
    });

    assert!(cache.len() <= cache.capacity());
    assert!(!cache.is_empty(), "some inserts must have survived");
    // Post-quiescence: every surviving entry still maps to its own value.
    for i in 0..KEYSPACE {
        if let Some(v) = cache.get(&key(i)) {
            assert_eq!(v, value_for(i));
        }
    }
}

#[test]
fn distinct_keys_with_equal_hash_do_not_collide() {
    // CanonicalKey equality includes n and m, so two structures that
    // happened to collide in the 64-bit hash still occupy distinct slots.
    let cache = ShardedLru::new(16, 2);
    let a = CanonicalKey {
        nodes: 3,
        edges: 2,
        hash: 42,
    };
    let b = CanonicalKey {
        nodes: 4,
        edges: 3,
        hash: 42,
    };
    cache.insert(a, value_for(1));
    cache.insert(b, value_for(2));
    assert_eq!(cache.get(&a).unwrap(), value_for(1));
    assert_eq!(cache.get(&b).unwrap(), value_for(2));
}
