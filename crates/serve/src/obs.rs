//! Telemetry wiring for the serve/query CLI entry points.
//!
//! Mirrors the figure-binary harness in `alss-bench` but takes explicit
//! values instead of re-parsing `std::env::args`, since the `alss` CLI has
//! its own flag parser. Keep the returned guard alive for the whole run:
//! on drop it emits a final metrics-registry snapshot and flushes, so a
//! JSONL capture always ends with the aggregate counters.

use alss_telemetry::{Category, JsonLinesSink};
use std::path::Path;
use std::sync::Arc;

/// Keeps the sink installed; emits the final snapshot and flushes on drop.
pub struct TelemetryGuard {
    active: bool,
}

impl TelemetryGuard {
    /// `true` when a capture sink is installed.
    pub fn is_active(&self) -> bool {
        self.active
    }
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        if self.active {
            alss_telemetry::emit_snapshot();
            alss_telemetry::flush();
        }
    }
}

/// Set up telemetry for a serve-side binary named `topic`.
///
/// * `capture`: install a JSON-lines file sink at this path; the recording
///   mask comes from `ALSS_TELEMETRY`, defaulting to everything.
/// * Without `capture`, `ALSS_TELEMETRY` alone installs the stderr sink.
/// * `threads`: override the global worker-pool size (`Some(n > 0)`).
/// * Built without `--features telemetry`, the capture path is
///   acknowledged with a warning and ignored — probes are compiled out.
pub fn init_telemetry(
    topic: &str,
    capture: Option<&str>,
    threads: Option<usize>,
) -> TelemetryGuard {
    if let Some(n) = threads.filter(|&n| n > 0) {
        alss_core::set_global_threads(n);
        alss_telemetry::progress(topic, &format!("threads: {n}"));
    }
    match capture {
        Some(path) => {
            if !alss_telemetry::compiled_in() {
                alss_telemetry::progress(
                    topic,
                    "--telemetry ignored: binary built without --features telemetry",
                );
                return TelemetryGuard { active: false };
            }
            match JsonLinesSink::create(Path::new(path)) {
                Ok(sink) => {
                    let mask = alss_telemetry::mask_from_env().unwrap_or(Category::ALL);
                    alss_telemetry::install(Arc::new(sink), mask);
                    TelemetryGuard { active: true }
                }
                Err(e) => {
                    alss_telemetry::progress(topic, &format!("cannot open {path}: {e}"));
                    TelemetryGuard { active: false }
                }
            }
        }
        None => {
            alss_telemetry::init_from_env();
            TelemetryGuard { active: false }
        }
    }
}
