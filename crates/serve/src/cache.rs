//! Sharded LRU cache over canonical query keys.
//!
//! The cache is keyed by [`CanonicalKey`], so any isomorphic re-numbering
//! of an already-answered query is a hit. Sharding bounds lock contention:
//! a key's shard is a function of its canonical hash, each shard is an
//! independently locked LRU with its own capacity slice, and the global
//! capacity bound is the sum of the shard bounds.
//!
//! Only full-quality model estimates are cached — degraded fallback
//! answers are cheap to recompute and must not shadow a later model
//! answer for the same query.

use alss_graph::CanonicalKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A cached estimate: everything needed to rebuild a response without
/// touching the model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CachedEstimate {
    /// `log10 ĉ(q)` as the model produced it.
    pub log10: f64,
    /// Count-magnitude class (argmax of the posterior).
    pub magnitude_class: u64,
}

struct Shard {
    map: HashMap<CanonicalKey, (CachedEstimate, u64)>,
    capacity: usize,
}

impl Shard {
    /// Evict least-recently-used entries until within capacity. Linear
    /// scan per eviction: shards stay small (capacity / num_shards), and
    /// eviction happens at most once per insert.
    fn evict_to_capacity(&mut self) {
        while self.map.len() > self.capacity {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(k, _)| *k);
            match oldest {
                Some(k) => {
                    self.map.remove(&k);
                }
                None => break,
            }
        }
    }
}

/// A sharded, capacity-bounded LRU estimate cache. `Send + Sync`; all
/// methods take `&self`.
pub struct ShardedLru {
    shards: Vec<Mutex<Shard>>,
    /// Global recency clock; strictly increasing across all shards.
    clock: AtomicU64,
}

impl ShardedLru {
    /// A cache holding at most `capacity` entries spread over `shards`
    /// locks (both clamped to ≥ 1). Per-shard capacity is
    /// `ceil(capacity / shards)`, so the global bound is respected up to
    /// rounding.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let capacity = capacity.max(1);
        let per_shard = capacity.div_ceil(shards);
        ShardedLru {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        capacity: per_shard,
                    })
                })
                .collect(),
            clock: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &CanonicalKey) -> &Mutex<Shard> {
        // High bits: the canonical hash's low bits feed HashMap bucketing.
        let idx = (key.hash >> 48) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Look up a canonical key, refreshing its recency on a hit.
    pub fn get(&self, key: &CanonicalKey) -> Option<CachedEstimate> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self
            .shard_for(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let (value, last_used) = shard.map.get_mut(key)?;
        *last_used = tick;
        Some(*value)
    }

    /// Insert (or refresh) an estimate, evicting the least-recently-used
    /// entries of the shard if it is full.
    pub fn insert(&self, key: CanonicalKey, value: CachedEstimate) {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self
            .shard_for(&key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        shard.map.insert(key, (value, tick));
        shard.evict_to_capacity();
    }

    /// Current number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .map
                    .len()
            })
            .sum()
    }

    /// `true` when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured global capacity bound (sum of shard bounds).
    pub fn capacity(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .capacity
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(h: u64) -> CanonicalKey {
        CanonicalKey {
            nodes: 3,
            edges: 2,
            hash: h,
        }
    }

    fn val(x: f64) -> CachedEstimate {
        CachedEstimate {
            log10: x,
            magnitude_class: 1,
        }
    }

    #[test]
    fn get_after_insert() {
        let c = ShardedLru::new(8, 2);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), val(0.5));
        assert_eq!(c.get(&key(1)), Some(val(0.5)));
        assert!(c.get(&key(2)).is_none());
    }

    #[test]
    fn capacity_is_bounded_and_lru_evicts_oldest() {
        // One shard, capacity 2: inserting a third key evicts the LRU one.
        let c = ShardedLru::new(2, 1);
        c.insert(key(1), val(1.0));
        c.insert(key(2), val(2.0));
        assert!(c.get(&key(1)).is_some()); // refresh 1 → 2 is now LRU
        c.insert(key(3), val(3.0));
        assert!(c.len() <= 2);
        assert!(c.get(&key(2)).is_none(), "LRU entry must be evicted");
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(3)).is_some());
    }

    #[test]
    fn reinsert_updates_value() {
        let c = ShardedLru::new(4, 4);
        c.insert(key(9), val(1.0));
        c.insert(key(9), val(2.0));
        assert_eq!(c.get(&key(9)), Some(val(2.0)));
        assert_eq!(c.len(), 1);
    }
}
