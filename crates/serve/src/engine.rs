//! Checkpoint loading with bounded retry/backoff, and the shared
//! estimate-computation helpers used by the batcher.

use alss_core::LearnedSketch;
use alss_estimators::{CardinalityEstimator, WanderJoin};
use alss_graph::Graph;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io::ErrorKind;
use std::path::Path;
use std::time::Duration;

/// One computed estimate, independent of how it was produced.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Outcome {
    /// `log10 ĉ(q)`.
    pub log10: f64,
    /// Count-magnitude class.
    pub magnitude_class: u64,
    /// `true` when produced by the fallback estimator.
    pub degraded: bool,
}

/// Load a checkpoint, retrying transient read failures with exponential
/// backoff. A parse failure (`InvalidData`) is permanent and fails
/// immediately; anything else (file mid-write, NFS hiccup, missing file
/// during deploy) is retried up to `attempts` times total, sleeping
/// `base_backoff * 2^k` between tries.
pub fn load_sketch_with_retry(
    path: &Path,
    attempts: u32,
    base_backoff: Duration,
) -> Result<LearnedSketch, String> {
    let attempts = attempts.max(1);
    let mut delay = base_backoff;
    let mut last_err = String::new();
    for attempt in 0..attempts {
        match LearnedSketch::load(path) {
            Ok(sketch) => return Ok(sketch),
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                return Err(format!("checkpoint {}: {e}", path.display()));
            }
            Err(e) => {
                last_err = e.to_string();
                alss_telemetry::counter("serve.model_load_retry").inc();
                alss_telemetry::event(
                    "serve.model_load_retry",
                    &[("attempt", u64::from(attempt).into())],
                );
                if attempt + 1 < attempts {
                    std::thread::sleep(delay);
                    delay = delay.saturating_mul(2);
                }
            }
        }
    }
    Err(format!(
        "checkpoint {}: {last_err} (after {attempts} attempts)",
        path.display()
    ))
}

/// Magnitude class of a `log10` estimate without a truncating float cast:
/// the largest `c ≤ 20` with `c ≤ log10`.
pub fn magnitude_class_of(log10: f64) -> u64 {
    let mut class = 0u64;
    #[allow(clippy::cast_precision_loss)] // class ≤ 20, exactly representable
    while class < 20 && ((class + 1) as f64) <= log10 {
        class += 1;
    }
    class
}

/// Compute a full-quality model estimate.
pub fn model_outcome(sketch: &LearnedSketch, query: &Graph) -> Outcome {
    let pred = sketch.predict(query);
    Outcome {
        log10: pred.log10_count,
        magnitude_class: u64::try_from(pred.top_class()).unwrap_or(u64::MAX),
        degraded: false,
    }
}

/// Deterministic fallback estimate: Wander Join seeded from the query's
/// canonical hash, so the same query always gets the same degraded answer
/// at any thread count.
pub fn fallback_outcome(wj: &WanderJoin<'_>, query: &Graph, canon_hash: u64) -> Outcome {
    let mut rng = SmallRng::seed_from_u64(0x5EED_FA11 ^ canon_hash);
    let est = wj.estimate(query, &mut rng);
    let count = est.clamped().max(1.0);
    Outcome {
        log10: count.log10(),
        magnitude_class: magnitude_class_of(count.log10()),
        degraded: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magnitude_classes() {
        assert_eq!(magnitude_class_of(-2.0), 0);
        assert_eq!(magnitude_class_of(0.0), 0);
        assert_eq!(magnitude_class_of(0.99), 0);
        assert_eq!(magnitude_class_of(1.0), 1);
        assert_eq!(magnitude_class_of(3.7), 3);
        assert_eq!(magnitude_class_of(1e9), 20);
    }

    fn err_of(res: Result<LearnedSketch, String>) -> String {
        match res {
            Ok(_) => panic!("expected load failure"),
            Err(e) => e,
        }
    }

    #[test]
    fn missing_checkpoint_reports_after_retries() {
        let err = err_of(load_sketch_with_retry(
            Path::new("/nonexistent/alss-sketch.json"),
            2,
            Duration::from_millis(1),
        ));
        assert!(err.contains("after 2 attempts"), "{err}");
    }

    #[test]
    fn corrupt_checkpoint_fails_fast() {
        let path = std::env::temp_dir().join("alss_serve_corrupt_ckpt.json");
        std::fs::write(&path, "{ not a sketch").unwrap();
        let start = std::time::Instant::now();
        let err = err_of(load_sketch_with_retry(&path, 5, Duration::from_millis(100)));
        std::fs::remove_file(&path).ok();
        assert!(
            start.elapsed() < Duration::from_millis(90),
            "no backoff spent"
        );
        assert!(!err.is_empty());
    }
}
