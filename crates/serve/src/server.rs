//! The TCP estimate server.
//!
//! One listener thread accepts connections; each connection gets a handler
//! thread reading NDJSON [`Request`] lines and writing one [`Response`]
//! line per request, in request order. Estimate requests first consult the
//! sharded canonical cache, then go through the micro-batcher; control
//! requests (`ping`, `stats`, `shutdown`) are answered inline.
//!
//! Shutdown is cooperative: a `shutdown` request (or [`ServerHandle::stop`])
//! flips an atomic flag and pokes the listener with a loopback connection
//! so `accept` returns; the listener then joins every live handler before
//! exiting, so a telemetry snapshot taken after [`ServerHandle::join`] sees
//! all request counters.

use crate::batch::{BatchConfig, Batcher, Job};
use crate::cache::ShardedLru;
use crate::engine::{load_sketch_with_retry, Outcome};
use crate::proto::{from_line, to_line, Request, Response};
use alss_graph::{canonical_key, io::from_text, Graph};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick a free port.
    pub addr: String,
    /// Data graph file (alss text format).
    pub data_path: PathBuf,
    /// Trained checkpoint. `None` (or a path that keeps failing) starts
    /// the server in degraded mode: every answer comes from the fallback.
    pub model_path: Option<PathBuf>,
    /// Checkpoint read attempts before giving up (transient errors only).
    pub load_attempts: u32,
    /// Initial retry backoff; doubles per attempt.
    pub load_backoff: Duration,
    /// Estimate-cache capacity (entries).
    pub cache_capacity: usize,
    /// Estimate-cache shard count.
    pub cache_shards: usize,
    /// Micro-batching knobs.
    pub batch: BatchConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            data_path: PathBuf::new(),
            model_path: None,
            load_attempts: 3,
            load_backoff: Duration::from_millis(50),
            cache_capacity: 4096,
            cache_shards: 8,
            batch: BatchConfig::default(),
        }
    }
}

struct Shared {
    batcher: Batcher,
    cache: Arc<ShardedLru>,
    stop: AtomicBool,
    /// `true` when the model failed to load and every answer is degraded.
    modelless: bool,
}

/// A running server. Obtain via [`serve`]; stop via [`ServerHandle::stop`]
/// + [`ServerHandle::join`] or a client `shutdown` request.
pub struct ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub addr: SocketAddr,
    shared: Arc<Shared>,
    listener_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Ask the server to stop accepting and drain.
    pub fn stop(&self) {
        request_stop(&self.shared, self.addr);
    }

    /// Block until the listener (and every handler it joined) has exited.
    pub fn join(mut self) {
        if let Some(t) = self.listener_thread.take() {
            let _ = t.join();
        }
    }

    /// `true` once a stop was requested.
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }
}

fn request_stop(shared: &Shared, addr: SocketAddr) {
    if !shared.stop.swap(true, Ordering::SeqCst) {
        // Unblock the accept loop; errors are fine — the listener may
        // already be gone.
        let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    }
}

/// Load the data graph and checkpoint, bind the listener, and spawn the
/// accept loop. Returns once the socket is bound and the batcher is live.
pub fn serve(cfg: &ServeConfig) -> Result<ServerHandle, String> {
    let data_text = std::fs::read_to_string(&cfg.data_path)
        .map_err(|e| format!("data graph {}: {e}", cfg.data_path.display()))?;
    let data: Graph = from_text(&data_text)
        .map_err(|e| format!("data graph {}: {e}", cfg.data_path.display()))?;

    let (model, modelless) = match &cfg.model_path {
        None => (None, true),
        Some(path) => match load_sketch_with_retry(path, cfg.load_attempts, cfg.load_backoff) {
            Ok(sketch) => (Some(sketch), false),
            Err(e) => {
                // Degraded mode is an operational state, not a startup
                // failure: answer everything from the fallback estimator.
                alss_telemetry::counter("serve.model_load_failed").inc();
                alss_telemetry::event("serve.model_load_failed", &[("error", e.as_str().into())]);
                (None, true)
            }
        },
    };

    let cache = Arc::new(ShardedLru::new(cfg.cache_capacity, cfg.cache_shards));
    let batcher = Batcher::spawn(model, data, Arc::clone(&cache), cfg.batch)
        .map_err(|e| format!("spawn batcher: {e}"))?;

    let listener = TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;

    let shared = Arc::new(Shared {
        batcher,
        cache,
        stop: AtomicBool::new(false),
        modelless,
    });
    alss_telemetry::event(
        "serve.listening",
        &[("addr", addr.to_string().as_str().into())],
    );

    let loop_shared = Arc::clone(&shared);
    let listener_thread = std::thread::Builder::new()
        .name("alss-serve-accept".to_string())
        .spawn(move || accept_loop(&listener, addr, &loop_shared))
        .map_err(|e| format!("spawn accept loop: {e}"))?;

    Ok(ServerHandle {
        addr,
        shared,
        listener_thread: Some(listener_thread),
    })
}

fn accept_loop(listener: &TcpListener, addr: SocketAddr, shared: &Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("alss-serve-conn".to_string())
            .spawn(move || handle_connection(stream, addr, &conn_shared));
        match spawned {
            Ok(h) => handlers.push(h),
            Err(_) => alss_telemetry::counter("serve.spawn_failed").inc(),
        }
        // Opportunistically reap finished handlers so the vec stays small.
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn handle_connection(stream: TcpStream, addr: SocketAddr, shared: &Shared) {
    // A finite read timeout lets idle handlers notice the stop flag, so
    // the listener's shutdown join cannot hang on an open connection.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    // Accumulate across timeouts with `read_until` (unlike `read_line`, it
    // keeps already-read bytes in the buffer when a read times out).
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => break,                             // EOF
            Ok(_) if !buf.ends_with(b"\n") => continue, // partial line
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
        let line = String::from_utf8_lossy(&buf).into_owned();
        buf.clear();
        if line.trim().is_empty() {
            continue;
        }
        let _span = alss_telemetry::Span::enter("serve.request");
        alss_telemetry::counter("serve.request").inc();
        alss_telemetry::event("serve.request", &[]);
        let started = Instant::now();
        let mut shutdown = false;
        let mut response = match from_line::<Request>(&line) {
            Ok(req) => {
                shutdown = req.op == "shutdown";
                dispatch(&req, shared)
            }
            Err(e) => {
                alss_telemetry::counter("serve.parse_error").inc();
                Response::failure(0, e)
            }
        };
        response.latency_us = us_since(started);
        alss_telemetry::histogram("serve.latency_us").record(response.latency_us);
        let Ok(out_line) = to_line(&response) else {
            break;
        };
        if writer
            .write_all(out_line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .is_err()
        {
            break;
        }
        if shutdown {
            // Acknowledge first, then stop the listener.
            request_stop(shared, addr);
            break;
        }
    }
}

/// Elapsed microseconds, saturated into `u64`.
fn us_since(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn dispatch(req: &Request, shared: &Shared) -> Response {
    match req.op.as_str() {
        "" | "estimate" => estimate_response(req, shared),
        "ping" => Response {
            id: req.id,
            ok: true,
            ..Response::default()
        },
        "stats" => stats_response(req, shared),
        // The stop flag is flipped by the connection handler *after* this
        // acknowledgement is written, so the client always sees it.
        "shutdown" => Response {
            id: req.id,
            ok: true,
            ..Response::default()
        },
        other => Response::failure(req.id, format!("unknown op {other:?}")),
    }
}

/// `stats` reuses the numeric response fields: `estimate` = cache entries,
/// `log10` = queue depth, `magnitude_class` = cache capacity. `degraded`
/// reports modelless mode.
fn stats_response(req: &Request, shared: &Shared) -> Response {
    #[allow(clippy::cast_precision_loss)] // diagnostics, not counts
    Response {
        id: req.id,
        ok: true,
        estimate: shared.cache.len() as f64,
        log10: shared.batcher.queue_depth() as f64,
        magnitude_class: shared.cache.capacity() as u64,
        degraded: shared.modelless,
        ..Response::default()
    }
}

fn estimate_response(req: &Request, shared: &Shared) -> Response {
    let query = match from_text(&req.query) {
        Ok(q) => q,
        Err(e) => return Response::failure(req.id, format!("query: {e}")),
    };
    let key = canonical_key(&query);

    if let Some(hit) = shared.cache.get(&key) {
        alss_telemetry::counter("serve.cache_hit").inc();
        alss_telemetry::event("serve.cache_hit", &[]);
        return ok_response(
            req.id,
            Outcome {
                log10: hit.log10,
                magnitude_class: hit.magnitude_class,
                degraded: false,
            },
            true,
        );
    }
    alss_telemetry::counter("serve.cache_miss").inc();

    let (reply_tx, reply_rx) = sync_channel(1);
    let job = Job {
        id: req.id,
        graph: query,
        key,
        enqueued: Instant::now(),
        deadline: req.deadline_ms.map(Duration::from_millis),
        reply: reply_tx,
    };
    if let Err(e) = shared.batcher.submit(job) {
        return Response::failure(req.id, e);
    }
    match reply_rx.recv() {
        Ok(outcome) => ok_response(req.id, outcome, false),
        Err(_) => Response::failure(req.id, "server shutting down"),
    }
}

fn ok_response(id: u64, outcome: Outcome, cached: bool) -> Response {
    Response {
        id,
        ok: true,
        // Linear-scale counts are ≥ 1, matching `Prediction::count()`;
        // `log10` stays the model's raw output.
        estimate: 10f64.powf(outcome.log10).max(1.0),
        log10: outcome.log10,
        magnitude_class: outcome.magnitude_class,
        degraded: outcome.degraded,
        cached,
        ..Response::default()
    }
}
