#![cfg_attr(test, allow(clippy::unwrap_used))]
//! `alss-serve` — batched estimate serving for the learned sketch.
//!
//! A std-only, multi-threaded TCP server that loads a trained
//! [`LearnedSketch`](alss_core::LearnedSketch) checkpoint and answers
//! subgraph-count estimate requests over newline-delimited JSON:
//!
//! * **Canonical caching** — queries are keyed by the 1-WL canonical hash
//!   from `alss_graph::canon`, so isomorphic re-submissions of an
//!   already-answered query hit a sharded LRU cache without touching the
//!   model ([`cache`]).
//! * **Micro-batching** — requests flow through a bounded queue into
//!   model-forward batches executed over the shared `Parallelism` pool,
//!   preserving per-request ordering and the workspace determinism
//!   contract ([`batch`]).
//! * **Graceful degradation** — per-request deadlines; an expired deadline
//!   or an unloadable checkpoint falls back to a deterministic Wander-Join
//!   estimate tagged `degraded:true` ([`engine`]). Transient checkpoint
//!   read failures are retried with bounded exponential backoff.
//! * **Telemetry** — serve spans, queue-depth gauge, cache hit/miss
//!   counters, and a latency histogram, all behind the workspace
//!   `telemetry` feature gate.
//!
//! The wire protocol is documented in [`proto`]; [`client`] provides a
//! blocking client plus the load generator used by the e2e tests and the
//! CI smoke gate.

pub mod batch;
pub mod cache;
pub mod client;
pub mod engine;
pub mod obs;
pub mod proto;
pub mod server;

pub use batch::{BatchConfig, Batcher, Job};
pub use cache::{CachedEstimate, ShardedLru};
pub use client::{run_load, Client, LoadReport};
pub use engine::{load_sketch_with_retry, magnitude_class_of, Outcome};
pub use obs::{init_telemetry, TelemetryGuard};
pub use proto::{Request, Response};
pub use server::{serve, ServeConfig, ServerHandle};
