//! Micro-batching: a bounded MPSC queue drained into model-forward
//! batches over the shared [`Parallelism`] pool.
//!
//! Connection handlers submit [`Job`]s; a single batcher thread blocks on
//! the queue, drains up to `batch_size` pending jobs, computes every
//! estimate of the batch with an order-preserving [`par_map`], and replies
//! to each job's channel **in arrival order**. Per-item computation is
//! pure, so results are bit-identical at any thread count (the PR-4
//! determinism contract extends to the serving path).
//!
//! Deadline handling happens at drain time: a job whose deadline elapsed
//! while it sat in the queue (or whose server has no model) is answered by
//! the deterministic Wander-Join fallback and marked degraded. Fresh
//! full-quality answers are inserted into the shared canonical cache;
//! degraded answers are not, so they can never shadow a model answer.

use crate::cache::{CachedEstimate, ShardedLru};
use crate::engine::{fallback_outcome, model_outcome, Outcome};
use alss_core::{par_map, LearnedSketch, Parallelism};
use alss_estimators::{LabelIndex, WanderJoin};
use alss_graph::{CanonicalKey, Graph};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Batching configuration.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Maximum jobs drained into one forward batch.
    pub batch_size: usize,
    /// Bound of the submission queue; a full queue sheds load with an
    /// explicit error instead of queueing unbounded work.
    pub queue_cap: usize,
    /// Worker fan-out for the per-batch `par_map`.
    pub parallelism: Parallelism,
    /// Random walks per fallback Wander-Join estimate.
    pub wj_samples: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            batch_size: 16,
            queue_cap: 1024,
            parallelism: Parallelism::auto(),
            wj_samples: 64,
        }
    }
}

/// One queued estimate request.
pub struct Job {
    /// Request id (telemetry only; responses correlate via `reply`).
    pub id: u64,
    /// The parsed query graph.
    pub graph: Graph,
    /// Its canonical cache key.
    pub key: CanonicalKey,
    /// Arrival time; deadlines are measured from here.
    pub enqueued: Instant,
    /// Optional deadline since `enqueued`.
    pub deadline: Option<Duration>,
    /// Reply channel (capacity ≥ 1; the batcher never blocks on it).
    pub reply: SyncSender<Outcome>,
}

/// Handle to the batcher thread. Dropping it drains and joins the thread.
pub struct Batcher {
    tx: Option<SyncSender<Job>>,
    handle: Option<JoinHandle<()>>,
    depth: Arc<AtomicI64>,
}

impl Batcher {
    /// Spawn the batcher thread. `model` is `None` when the server runs in
    /// degraded mode (checkpoint never loaded); `data` is the data graph
    /// backing the fallback estimator.
    pub fn spawn(
        model: Option<LearnedSketch>,
        data: Graph,
        cache: Arc<ShardedLru>,
        cfg: BatchConfig,
    ) -> std::io::Result<Batcher> {
        let (tx, rx) = sync_channel::<Job>(cfg.queue_cap.max(1));
        let depth = Arc::new(AtomicI64::new(0));
        let thread_depth = Arc::clone(&depth);
        let handle = std::thread::Builder::new()
            .name("alss-serve-batcher".to_string())
            .spawn(move || run_batcher(&model, &data, &cache, &cfg, &rx, &thread_depth))?;
        Ok(Batcher {
            tx: Some(tx),
            handle: Some(handle),
            depth,
        })
    }

    /// Submit a job. Fails (load shedding) when the queue is full or the
    /// batcher is shutting down.
    pub fn submit(&self, job: Job) -> Result<(), String> {
        let Some(tx) = self.tx.as_ref() else {
            return Err("batcher is shut down".to_string());
        };
        match tx.try_send(job) {
            Ok(()) => {
                let d = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
                alss_telemetry::gauge("serve.queue_depth").set(d);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                alss_telemetry::counter("serve.queue_full").inc();
                Err("server overloaded: request queue is full".to_string())
            }
            Err(TrySendError::Disconnected(_)) => Err("batcher is shut down".to_string()),
        }
    }

    /// Current number of queued-but-undrained jobs (approximate).
    pub fn queue_depth(&self) -> i64 {
        self.depth.load(Ordering::Relaxed)
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.tx = None; // disconnect: the thread drains the queue and exits
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn run_batcher(
    model: &Option<LearnedSketch>,
    data: &Graph,
    cache: &ShardedLru,
    cfg: &BatchConfig,
    rx: &Receiver<Job>,
    depth: &AtomicI64,
) {
    let index = LabelIndex::new(data);
    let wj = WanderJoin::new(&index, cfg.wj_samples.max(1));
    let batch_size = cfg.batch_size.max(1);
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        while batch.len() < batch_size {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        let d = depth.fetch_sub(batch.len() as i64, Ordering::Relaxed) - batch.len() as i64;
        alss_telemetry::gauge("serve.queue_depth").set(d);
        alss_telemetry::histogram("serve.batch_size").record(batch.len() as u64);

        let _span = alss_telemetry::Span::enter("serve.batch");
        let drained = Instant::now();
        let outcomes: Vec<Outcome> = par_map(cfg.parallelism, &batch, |_, job| {
            let expired = job
                .deadline
                .is_some_and(|d| drained.saturating_duration_since(job.enqueued) >= d);
            match model {
                Some(sketch) if !expired => model_outcome(sketch, &job.graph),
                _ => fallback_outcome(&wj, &job.graph, job.key.hash),
            }
        });

        for (job, out) in batch.iter().zip(&outcomes) {
            if out.degraded {
                alss_telemetry::counter("serve.degraded").inc();
            } else {
                cache.insert(
                    job.key,
                    CachedEstimate {
                        log10: out.log10,
                        magnitude_class: out.magnitude_class,
                    },
                );
            }
            // A handler that gave up (client hung up) is not an error.
            let _ = job.reply.send(*out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alss_graph::builder::graph_from_edges;
    use alss_graph::canonical_key;
    use std::sync::mpsc;

    fn data_graph() -> Graph {
        graph_from_edges(&[0, 0, 1, 1, 2], &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
    }

    fn submit_query(
        batcher: &Batcher,
        q: &Graph,
        deadline: Option<Duration>,
    ) -> mpsc::Receiver<Outcome> {
        let (tx, rx) = sync_channel(1);
        batcher
            .submit(Job {
                id: 1,
                graph: q.clone(),
                key: canonical_key(q),
                enqueued: Instant::now(),
                deadline,
                reply: tx,
            })
            .expect("submit");
        rx
    }

    #[test]
    fn modelless_batcher_answers_degraded() {
        let cache = Arc::new(ShardedLru::new(8, 2));
        let batcher = Batcher::spawn(
            None,
            data_graph(),
            Arc::clone(&cache),
            BatchConfig::default(),
        )
        .expect("spawn");
        let q = graph_from_edges(&[0, 1], &[(0, 1)]);
        let out = submit_query(&batcher, &q, None).recv().expect("reply");
        assert!(out.degraded);
        assert!(out.log10 >= 0.0);
        assert!(cache.is_empty(), "degraded answers are not cached");
    }

    #[test]
    fn zero_deadline_forces_fallback_and_same_query_is_deterministic() {
        let cache = Arc::new(ShardedLru::new(8, 2));
        let batcher = Batcher::spawn(
            None,
            data_graph(),
            Arc::clone(&cache),
            BatchConfig::default(),
        )
        .expect("spawn");
        let q = graph_from_edges(&[0, 0, 1], &[(0, 1), (1, 2)]);
        let a = submit_query(&batcher, &q, Some(Duration::ZERO))
            .recv()
            .expect("reply");
        let b = submit_query(&batcher, &q, Some(Duration::ZERO))
            .recv()
            .expect("reply");
        assert!(a.degraded && b.degraded);
        assert_eq!(a.log10.to_bits(), b.log10.to_bits());
    }
}
