//! Wire protocol: newline-delimited JSON (NDJSON) over TCP.
//!
//! One request per line, one response line per request, answered in
//! request order per connection:
//!
//! ```text
//! -> {"id":1,"query":"t 3 2\nv 0 0\nv 1 1\nv 2 2\ne 0 1\ne 1 2\n","deadline_ms":50}
//! <- {"id":1,"ok":true,"estimate":42.0,"log10":1.62,"magnitude_class":2,
//!     "degraded":false,"cached":false,"latency_us":310,"error":""}
//! ```
//!
//! `query` carries the line-oriented text format of `alss_graph::io`
//! (`t`/`v`/`e` records) embedded as a JSON string. `op` selects the
//! action: `"estimate"` (the default when empty), `"ping"`, `"stats"`, or
//! `"shutdown"`. `deadline_ms` is measured from request arrival; when the
//! deadline has already expired at batch-drain time the server answers
//! from the cheap fallback estimator and sets `degraded:true`
//! (`deadline_ms:0` therefore always exercises the fallback path).

use serde::{Deserialize, Serialize};

/// One client request (one JSON line).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed back in the response.
    #[serde(default)]
    pub id: u64,
    /// `""`/`"estimate"`, `"ping"`, `"stats"`, or `"shutdown"`.
    #[serde(default)]
    pub op: String,
    /// Query graph in `alss_graph::io` text format (`t`/`v`/`e` records).
    #[serde(default)]
    pub query: String,
    /// Optional per-request deadline in milliseconds since arrival.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
}

impl Request {
    /// An estimate request for `query` text.
    pub fn estimate(id: u64, query: impl Into<String>, deadline_ms: Option<u64>) -> Self {
        Request {
            id,
            op: String::new(),
            query: query.into(),
            deadline_ms,
        }
    }

    /// A control request (`ping` / `stats` / `shutdown`).
    pub fn control(op: &str) -> Self {
        Request {
            op: op.to_string(),
            ..Request::default()
        }
    }
}

/// One server response (one JSON line).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Response {
    /// Echo of the request id.
    #[serde(default)]
    pub id: u64,
    /// `false` iff the request failed (see `error`).
    #[serde(default)]
    pub ok: bool,
    /// Estimated count `ĉ(q)` in linear scale (≥ 1 on success).
    #[serde(default)]
    pub estimate: f64,
    /// `log10 ĉ(q)` — the model's native output scale.
    #[serde(default)]
    pub log10: f64,
    /// Count-magnitude class (argmax of the classifier posterior).
    #[serde(default)]
    pub magnitude_class: u64,
    /// `true` when answered by the fallback estimator (expired deadline or
    /// unavailable model) rather than the learned sketch.
    #[serde(default)]
    pub degraded: bool,
    /// `true` when served from the canonical-query estimate cache.
    #[serde(default)]
    pub cached: bool,
    /// Server-side latency from parse to response serialization.
    #[serde(default)]
    pub latency_us: u64,
    /// Human-readable error when `ok` is `false`, empty otherwise.
    #[serde(default)]
    pub error: String,
}

impl Response {
    /// An error response for request `id`.
    pub fn failure(id: u64, error: impl Into<String>) -> Self {
        Response {
            id,
            ok: false,
            error: error.into(),
            ..Response::default()
        }
    }
}

/// Serialize a protocol message to its wire line (no trailing newline).
pub fn to_line<T: Serialize>(msg: &T) -> Result<String, String> {
    serde_json::to_string(msg).map_err(|e| format!("serialize: {e}"))
}

/// Parse one wire line.
pub fn from_line<T: Deserialize>(line: &str) -> Result<T, String> {
    serde_json::from_str(line.trim()).map_err(|e| format!("parse: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let r = Request::estimate(7, "t 1 0\nv 0 0\n", Some(25));
        let line = to_line(&r).unwrap();
        let back: Request = from_line(&line).unwrap();
        assert_eq!(back.id, 7);
        assert_eq!(back.deadline_ms, Some(25));
        assert_eq!(back.query, r.query);
        assert!(back.op.is_empty());
    }

    #[test]
    fn missing_fields_default() {
        let r: Request = from_line(r#"{"query":"t 1 0\nv 0 0\n"}"#).unwrap();
        assert_eq!(r.id, 0);
        assert_eq!(r.deadline_ms, None);
        let r: Request = from_line(r#"{"op":"ping"}"#).unwrap();
        assert_eq!(r.op, "ping");
    }

    #[test]
    fn response_roundtrip_is_bit_exact() {
        let resp = Response {
            id: 3,
            ok: true,
            estimate: 1_234.567_890_123,
            log10: 3.0915,
            magnitude_class: 4,
            degraded: false,
            cached: true,
            latency_us: 42,
            error: String::new(),
        };
        let line = to_line(&resp).unwrap();
        let back: Response = from_line(&line).unwrap();
        // Rust float Display is shortest-round-trip, so equality is exact.
        assert_eq!(back.estimate.to_bits(), resp.estimate.to_bits());
        assert_eq!(back.log10.to_bits(), resp.log10.to_bits());
        assert!(back.cached);
    }

    #[test]
    fn malformed_line_is_an_error() {
        assert!(from_line::<Request>("{not json").is_err());
    }
}
