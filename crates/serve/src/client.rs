//! Blocking NDJSON client and the load generator used by tests and CI.

use crate::proto::{from_line, to_line, Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A blocking request/response client over one TCP connection.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7878`).
    pub fn connect(addr: &str, timeout: Duration) -> Result<Client, String> {
        let sock_addr = addr.parse().map_err(|e| format!("address {addr}: {e}"))?;
        let stream = TcpStream::connect_timeout(&sock_addr, timeout)
            .map_err(|e| format!("connect {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| format!("set timeout: {e}"))?;
        let writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Send one request and block for its response.
    pub fn call(&mut self, req: &Request) -> Result<Response, String> {
        let line = to_line(req)?;
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))?;
        let mut reply = String::new();
        self.reader
            .read_line(&mut reply)
            .map_err(|e| format!("recv: {e}"))?;
        if reply.is_empty() {
            return Err("connection closed by server".to_string());
        }
        from_line(&reply)
    }

    /// Convenience: estimate `query` with an optional deadline.
    pub fn estimate(
        &mut self,
        id: u64,
        query: &str,
        deadline_ms: Option<u64>,
    ) -> Result<Response, String> {
        self.call(&Request::estimate(id, query, deadline_ms))
    }
}

/// Aggregate result of one load-generator run.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// `ok:true` responses.
    pub ok: u64,
    /// Responses served from the canonical cache.
    pub cached: u64,
    /// Responses answered by the fallback estimator.
    pub degraded: u64,
    /// Responses that failed (`ok:false` or transport error).
    pub failed: u64,
    /// Mean server-side latency over successful responses, microseconds.
    pub mean_latency_us: u64,
}

/// Drive `queries` against the server `rounds` times on one connection.
/// Repeating the same (or an isomorphic) query across rounds exercises the
/// canonical cache. `deadline_ms` applies to every request.
pub fn run_load(
    addr: &str,
    queries: &[String],
    rounds: u32,
    deadline_ms: Option<u64>,
) -> Result<LoadReport, String> {
    let mut client = Client::connect(addr, Duration::from_secs(5))?;
    let mut report = LoadReport::default();
    let mut latency_total: u64 = 0;
    let mut id: u64 = 0;
    for _ in 0..rounds.max(1) {
        for query in queries {
            id += 1;
            report.sent += 1;
            match client.estimate(id, query, deadline_ms) {
                Ok(resp) if resp.ok => {
                    report.ok += 1;
                    if resp.cached {
                        report.cached += 1;
                    }
                    if resp.degraded {
                        report.degraded += 1;
                    }
                    latency_total = latency_total.saturating_add(resp.latency_us);
                }
                Ok(_) | Err(_) => report.failed += 1,
            }
        }
    }
    report.mean_latency_us = latency_total.checked_div(report.ok).unwrap_or(0);
    Ok(report)
}
