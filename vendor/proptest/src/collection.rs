//! Collection strategies (`proptest::collection::vec`).

use crate::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Length specification for [`vec`]: an exact count or a range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of `element` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
