//! Offline stand-in for the subset of `proptest 1` used by this
//! workspace's property tests.
//!
//! Provides the [`Strategy`] trait (`prop_map`, `prop_flat_map`), range and
//! tuple strategies, [`collection::vec`], [`ProptestConfig`], and the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`] macros. Cases are
//! generated from a deterministic per-test seed (FNV-1a of the test name),
//! so failures reproduce exactly.
//!
//! **No shrinking**: a failing case panics with the generated inputs left
//! to the assertion message, instead of being minimized first. That trades
//! debuggability for zero dependencies, which is the right trade in a
//! container with no crates-io access.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod collection;

pub mod bool {
    //! Boolean strategies (`proptest::bool::ANY`).

    /// Uniform `true`/`false`.
    pub const ANY: crate::StandardAny<bool> = crate::StandardAny(std::marker::PhantomData);
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Per-run configuration; only `cases` matters to the stub.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values. Unlike real proptest there is no value
/// tree and no shrinking: `generate` draws one concrete value.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it selects.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred` (retries up to 1000 times).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut SmallRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}`: predicate rejected 1000 draws",
            self.whence
        );
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Draws from the full standard distribution of `T`.
pub struct StandardAny<T>(pub(crate) PhantomData<T>);

impl<T: rand::Standard> Strategy for StandardAny<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = StandardAny<$t>;
            fn arbitrary() -> Self::Strategy {
                StandardAny(PhantomData)
            }
        }
    )*};
}

impl_arbitrary_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// The canonical strategy for `T` (real proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Error type a property body can early-return with `return Ok(())` /
/// `Err(...)`, mirroring proptest's `TestCaseError`.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<String> for TestCaseError {
    fn from(e: String) -> Self {
        TestCaseError(e)
    }
}

impl From<&str> for TestCaseError {
    fn from(e: &str) -> Self {
        TestCaseError(e.to_string())
    }
}

/// Deterministic per-test seed: FNV-1a over the test name.
pub fn test_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Build the RNG for a named test (used by the [`proptest!`] expansion).
pub fn test_rng(name: &str) -> SmallRng {
    SmallRng::seed_from_u64(test_seed(name))
}

/// Define property tests. Supports the same surface syntax the real
/// `proptest!` macro accepts at this workspace's call sites:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn my_property(x in 0u32..100, v in proptest::collection::vec(any::<bool>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    // The closure lets property bodies early-return
                    // `Ok(())`/`Err(..)` like real proptest.
                    #[allow(clippy::redundant_closure_call)]
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!("property `{}` failed: {}", stringify!($name), __e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that names the property framework in its panic message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "proptest assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -4i64..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn flat_map_and_vec(v in (1usize..=8).prop_flat_map(|n| crate::collection::vec(0u32..10, n))) {
            prop_assert!(!v.is_empty() && v.len() <= 8);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_map(p in (0u32..5, 0u32..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(p <= 8);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0usize..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::test_seed("abc"), crate::test_seed("abc"));
        assert_ne!(crate::test_seed("abc"), crate::test_seed("abd"));
    }
}
