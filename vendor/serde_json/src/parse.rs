//! Recursive-descent JSON parser producing a [`Value`] tree.

use crate::Error;
use serde::Value;

pub(crate) fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `]` in array"));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(pairs)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `}` in object"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // High surrogate: a low surrogate must follow.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
