//! Offline stand-in for the subset of `serde_json 1` used by this
//! workspace: [`to_string`], [`from_str`], [`Result`]/[`Error`], and
//! [`Value`] re-exported from the `serde` stub.
//!
//! The printer emits standard JSON (escaped strings, shortest round-trip
//! float formatting via Rust's `Display`); non-finite floats print as
//! `null`, matching upstream `serde_json`'s lossy behaviour. The parser is
//! a recursive-descent reader supporting the full JSON grammar including
//! `\uXXXX` escapes with surrogate pairs.

// Test modules opt back out of the workspace panic/numeric policy: a
// panic IS the failure report there.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::bool_assert_comparison,
        clippy::excessive_precision
    )
)]

pub use serde::Value;

mod parse;
mod print;

/// Error raised by [`from_str`] (or, structurally, [`to_string`] — the
/// stub printer is total, so serialization never actually fails).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(print::render(&value.serialize()))
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse::parse(s)?;
    Ok(T::deserialize(&value)?)
}

/// Serialize to a [`Value`] tree without rendering text.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.serialize())
}

/// Deserialize from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    Ok(T::deserialize(value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
    }

    #[test]
    fn roundtrip_float_precision() {
        // Display prints the shortest string that round-trips exactly.
        for &x in &[0.1f64, 1e300, -2.2250738585072014e-308, 123456789.123456789] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "via {s}");
        }
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn roundtrip_strings_with_escapes() {
        let s = "line\nbreak \"quoted\" back\\slash \u{1F600} nul\u{0}";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn unicode_escape_parsing() {
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        // surrogate pair: U+1F600
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![vec![1u32, 2], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);

        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(from_str::<Vec<u64>>(" [ 1 ,\n\t2 ] ").unwrap(), vec![1, 2]);
    }
}
