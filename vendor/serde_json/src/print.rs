//! Compact JSON rendering of a [`Value`] tree.

use serde::Value;

pub(crate) fn render(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, &mut out);
    out
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_float(x: f64, out: &mut String) {
    if x.is_finite() {
        // Rust's `Display` is shortest-round-trip, so parsing the output
        // recovers the exact bit pattern.
        out.push_str(&x.to_string());
    } else {
        // JSON has no NaN/Infinity; match upstream serde_json's lossy null.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
