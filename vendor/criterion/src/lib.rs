//! Offline stand-in for the subset of `criterion 0.5` the ALSS benches
//! use. No statistics, plotting, or warm-up modelling — each benchmark
//! runs its closure in timed batches for (a fraction of) the configured
//! measurement time and prints a median-of-batches nanoseconds-per-iter
//! line. Good enough to smoke-run `cargo bench` offline; not a substitute
//! for criterion's confidence intervals.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Keep offline smoke benches brisk; groups can raise this.
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            name,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        run_one(id, self.measurement_time, &mut f);
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; the stub has no warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.measurement_time,
            &mut f,
        );
    }

    /// Benchmark a closure parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.measurement_time,
            &mut g,
        );
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`, like criterion.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Throughput declaration (accepted, unused).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; [`Bencher::iter`] times the payload.
pub struct Bencher {
    measurement_time: Duration,
    report: Option<(u128, u64)>, // (total nanos, iters)
}

impl Bencher {
    /// Time `f`, repeating it until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let budget = self.measurement_time;
        let start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= budget {
                break;
            }
        }
        self.report = Some((start.elapsed().as_nanos(), iters));
    }
}

fn run_one(id: &str, measurement_time: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        measurement_time,
        report: None,
    };
    f(&mut b);
    match b.report {
        Some((nanos, iters)) if iters > 0 => {
            let per = nanos / u128::from(iters);
            eprintln!("  {id}: {per} ns/iter ({iters} iters)");
        }
        _ => eprintln!("  {id}: no measurement (closure never called iter)"),
    }
}

/// Define the benchmark-group entry function, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` from one or more groups, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
