//! Offline stand-in for the subset of `rayon 1` this workspace uses.
//!
//! With no crates-io access the real work-stealing pool cannot be built, so
//! `par_iter`/`into_par_iter` here run **sequentially** on the calling
//! thread while keeping rayon's combinator API (`map`, `filter_map`,
//! `collect`, `try_reduce`, …). Results are therefore identical to rayon's
//! for the deterministic reductions ALSS performs; only the parallel
//! speed-up is absent. Call sites compile unchanged, so swapping the real
//! rayon back in is a one-line Cargo change.

use std::iter::Sum;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

/// Sequential wrapper that mimics rayon's `ParallelIterator` combinators.
pub struct ParIter<I> {
    it: I,
}

impl<I: Iterator> ParIter<I> {
    /// Transform each item.
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter { it: self.it.map(f) }
    }

    /// Keep items satisfying the predicate.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter {
            it: self.it.filter(f),
        }
    }

    /// Transform and keep `Some` results.
    pub fn filter_map<B, F: FnMut(I::Item) -> Option<B>>(
        self,
        f: F,
    ) -> ParIter<std::iter::FilterMap<I, F>> {
        ParIter {
            it: self.it.filter_map(f),
        }
    }

    /// Flatten nested iterables.
    pub fn flat_map<B: IntoIterator, F: FnMut(I::Item) -> B>(
        self,
        f: F,
    ) -> ParIter<std::iter::FlatMap<I, B, F>> {
        ParIter {
            it: self.it.flat_map(f),
        }
    }

    /// Run `f` on every item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.it.for_each(f);
    }

    /// Collect into any `FromIterator` container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.it.collect()
    }

    /// Sum the items.
    pub fn sum<S: Sum<I::Item>>(self) -> S {
        self.it.sum()
    }

    /// Count the items.
    pub fn count(self) -> usize {
        self.it.count()
    }

    /// Reduce with an identity constructor (rayon calls `identity` once per
    /// split; sequentially that is exactly once).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.it.fold(identity(), op)
    }

    /// Largest item.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.it.max()
    }

    /// Smallest item.
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.it.min()
    }
}

impl<I, T, E> ParIter<I>
where
    I: Iterator<Item = Result<T, E>>,
{
    /// Fallible reduction: short-circuits on the first `Err`, like rayon's
    /// `try_reduce` (up to which error wins, which rayon leaves
    /// nondeterministic anyway).
    pub fn try_reduce<ID, OP>(self, identity: ID, op: OP) -> Result<T, E>
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> Result<T, E>,
    {
        let mut acc = identity();
        for item in self.it {
            acc = op(acc, item?)?;
        }
        Ok(acc)
    }
}

/// `into_par_iter()` for owned containers and ranges.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Convert into a (sequential) "parallel" iterator.
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter {
            it: self.into_iter(),
        }
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// `par_iter()` for slices (and anything that derefs to one, e.g. `Vec`).
pub trait ParallelSlice<T> {
    /// Borrowing (sequential) "parallel" iterator.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter { it: self.iter() }
    }
}

/// Sequential stand-in for `rayon::join`: runs `a` then `b`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_collect() {
        let v = [1u32, 2, 3];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn into_par_iter_filter_map() {
        let v: Vec<u32> = (0u32..10)
            .into_par_iter()
            .filter_map(|x| (x % 2 == 0).then_some(x))
            .collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn try_reduce_short_circuits() {
        let ok: Result<u64, ()> = [1u64, 2, 3]
            .par_iter()
            .map(|&x| Ok(x))
            .try_reduce(|| 0, |a, b| Ok(a + b));
        assert_eq!(ok, Ok(6));

        let err: Result<u64, &str> = [1u64, 2, 3]
            .par_iter()
            .map(|&x| if x == 2 { Err("boom") } else { Ok(x) })
            .try_reduce(|| 0, |a, b| Ok(a + b));
        assert_eq!(err, Err("boom"));
    }
}
