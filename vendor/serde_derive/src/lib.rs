//! `#[derive(Serialize, Deserialize)]` for the offline `serde` stub.
//!
//! `syn`/`quote` are unavailable in this container, so the input is parsed
//! directly from `proc_macro::TokenStream` token trees and the generated
//! impls are assembled as source strings. Supported shapes — which cover
//! every derive site in the ALSS workspace — are:
//!
//! * structs with named fields (honouring `#[serde(default)]`);
//! * unit structs;
//! * enums whose variants are all unit variants (externally tagged as a
//!   plain string, like real serde).
//!
//! Anything else (tuple structs, data-carrying variants, generic types)
//! produces a `compile_error!` naming the unsupported shape, so a future
//! change fails loudly instead of mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    UnitEnum(Vec<String>),
    Unsupported(String),
}

struct Input {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let code = match &parsed.shape {
        Shape::NamedStruct(fields) => gen_struct_ser(&parsed.name, fields),
        Shape::TupleStruct(arity) => gen_tuple_ser(&parsed.name, *arity),
        Shape::UnitStruct => gen_struct_ser(&parsed.name, &[]),
        Shape::UnitEnum(variants) => gen_enum_ser(&parsed.name, variants),
        Shape::Unsupported(why) => unsupported(&parsed.name, why),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let code = match &parsed.shape {
        Shape::NamedStruct(fields) => gen_struct_de(&parsed.name, fields),
        Shape::TupleStruct(arity) => gen_tuple_de(&parsed.name, *arity),
        Shape::UnitStruct => gen_struct_de(&parsed.name, &[]),
        Shape::UnitEnum(variants) => gen_enum_de(&parsed.name, variants),
        Shape::Unsupported(why) => unsupported(&parsed.name, why),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

fn unsupported(name: &str, why: &str) -> String {
    format!("compile_error!(\"serde stub cannot derive for `{name}`: {why}\");")
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(_)) = tokens.get(i) {
                    i += 1; // pub(crate) etc.
                }
            }
            _ => break,
        }
    }

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => {
            return Input {
                name: "?".into(),
                shape: Shape::Unsupported("no struct/enum keyword found".into()),
            }
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => {
            return Input {
                name: "?".into(),
                shape: Shape::Unsupported("missing type name".into()),
            }
        }
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Input {
                name,
                shape: Shape::Unsupported("generic types are not supported".into()),
            };
        }
    }

    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                parse_named_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                parse_tuple_fields(g.stream())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            _ => Shape::Unsupported("unrecognized struct body".into()),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                parse_variants(g.stream())
            }
            _ => Shape::Unsupported("unrecognized enum body".into()),
        },
        "union" => Shape::Unsupported("unions are not supported".into()),
        other => Shape::Unsupported(format!("unexpected keyword `{other}`")),
    };

    Input { name, shape }
}

/// `true` if a `#[...]` attribute group is exactly `serde(default)`
/// (possibly among other serde options, in which case anything but
/// `default` is rejected later by the caller's Unsupported path).
fn attr_is_serde_default(group: &proc_macro::Group) -> bool {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "default"))
        }
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = false;
        // Attributes (including doc comments) before the field.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        default |= attr_is_serde_default(g);
                    }
                    i += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(_)) = tokens.get(i) {
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => {
                return Shape::Unsupported(format!("unexpected token `{other}` in field list"))
            }
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Shape::Unsupported(format!("missing `:` after field `{name}`")),
        }
        // Skip the type: commas nested in angle brackets don't end the field.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(Field { name, default });
    }
    Shape::NamedStruct(fields)
}

/// Count the fields of a tuple struct: top-level commas, ignoring commas
/// nested inside angle brackets (groups are already atomic tokens).
fn parse_tuple_fields(stream: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return Shape::TupleStruct(0);
    }
    let mut arity = 1;
    let mut angle_depth = 0i32;
    let mut after_comma = false;
    for tok in &tokens {
        after_comma = false;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    arity += 1;
                    after_comma = true;
                }
                _ => {}
            }
        }
    }
    if after_comma {
        arity -= 1; // trailing comma
    }
    Shape::TupleStruct(arity)
}

fn parse_variants(stream: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes (e.g. `#[default]`, doc comments).
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => {
                return Shape::Unsupported(format!("unexpected token `{other}` in variant list"))
            }
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(_)) => {
                return Shape::Unsupported(format!(
                    "variant `{name}` carries data; only unit variants are supported"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to the comma.
                while let Some(tok) = tokens.get(i) {
                    if matches!(tok, TokenTree::Punct(q) if q.as_char() == ',') {
                        break;
                    }
                    i += 1;
                }
            }
            _ => {}
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(name);
    }
    Shape::UnitEnum(variants)
}

// ---------------------------------------------------------------- codegen

fn gen_struct_ser(name: &str, fields: &[Field]) -> String {
    let mut pushes = String::new();
    for f in fields {
        let fname = &f.name;
        pushes.push_str(&format!(
            "__o.push((\"{fname}\".to_string(), \
             ::serde::Serialize::serialize(&self.{fname})));\n"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n\
         let mut __o: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n\
         {pushes}\
         ::serde::Value::Object(__o)\n\
         }}\n\
         }}\n"
    )
}

fn gen_struct_de(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        let fname = &f.name;
        let missing = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(\
                 ::serde::Error::missing_field(\"{name}\", \"{fname}\"))"
            )
        };
        inits.push_str(&format!(
            "{fname}: match ::serde::value::field(__o, \"{fname}\") {{\n\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::deserialize(__x)?,\n\
             ::std::option::Option::None => {missing},\n\
             }},\n"
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n\
         let __o = __v.as_object().ok_or_else(|| \
         ::serde::Error::expected(\"object for `{name}`\", __v))?;\n\
         let _ = &__o;\n\
         ::std::result::Result::Ok({name} {{\n\
         {inits}\
         }})\n\
         }}\n\
         }}\n"
    )
}

/// Newtype structs serialize transparently as their single field; wider
/// tuple structs serialize as arrays (both match real serde).
fn gen_tuple_ser(name: &str, arity: usize) -> String {
    let body = if arity == 1 {
        "::serde::Serialize::serialize(&self.0)".to_string()
    } else {
        let items: Vec<String> = (0..arity)
            .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
            .collect();
        format!("::serde::Value::Array(vec![{}])", items.join(", "))
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}

fn gen_tuple_de(name: &str, arity: usize) -> String {
    let body = if arity == 1 {
        format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))")
    } else {
        let items: Vec<String> = (0..arity)
            .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
            .collect();
        format!(
            "let __items = __v.as_array().ok_or_else(|| \
             ::serde::Error::expected(\"array for `{name}`\", __v))?;\n\
             if __items.len() != {arity} {{\n\
             return ::std::result::Result::Err(::serde::Error::custom(\
             \"wrong tuple arity for `{name}`\"));\n\
             }}\n\
             ::std::result::Result::Ok({name}({fields}))",
            fields = items.join(", ")
        )
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}

fn gen_enum_ser(name: &str, variants: &[String]) -> String {
    let mut arms = String::new();
    for v in variants {
        arms.push_str(&format!(
            "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n\
         match self {{\n{arms}}}\n\
         }}\n\
         }}\n"
    )
}

fn gen_enum_de(name: &str, variants: &[String]) -> String {
    let mut arms = String::new();
    for v in variants {
        arms.push_str(&format!(
            "::std::option::Option::Some(\"{v}\") => \
             ::std::result::Result::Ok({name}::{v}),\n"
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n\
         match __v.as_str() {{\n\
         {arms}\
         _ => ::std::result::Result::Err(\
         ::serde::Error::expected(\"variant of `{name}`\", __v)),\n\
         }}\n\
         }}\n\
         }}\n"
    )
}
