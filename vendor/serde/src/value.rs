//! The concrete JSON-like data model shared by the `serde` and
//! `serde_json` stubs.

/// A JSON value tree. Object keys keep insertion order (derived structs
/// serialize fields in declaration order, which keeps output stable).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (from negative JSON numbers).
    Int(i64),
    /// Unsigned integer (non-negative integral JSON numbers).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl crate::Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl crate::Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, crate::Error> {
        Ok(v.clone())
    }
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if non-negative integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            Value::Float(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= u64::MAX as f64 => {
                // Guarded above: integral, non-negative, in range.
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            Value::Float(x)
                if x.fract() == 0.0 && *x >= i64::MIN as f64 && *x <= i64::MAX as f64 =>
            {
                // Guarded above: integral and in range.
                #[allow(clippy::cast_possible_truncation)]
                Some(*x as i64)
            }
            _ => None,
        }
    }

    /// Look up a field in an object (linear scan; objects here are small).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Field lookup helper used by derived `Deserialize` impls.
pub fn field<'a>(pairs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}
