//! Offline stand-in for the subset of `serde 1` used by this workspace.
//!
//! The real serde's visitor-based data model is far larger than ALSS needs:
//! every (de)serialization in this repo goes through `serde_json` on derived
//! structs and unit enums. This stub therefore collapses the data model to a
//! concrete JSON-like [`Value`] tree:
//!
//! * [`Serialize`] renders `Self` into a [`Value`];
//! * [`Deserialize`] reads `Self` back out of a [`Value`];
//! * `#[derive(Serialize, Deserialize)]` (re-exported from the
//!   `serde_derive` stub) generates both for named-field structs and
//!   unit-variant enums, honouring `#[serde(default)]`.
//!
//! The crate is intentionally API-compatible at the *call sites this
//! workspace contains*, not with serde at large.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

/// Deserialization error: a path-less human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// Standard "missing field" error.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error(format!(
            "missing field `{field}` while deserializing `{ty}`"
        ))
    }

    /// Standard "type mismatch" error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error(format!("expected {what}, found {}", got.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` as a [`Value`] tree.
pub trait Serialize {
    /// Convert to the JSON-like data model.
    fn serialize(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from the JSON-like data model.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

macro_rules! impl_ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        // `Null` round-trips non-finite floats (JSON has no NaN/Inf).
        if matches!(v, Value::Null) {
            return Ok(f64::NAN);
        }
        v.as_f64().ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        // Precision narrowing is inherent to deserializing into f32; the
        // JSON data model stores all floats as f64.
        #[allow(clippy::cast_possible_truncation)]
        Ok(f64::deserialize(v)? as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("boolean", v))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// `&'static str` deserializes by leaking the parsed string. Real serde
/// would borrow from the input; this stub's data model is owned, so the
/// leak is the only way to honour `'static`. Used by descriptor structs
/// (e.g. dataset specs) that are deserialized a handful of times per
/// process at most.
impl Deserialize for &'static str {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("string", v))?;
        Ok(Box::leak(s.to_string().into_boxed_str()))
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("string", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        items.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

macro_rules! impl_ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                let expected = [$($n),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, found array of {}", items.len()
                    )));
                }
                Ok(($($t::deserialize(&items[$n])?,)+))
            }
        }
    )*};
}

impl_ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// `Duration` round-trips as `[secs, subsec_nanos]`.
impl Serialize for std::time::Duration {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            Value::UInt(self.as_secs()),
            Value::UInt(u64::from(self.subsec_nanos())),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let (secs, nanos) = <(u64, u32)>::deserialize(v)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

/// Maps serialize as arrays of `[key, value]` pairs so non-string keys
/// round-trip. Only this workspace's own `serde_json` stub reads the output,
/// so interop with real-JSON map objects is not required.
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::expected("array of pairs", v))?;
        items.iter().map(<(K, V)>::deserialize).collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::expected("array of pairs", v))?;
        items.iter().map(<(K, V)>::deserialize).collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        items.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize + std::hash::Hash + Eq> Serialize for std::collections::HashSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for std::collections::HashSet<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        items.iter().map(T::deserialize).collect()
    }
}
