//! Offline stand-in for the subset of the `rand 0.8` API used by this
//! workspace.
//!
//! The container this repository builds in has no network access and no
//! crates-io mirror, so the real `rand` crate cannot be fetched. This crate
//! re-implements — with zero dependencies — exactly the surface the ALSS
//! crates consume: [`SmallRng`](rngs::SmallRng) (xoshiro256++ seeded via
//! splitmix64), the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits with
//! `gen`/`gen_range`/`gen_bool`, and [`seq::SliceRandom`]
//! (`shuffle`/`choose`).
//!
//! Determinism is the only contract: the same seed always yields the same
//! stream. The streams do **not** match upstream `rand`'s.

// PRNG plumbing is wall-to-wall intentional width juggling (widening
// multiplies, wrapping mixes, lane extraction); the workspace's count-cast
// hygiene lints target application code, not this vendored stand-in.
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss,
    clippy::cast_possible_wrap
)]

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Types that can be sampled uniformly from the full bit-stream
/// (the `Standard` distribution in upstream `rand`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Uniform sampling from a half-open span of width `span` starting at 0.
/// Widening-multiply method; bias is negligible for the spans used here.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "empty range");
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end as u64 - self.start as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi as u64 - lo as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_u64(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(uniform_u64(rng, span + 1) as i64) as $t
            }
        }
    )*};
}

impl_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors upstream `rand`).
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`. Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0, "gen_ratio: zero denominator");
        uniform_u64(self, u64::from(denominator)) < u64::from(numerator)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build from a single `u64` seed (the only constructor ALSS uses).
    fn seed_from_u64(seed: u64) -> Self;

    /// Build from ambient "entropy". Offline stub: a fixed seed, so runs
    /// stay reproducible.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x853c_49e6_748f_ea9b)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub(crate) fn uniform_index<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
    uniform_u64(rng, n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_from_slice() {
        let mut rng = SmallRng::seed_from_u64(4);
        let v = [10u32, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).expect("non-empty")));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
