//! Sequence helpers: the `SliceRandom` subset ALSS uses.

use crate::{uniform_index, RngCore};

/// Random operations on slices (`shuffle`, `choose`).
pub trait SliceRandom {
    /// Element type of the sequence.
    type Item;

    /// Uniform random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Uniform random mutable element, or `None` if empty.
    fn choose_mut<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<&mut Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(uniform_index(rng, self.len()))
        }
    }

    fn choose_mut<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<&mut T> {
        if self.is_empty() {
            None
        } else {
            let i = uniform_index(rng, self.len());
            self.get_mut(i)
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, uniform_index(rng, i + 1));
        }
    }
}
