//! Small, fast RNGs. [`SmallRng`] is xoshiro256++ (Blackman & Vigna),
//! seeded through splitmix64 as its authors recommend.

use crate::{splitmix64, RngCore, SeedableRng};

/// Fast non-cryptographic generator, the offline stand-in for
/// `rand::rngs::SmallRng`.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut state);
        }
        // xoshiro is degenerate on the all-zero state; splitmix64 cannot
        // produce four zero words from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        SmallRng { s }
    }
}

pub mod mock {
    //! Mock generators for tests.

    use crate::RngCore;

    /// Arithmetic-progression "generator": yields `initial`, then adds
    /// `increment` (wrapping) on each call. Matches `rand`'s mock rng.
    #[derive(Clone, Debug)]
    pub struct StepRng {
        v: u64,
        step: u64,
    }

    impl StepRng {
        /// Create with the given start value and increment.
        pub fn new(initial: u64, increment: u64) -> Self {
            StepRng {
                v: initial,
                step: increment,
            }
        }
    }

    impl RngCore for StepRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.v;
            self.v = self.v.wrapping_add(self.step);
            out
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
