//! Run every cardinality estimator in the repository — the seven G-CARE
//! baselines and the learned sketch — over one workload and print a
//! side-by-side accuracy/latency/failure comparison (a miniature Fig. 4 +
//! Fig. 5 + Fig. 8 in one table).
//!
//! Run: `cargo run --release --example baselines_comparison`

use alss::core::{LearnedSketch, QErrorStats, SketchConfig};
use alss::datasets::queries::WorkloadSpec;
use alss::datasets::{by_name, generate_workload};
use alss::estimators::{
    BoundSketch, CardinalityEstimator, CharacteristicSets, CorrelatedSampling, Impr, JSub,
    LabelIndex, SumRdf, WanderJoin,
};
use alss::matching::Semantics;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let data = by_name("yeast", 0.2, 0).expect("known dataset");
    let workload = generate_workload(
        &data,
        &WorkloadSpec {
            sizes: vec![4, 6, 8],
            per_size: 25,
            semantics: Semantics::Homomorphism,
            ..Default::default()
        },
    );
    let mut rng = SmallRng::seed_from_u64(6);
    let (train, test) = workload.stratified_split(0.8, &mut rng);
    println!(
        "comparing estimators on {} held-out queries (sizes {:?})\n",
        test.len(),
        test.sizes()
    );

    let mut cfg = SketchConfig::tiny();
    cfg.encoding = alss::core::EncodingKind::Embedding;
    cfg.train = alss::core::TrainConfig::quick(100);
    let (sketch, _) = LearnedSketch::train(&data, &train, &cfg);

    let idx = LabelIndex::new(&data);
    let cset = CharacteristicSets::new(&data);
    let sumrdf = SumRdf::new(&data);
    let impr = Impr::new(&data, 500, 16);
    let cs = CorrelatedSampling::new(&data, 0.3, 7, 50_000_000);
    let wj = WanderJoin::new(&idx, 1000);
    let jsub = JSub::new(&idx, 1000);
    let bs = BoundSketch::new(&data);
    let baselines: Vec<&dyn CardinalityEstimator> =
        vec![&cset, &sumrdf, &impr, &cs, &wj, &jsub, &bs];

    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "method", "median-q", "gmean-q", "max-q", "failed%", "ms/query"
    );

    // learned sketch first
    {
        let t0 = Instant::now();
        let pairs: Vec<(f64, f64)> = test
            .queries
            .iter()
            .map(|q| (q.count as f64, sketch.estimate(&q.graph)))
            .collect();
        let ms = t0.elapsed().as_secs_f64() * 1000.0 / test.len() as f64;
        let s = QErrorStats::from_pairs(&pairs).expect("non-empty");
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>12.1} {:>10.0} {:>10.3}",
            "LSS", s.median, s.geo_mean, s.max, 0.0, ms
        );
    }

    for est in baselines {
        let mut erng = SmallRng::seed_from_u64(8);
        let mut pairs = Vec::new();
        let mut failures = 0usize;
        let mut total = 0usize;
        let t0 = Instant::now();
        for q in &test.queries {
            // IMPR is restricted to 3-5-node queries
            if est.name().starts_with("IMPR") && !(3..=5).contains(&q.size()) {
                continue;
            }
            total += 1;
            let e = est.estimate(&q.graph, &mut erng);
            if e.failed {
                failures += 1;
            }
            pairs.push((q.count as f64, e.clamped()));
        }
        if total == 0 {
            continue;
        }
        let ms = t0.elapsed().as_secs_f64() * 1000.0 / total as f64;
        let s = QErrorStats::from_pairs(&pairs).expect("non-empty");
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>12.1} {:>10.0} {:>10.3}",
            est.name(),
            s.median,
            s.geo_mean,
            s.max,
            100.0 * failures as f64 / total as f64,
            ms
        );
    }
    println!("\n(BS is a guaranteed upper bound — large q-error by design; CSET/SumRDF");
    println!("underestimate via independence/uniformity; samplers fail on selective queries)");
}
