//! Query optimization with a learned cost model (§6.6): enumerate GHD
//! join plans for cyclic self-join queries and pick the cheapest —
//! costing bags either with the classical AGM bound or with the learned
//! sketch — then compare the *true* costs of the chosen plans.
//!
//! Run: `cargo run --release --example query_optimizer`

use alss::core::workload::{LabeledQuery, Workload};
use alss::core::{LearnedSketch, SketchConfig};
use alss::datasets::by_name;
use alss::datasets::queries::{assign_pattern_labels, unlabeled_patterns};
use alss::ghd::enumerate_ghds;
use alss::ghd::plan::{agm_cost, choose_plan, true_cost, RelationIndex};
use alss::graph::labels::LabelStats;
use alss::matching::{count_homomorphisms, Budget};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let data = by_name("wordnet", 0.3, 0).expect("known dataset");
    let stats = LabelStats::new(&data);
    let mut rng = SmallRng::seed_from_u64(5);

    // train the sketch on small random-labeled patterns
    let num_labels = alss::graph::label_id(data.num_node_labels());
    let mut train = Vec::new();
    for size in [3usize, 4] {
        for p in unlabeled_patterns(&data, size, 60, 11 + size as u64) {
            let mut b = alss::graph::GraphBuilder::new(p.num_nodes());
            for v in p.nodes() {
                b.set_label(v, rng.gen_range(0..num_labels));
            }
            for e in p.edges() {
                b.add_edge(e.u, e.v);
            }
            let q = b.build();
            if let Ok(c) = count_homomorphisms(&data, &q, &Budget::new(10_000_000)) {
                train.push(LabeledQuery::new(q, c.max(1)));
            }
        }
    }
    println!("training cost model on {} labeled patterns", train.len());
    let (sketch, _) =
        LearnedSketch::train(&data, &Workload::from_queries(train), &SketchConfig::tiny());

    let rel_index = RelationIndex::new(&data);
    let mut lss_total_log = 0.0f64;
    let mut agm_total_log = 0.0f64;
    let mut shown = 0;
    for pattern in unlabeled_patterns(&data, 4, 8, 77) {
        let q = assign_pattern_labels(&pattern, &stats, 2, &mut rng);
        let decomps = enumerate_ghds(&q, 3);
        if decomps.len() < 2 {
            continue;
        }
        let agm_pick = choose_plan(&q, &decomps, |bq| agm_cost(&rel_index, bq));
        let lss_pick = choose_plan(&q, &decomps, |bq| sketch.estimate(bq));
        let budget = Budget::new(50_000_000);
        let (Some(ca), Some(cl)) = (
            true_cost(&data, &q, &decomps[agm_pick.index], &budget),
            true_cost(&data, &q, &decomps[lss_pick.index], &budget),
        ) else {
            continue;
        };
        shown += 1;
        agm_total_log += (ca.max(1) as f64).log10();
        lss_total_log += (cl.max(1) as f64).log10();
        println!(
            "query {shown}: {} GHD plans | true cost of AGM plan = {ca}, of LSS plan = {cl}{}",
            decomps.len(),
            if cl < ca { "  <- LSS cheaper" } else { "" }
        );
    }
    if shown > 0 {
        println!(
            "\ngeometric-mean true plan cost: AGM 10^{:.2} vs LSS 10^{:.2}",
            agm_total_log / shown as f64,
            lss_total_log / shown as f64
        );
    }
}
