//! Measure the data-parallel training speedup and verify the determinism
//! contract end-to-end: train the same model on a ≥200-query workload at
//! several thread counts, report wall-clock per configuration, and check
//! that epoch losses and final parameters are bit-identical throughout.
//!
//! Run: `cargo run --release --example parallel_speedup [-- <threads...>]`

use alss::core::train::{encode_workload_with, train_model, TrainConfig};
use alss::core::{Encoder, LssConfig, LssModel, Parallelism};
use alss::datasets::queries::WorkloadSpec;
use alss::datasets::{by_name, generate_workload};
use alss::matching::Semantics;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn param_bits(model: &LssModel) -> Vec<u32> {
    let store = model.store();
    store
        .ids()
        .flat_map(|id| store.value(id).data().iter().map(|x| x.to_bits()))
        .collect()
}

fn main() {
    let thread_counts: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if args.is_empty() {
            vec![1, 2, 4]
        } else {
            args
        }
    };

    let data = by_name("yeast", 0.2, 0).expect("known dataset");
    let workload = generate_workload(
        &data,
        &WorkloadSpec {
            sizes: vec![3, 4, 5, 6],
            per_size: 60,
            semantics: Semantics::Homomorphism,
            ..Default::default()
        },
    );
    println!("workload: {} labeled queries", workload.len());
    assert!(
        workload.len() >= 200,
        "speedup run needs a ≥200-query workload"
    );

    let enc = Encoder::frequency(&data, 3);
    let model_cfg = LssConfig {
        dropout: 0.2,
        ..LssConfig::tiny()
    };
    let items = encode_workload_with(&enc, &workload, Parallelism::auto());

    let mut baseline: Option<(f64, Vec<u64>, Vec<u32>)> = None;
    for &threads in &thread_counts {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut model = LssModel::new(model_cfg, enc.node_dim(), enc.edge_dim(), &mut rng);
        let cfg = TrainConfig {
            epochs: 10,
            parallelism: Parallelism::fixed(threads),
            ..TrainConfig::default()
        };
        let report = train_model(&mut model, &items, &cfg);
        let secs = report.duration.as_secs_f64();
        let loss_bits: Vec<u64> = report.epoch_losses.iter().map(|l| l.to_bits()).collect();
        let bits = param_bits(&model);
        match &baseline {
            None => {
                println!(
                    "threads={threads:>2}  {secs:>7.2}s  (baseline, final loss {:.4})",
                    report.epoch_losses.last().copied().unwrap_or(f64::NAN)
                );
                baseline = Some((secs, loss_bits, bits));
            }
            Some((base_secs, base_losses, base_bits)) => {
                let identical = *base_losses == loss_bits && *base_bits == bits;
                println!(
                    "threads={threads:>2}  {secs:>7.2}s  speedup {:.2}x  bit-identical: {identical}",
                    base_secs / secs
                );
                assert!(
                    identical,
                    "determinism contract violated at threads={threads}"
                );
            }
        }
    }
}
