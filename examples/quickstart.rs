//! Quickstart: train a learned sketch on a small synthetic data graph and
//! compare its estimates against exact counts and a sampling baseline.
//!
//! Run: `cargo run --release --example quickstart`

use alss::core::{LearnedSketch, QErrorStats, SketchConfig};
use alss::datasets::queries::WorkloadSpec;
use alss::datasets::{by_name, generate_workload};
use alss::estimators::{CardinalityEstimator, LabelIndex, WanderJoin};
use alss::matching::Semantics;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // 1. A synthetic analogue of the paper's yeast dataset (Table 2).
    let data = by_name("yeast", 0.2, 0).expect("known dataset");
    println!(
        "data graph: {} nodes, {} edges, {} labels",
        data.num_nodes(),
        data.num_edges(),
        data.num_node_labels()
    );

    // 2. A labeled workload: random connected query graphs with exact
    //    homomorphism counts (Table 3).
    let workload = generate_workload(
        &data,
        &WorkloadSpec {
            sizes: vec![3, 4, 6],
            per_size: 40,
            semantics: Semantics::Homomorphism,
            ..Default::default()
        },
    );
    println!("workload: {} labeled queries", workload.len());

    // 3. Train / test split and sketch training (LSS, §4).
    let mut rng = SmallRng::seed_from_u64(1);
    let (train, test) = workload.stratified_split(0.8, &mut rng);
    let mut cfg = SketchConfig::tiny();
    cfg.model = alss::core::LssConfig {
        hidden: 32,
        gnn_layers: 2,
        dropout: 0.0,
        att_hidden: 32,
        att_heads: 2,
        mlp_hidden: 32,
        num_classes: 12,
        lambda: 1.0 / 3.0,
        ..Default::default()
    };
    cfg.train = alss::core::TrainConfig::quick(100);
    let (sketch, report) = LearnedSketch::train(&data, &train, &cfg);
    println!(
        "trained {} weights in {:.2}s ({} epochs, final loss {:.3})",
        sketch.model().num_weights(),
        report.duration.as_secs_f64(),
        report.epoch_losses.len(),
        report.epoch_losses.last().copied().unwrap_or(f64::NAN)
    );

    // 4. Evaluate on held-out queries and compare with Wander Join.
    let eval_pairs = |name: &str, pairs: Vec<(f64, f64)>| {
        let stats = QErrorStats::from_pairs(&pairs).expect("non-empty test set");
        println!("{name:8} {}", stats.render());
    };
    let lss_pairs: Vec<(f64, f64)> = test
        .queries
        .iter()
        .map(|q| (q.count as f64, sketch.estimate(&q.graph)))
        .collect();

    let idx = LabelIndex::new(&data);
    let wj = WanderJoin::new(&idx, 1000);
    let mut wj_rng = SmallRng::seed_from_u64(2);
    let wj_pairs: Vec<(f64, f64)> = test
        .queries
        .iter()
        .map(|q| {
            let e = wj.estimate(&q.graph, &mut wj_rng);
            (q.count as f64, e.count.max(1.0))
        })
        .collect();

    println!("\nq-error on {} held-out queries:", test.len());
    eval_pairs("LSS", lss_pairs);
    eval_pairs("WJ", wj_pairs);

    // 5. Estimate one ad-hoc query.
    let q = &test.queries[0];
    println!(
        "\nexample query ({} nodes): true count {}, LSS estimate {:.0}",
        q.size(),
        q.count,
        sketch.estimate(&q.graph)
    );
}
