//! Active learning (§5): start from a base sketch, then run
//! uncertainty-sampling rounds that pick the most informative unlabeled
//! queries, label them with the exact engine, and fine-tune — comparing
//! the CTC strategy against passive (random) selection.
//!
//! Run: `cargo run --release --example active_learning`

use alss::core::train::encode_workload;
use alss::core::{
    active_round, LearnedSketch, PoolItem, QErrorStats, SketchConfig, Strategy, TrainConfig,
};
use alss::datasets::queries::{unlabeled_pool, WorkloadSpec};
use alss::datasets::{by_name, generate_workload};
use alss::matching::{count_homomorphisms, Budget, Semantics};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let data = by_name("yeast", 0.2, 0).expect("known dataset");
    let workload = generate_workload(
        &data,
        &WorkloadSpec {
            sizes: vec![3, 4, 6],
            per_size: 30,
            semantics: Semantics::Homomorphism,
            ..Default::default()
        },
    );
    let mut rng = SmallRng::seed_from_u64(3);
    let (train, test) = workload.stratified_split(0.7, &mut rng);
    println!(
        "base training on {} queries; {} held out for testing",
        train.len(),
        test.len()
    );

    let cfg = SketchConfig::tiny();
    let (base, _) = LearnedSketch::train(&data, &train, &cfg);

    let test_stats = |sketch: &LearnedSketch| {
        let pairs: Vec<(f64, f64)> = test
            .queries
            .iter()
            .map(|q| (q.count as f64, sketch.estimate(&q.graph)))
            .collect();
        QErrorStats::from_pairs(&pairs).expect("non-empty test")
    };
    println!("base model   {}", test_stats(&base).render());

    // unlabeled pool of fresh queries; the oracle is the exact engine
    let pool_graphs = unlabeled_pool(&data, &[3, 4, 6], 15, 0.0, 9);
    let finetune = TrainConfig::quick(15);

    for strategy in [Strategy::Random, Strategy::CrossTask] {
        let mut sketch = base.clone();
        let mut items = encode_workload(sketch.encoder(), &train);
        let mut pool: Vec<PoolItem> = pool_graphs
            .iter()
            .map(|g| PoolItem {
                encoded: sketch.encode(g),
                graph: g.clone(),
            })
            .collect();
        let mut al_rng = SmallRng::seed_from_u64(4);
        let mut labeled_total = 0;
        for round in 0..2u64 {
            let report = active_round(
                &mut sketch,
                &mut items,
                &mut pool,
                |g| {
                    // §5 step ②: compute the exact count for selected queries
                    count_homomorphisms(&data, g, &Budget::new(20_000_000))
                        .ok()
                        .filter(|&c| c >= 1)
                },
                strategy,
                8,
                &finetune,
                round,
                &mut al_rng,
            );
            labeled_total += report.labeled;
        }
        println!(
            "after AL ({}) — {labeled_total} new labels — {}",
            strategy.name(),
            test_stats(&sketch).render()
        );
    }
    println!("\n(uncertainty-driven CTC selection should match or beat random selection,");
    println!("especially on the max / p95 tail — Fig. 10's observation)");
}
